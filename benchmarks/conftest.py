"""Shared helpers for the benchmark harness.

Every module regenerates one table or figure from the paper's evaluation
(Section 5).  Benchmarks run each experiment exactly once
(``benchmark.pedantic(rounds=1)``) — the interesting output is the printed
paper-style table plus shape assertions, not wall-clock statistics.

Run with:  pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner
