"""Run federation chaos scenarios, verify invariants, emit BENCH files.

Usage::

    # Refresh the committed BENCH file (runs smoke AND full sizes):
    PYTHONPATH=src python -m benchmarks.federation.harness

    # CI: smoke size only, compared against the committed file —
    # failing on schema drift or any deterministic-counter change:
    PYTHONPATH=src python -m benchmarks.federation.harness \
        --scale smoke --check

Each scale runs its scenario twice — tie-break seeds 0 and 1, race
detector on — and the harness asserts, before reporting anything:

* every steady-state hypothesis holds in both runs (zero lost intent
  records, zero double executions, writers drained, no over-allocation),
* the race detector found no schedule-sensitivity conflicts, and
* the audit log and end state of the two runs are byte-identical (the
  determinism contract of the federation bus).

The counters in the BENCH file are schedule-deterministic, so --check
compares them exactly; wall-clock seconds are informational only (this
module is the one place wall time is measured — simulation code under
``src`` never touches it).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.chaos import get_federation_scenario, run_federation_scenario

BENCH_DIR = Path(__file__).parent

#: scale -> (scenario name, perturbation tie-break seeds to compare).
SCALES = {
    "smoke": ("federation-cell-outage", (0, 1)),
    "full": ("federation-trace-3k", (0, 1)),
}

#: Counters whose committed values --check compares exactly (all are
#: schedule-deterministic by the federation's determinism contract).
_CHECKED_COUNTERS = (
    "cells", "total-gpus", "intents-submitted", "fed-completed",
    "fed-migrations", "fed-double-executions", "faults-injected",
    "schedule-conflicts",
)

_REQUIRED_KEYS = ("benchmark", "scales")
_REQUIRED_SCALE_KEYS = ("scenario", "seed", "tiebreak_seeds", "passed",
                        "deterministic", "counters", "hypotheses",
                        "wall_clock_s")


def run_scale(scale: str, seed: int = 0) -> dict:
    """One scenario at one scale: two perturbed runs + invariant checks."""
    name, tiebreaks = SCALES[scale]
    scenario = get_federation_scenario(name)
    reports = []
    started = time.perf_counter()  # staticcheck: ignore[DET001] harness-only wall clock; informational, never read by sim code
    for tiebreak in tiebreaks:
        report = run_federation_scenario(scenario, seed=seed,
                                         tiebreak_seed=tiebreak,
                                         detect_races=True)
        reports.append(report)
    wall = time.perf_counter() - started  # staticcheck: ignore[DET001] harness-only wall clock; informational, never read by sim code
    baseline = reports[0]
    failures = []
    for report in reports:
        for hyp in report.hypotheses:
            if not hyp.ok:
                failures.append(
                    f"{name} tiebreak={report.tiebreak_seed}: hypothesis "
                    f"{hyp.name!r} failed: {hyp.detail}")
        if report.race_lines:
            failures.append(
                f"{name} tiebreak={report.tiebreak_seed}: "
                f"{len(report.race_lines)} schedule-race conflict(s)")
    deterministic = all(
        report.audit_lines == baseline.audit_lines
        and report.end_state() == baseline.end_state()
        for report in reports[1:])
    if not deterministic:
        failures.append(f"{name}: audit/end-state diverged across "
                        f"tie-break seeds {tiebreaks}")
    if failures:
        raise AssertionError("\n".join(failures))
    return {
        "scenario": name,
        "seed": seed,
        "tiebreak_seeds": list(tiebreaks),
        "passed": all(r.passed for r in reports),
        "deterministic": deterministic,
        "audit_entries": len(baseline.audit_lines),
        "counters": {key: baseline.counters[key]
                     for key in _CHECKED_COUNTERS
                     if key in baseline.counters},
        "hypotheses": [(h.phase, h.name, h.ok)
                       for h in baseline.hypotheses],
        "wall_clock_s": round(wall, 3),
    }


def bench_path() -> Path:
    return BENCH_DIR / "BENCH_federation.json"


def check_schema(payload: dict) -> list:
    errors = []
    for key in _REQUIRED_KEYS:
        if key not in payload:
            errors.append(f"BENCH_federation.json: missing key {key!r}")
    for scale, entry in payload.get("scales", {}).items():
        for key in _REQUIRED_SCALE_KEYS:
            if key not in entry:
                errors.append(
                    f"BENCH_federation.json[{scale}]: missing {key!r}")
    return errors


def check_counters(committed: dict, fresh: dict, scale: str) -> list:
    """Deterministic counters must match the committed file exactly."""
    entry = committed.get("scales", {}).get(scale)
    if entry is None:
        return [f"BENCH_federation.json has no {scale!r} scale entry"]
    errors = []
    for counter, committed_value in entry.get("counters", {}).items():
        fresh_value = fresh["counters"].get(counter)
        if fresh_value != committed_value:
            errors.append(
                f"{scale}: counter {counter!r} drifted "
                f"{committed_value} -> {fresh_value} (counters are "
                f"schedule-deterministic; any change is a real change)")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="federation chaos benchmarks")
    parser.add_argument("--scale", choices=("smoke", "full", "both"),
                        default="both")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed BENCH file "
                             "instead of rewriting it")
    args = parser.parse_args(argv)

    scales = ("smoke", "full") if args.scale == "both" else (args.scale,)
    results = {}
    for scale in scales:
        name, tiebreaks = SCALES[scale]
        print(f"[{scale}] {name}: {len(tiebreaks)} perturbed runs ...",
              flush=True)
        results[scale] = run_scale(scale, seed=args.seed)
        entry = results[scale]
        print(f"[{scale}] passed={entry['passed']} "
              f"deterministic={entry['deterministic']} "
              f"audit_entries={entry['audit_entries']} "
              f"wall={entry['wall_clock_s']}s", flush=True)

    if args.check:
        path = bench_path()
        if not path.exists():
            print(f"missing committed file {path}", file=sys.stderr)
            return 1
        committed = json.loads(path.read_text())
        failures = check_schema(committed)
        for scale in scales:
            failures.extend(check_counters(committed, results[scale],
                                           scale))
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("federation bench check OK")
        return 0

    path = bench_path()
    payload = {"benchmark": "federation", "scales": results}
    if path.exists():
        existing = json.loads(path.read_text())
        for scale, entry in existing.get("scales", {}).items():
            payload["scales"].setdefault(scale, entry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
