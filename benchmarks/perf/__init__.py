"""Deterministic performance benchmarks for the simulation substrate.

``python -m benchmarks.perf.harness`` runs each scenario twice — fast
paths on, then ``REPRO_PERF_DISABLE=1`` — asserts the two runs are
observably identical, and writes one ``BENCH_<name>.json`` per scenario
(deterministic ops counters + wall clock).  See README.md
("Performance") for how to read and refresh the committed files.
"""
