"""Run perf scenarios, verify fast-path equivalence, emit BENCH files.

Usage::

    # Refresh the committed BENCH files (runs smoke AND full sizes):
    PYTHONPATH=src python -m benchmarks.perf.harness

    # CI: run smoke sizes only and compare against the committed files,
    # failing on schema drift or an ops regression over 20%:
    PYTHONPATH=src python -m benchmarks.perf.harness --scale smoke --check

Each scenario runs twice per scale — fast paths on, then with
``REPRO_PERF_DISABLE=1`` — and the harness asserts the two runs'
``state`` digests are identical before it reports anything: the
optimizations are only allowed to change the ops counters.  Ops are
schedule-deterministic, so the committed numbers are exact; wall-clock
seconds are informational and machine-dependent (this module is the one
place wall time is measured — simulation code under ``src`` never
touches it).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from benchmarks.perf.scenarios import SCENARIOS
from repro.perf import DISABLE_ENV_VAR

BENCH_DIR = Path(__file__).parent

#: Allowed relative increase of any optimized ops counter before the
#: --check mode fails the build.
REGRESSION_TOLERANCE = 0.20

#: Allowed optimized/baseline wall-clock ratio within one fresh run.
#: Wall seconds are machine-dependent, but the *ratio* on the same
#: machine back to back is not: the fast paths must never make a
#: scenario materially slower than its reference implementation.
#: Scenarios faster than WALL_CLOCK_FLOOR_S in baseline are skipped —
#: at sub-50ms scale the ratio is scheduler-jitter noise.
WALL_CLOCK_RATIO = 1.5
WALL_CLOCK_FLOOR_S = 0.05

#: Sampled-mode placement-quality envelopes: each sched_sampled quality
#: metric must stay within ``exhaustive value + slack`` of the "sched"
#: run at the same scale.  These are the declared bounds the sampling
#: contract promises (see DESIGN.md): sampling may fragment more (the
#: round-robin cursor spreads pods across rotating windows instead of
#: packing one prefix) but must not meaningfully delay pods or grow the
#: pending queue.
QUALITY_BOUNDS = {
    "mean_fragmentation": 0.50,
    "mean_pending_depth": 1.00,
    "mean_wait_s": 0.25,
}

_REQUIRED_KEYS = ("scenario", "scales")
_REQUIRED_SCALE_KEYS = ("params", "ops", "equivalent", "reduction",
                        "wall_clock_s")


def _run_mode(func, kwargs, disabled: bool):
    previous = os.environ.get(DISABLE_ENV_VAR)
    if disabled:
        os.environ[DISABLE_ENV_VAR] = "1"
    else:
        os.environ.pop(DISABLE_ENV_VAR, None)
    try:
        started = time.perf_counter()
        result = func(**kwargs)
        wall = time.perf_counter() - started
    finally:
        if previous is None:
            os.environ.pop(DISABLE_ENV_VAR, None)
        else:
            os.environ[DISABLE_ENV_VAR] = previous
    return result, wall


def run_scenario(name: str, scale: str) -> dict:
    """One scenario at one scale, optimized and baseline back to back."""
    func, smoke_kwargs, full_kwargs = SCENARIOS[name]
    kwargs = smoke_kwargs if scale == "smoke" else full_kwargs
    optimized, wall_opt = _run_mode(func, kwargs, disabled=False)
    baseline, wall_base = _run_mode(func, kwargs, disabled=True)
    if optimized["state"] != baseline["state"]:
        raise AssertionError(
            f"{name}/{scale}: fast paths changed observable state:\n"
            f"  optimized: {optimized['state']}\n"
            f"  baseline:  {baseline['state']}")
    if optimized.get("quality") != baseline.get("quality"):
        # Quality metrics are observable too: node sampling is a config
        # knob applied identically in both modes, so the fast paths may
        # not move them at all.
        raise AssertionError(
            f"{name}/{scale}: fast paths changed quality metrics:\n"
            f"  optimized: {optimized.get('quality')}\n"
            f"  baseline:  {baseline.get('quality')}")
    metric = optimized["ops"]["metric"]
    opt_ops = optimized["ops"][metric]
    base_ops = baseline["ops"][metric]
    entry = {
        "params": optimized["params"],
        "ops": {
            "metric": metric,
            "optimized": optimized["ops"],
            "baseline": baseline["ops"],
        },
        "equivalent": True,
        "reduction": round(base_ops / opt_ops, 2) if opt_ops else None,
        "wall_clock_s": {
            "optimized": round(wall_opt, 3),
            "baseline": round(wall_base, 3),
        },
    }
    if "quality" in optimized:
        entry["quality"] = optimized["quality"]
    return entry


def bench_path(name: str) -> Path:
    return BENCH_DIR / f"BENCH_{name}.json"


def check_schema(payload: dict, name: str) -> list:
    errors = []
    for key in _REQUIRED_KEYS:
        if key not in payload:
            errors.append(f"BENCH_{name}.json: missing key {key!r}")
    for scale, entry in payload.get("scales", {}).items():
        for key in _REQUIRED_SCALE_KEYS:
            if key not in entry:
                errors.append(
                    f"BENCH_{name}.json[{scale}]: missing key {key!r}")
    return errors


def check_regression(committed: dict, fresh: dict, name: str,
                     scale: str) -> list:
    """Compare a fresh run's deterministic ops to the committed file."""
    errors = []
    entry = committed.get("scales", {}).get(scale)
    if entry is None:
        return [f"BENCH_{name}.json has no {scale!r} scale entry"]
    committed_ops = entry["ops"]["optimized"]
    fresh_ops = fresh["ops"]["optimized"]
    for counter, committed_value in committed_ops.items():
        if not isinstance(committed_value, (int, float)) \
                or counter == "metric" or not committed_value:
            continue
        fresh_value = fresh_ops.get(counter, 0)
        if fresh_value > committed_value * (1 + REGRESSION_TOLERANCE):
            errors.append(
                f"{name}/{scale}: {counter} regressed "
                f"{committed_value} -> {fresh_value} "
                f"(>{REGRESSION_TOLERANCE:.0%} over baseline)")
    return errors


def check_wall_clock(fresh: dict, name: str, scale: str) -> list:
    """Optimized must not run materially slower than baseline."""
    wall = fresh["wall_clock_s"]
    if wall["baseline"] < WALL_CLOCK_FLOOR_S:
        return []
    if wall["optimized"] > wall["baseline"] * WALL_CLOCK_RATIO:
        return [f"{name}/{scale}: optimized wall-clock "
                f"{wall['optimized']}s exceeds baseline "
                f"{wall['baseline']}s by more than "
                f"{WALL_CLOCK_RATIO}x"]
    return []


def check_quality_bounds(results: dict, scales: tuple) -> list:
    """Sampled-mode quality must stay inside the declared envelopes of
    the exhaustive run at the same scale."""
    errors = []
    exhaustive = results.get("sched", {})
    sampled = results.get("sched_sampled", {})
    for scale in scales:
        reference = exhaustive.get(scale, {}).get("quality")
        candidate = sampled.get(scale, {}).get("quality")
        if reference is None or candidate is None:
            continue
        for metric, slack in QUALITY_BOUNDS.items():
            allowed = reference[metric] + slack
            if candidate[metric] > allowed:
                errors.append(
                    f"sched_sampled/{scale}: {metric} "
                    f"{candidate[metric]} outside declared envelope "
                    f"(exhaustive {reference[metric]} + {slack})")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="deterministic perf benchmarks")
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        action="append",
                        help="run only these scenarios (default: all)")
    parser.add_argument("--scale", choices=("smoke", "full", "both"),
                        default="both")
    parser.add_argument("--check", action="store_true",
                        help="compare against committed BENCH files "
                             "instead of rewriting them")
    args = parser.parse_args(argv)

    names = args.scenario or sorted(SCENARIOS)
    scales = ("smoke", "full") if args.scale == "both" else (args.scale,)
    failures = []
    all_results = {}
    for name in names:
        results = all_results[name] = {}
        for scale in scales:
            print(f"[{name}/{scale}] running ...", flush=True)
            results[scale] = run_scenario(name, scale)
            ops = results[scale]
            print(f"[{name}/{scale}] {ops['ops']['metric']}: "
                  f"optimized={ops['ops']['optimized'][ops['ops']['metric']]} "
                  f"baseline={ops['ops']['baseline'][ops['ops']['metric']]} "
                  f"reduction={ops['reduction']}x "
                  f"wall={ops['wall_clock_s']}", flush=True)
            if args.check:
                failures.extend(check_wall_clock(
                    results[scale], name, scale))
        if args.check:
            path = bench_path(name)
            if not path.exists():
                failures.append(f"missing committed file {path}")
                continue
            committed = json.loads(path.read_text())
            failures.extend(check_schema(committed, name))
            for scale in scales:
                failures.extend(check_regression(
                    committed, results[scale], name, scale))
        else:
            path = bench_path(name)
            payload = {"scenario": name, "scales": results}
            if path.exists():
                existing = json.loads(path.read_text())
                existing_scales = existing.get("scales", {})
                # Preserve entries for scales not re-run this time.
                for scale, entry in existing_scales.items():
                    payload["scales"].setdefault(scale, entry)
            path.write_text(json.dumps(payload, indent=2,
                                       sort_keys=True) + "\n")
            print(f"[{name}] wrote {path}", flush=True)

    failures.extend(check_quality_bounds(all_results, scales))

    if failures:
        print("PERF CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
