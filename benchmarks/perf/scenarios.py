"""The three perf scenarios: kernel churn, scheduling sweep, etcd fanout.

Each function builds a fresh simulation, runs it to completion, and
returns a dict with three sections:

``ops``
    The deterministic work counters the optimization targets (watcher
    visits, predicate evaluations, events processed).  These shrink
    when the fast paths are on and are what the CI regression check
    compares.
``state``
    A digest of observable end state.  Must be byte-identical with the
    fast paths on and off — the harness asserts it — so ``ops`` is the
    *only* thing an optimization is allowed to change.
``params``
    The scenario sizes, echoed for the BENCH file.

Everything here is schedule-deterministic: no wall clock (the harness
times the call from outside), no unseeded randomness.
"""

from __future__ import annotations

import hashlib
import json

from repro.docker import Image
from repro.etcd.kv import EtcdStore
from repro.kube import (
    Cluster,
    ContainerSpec,
    NodeCapacity,
    ObjectMeta,
    Pod,
    PodSpec,
    ResourceRequest,
)
from repro.kube.scheduling.framework import SchedulerConfig
from repro.perf import profile
from repro.sim import Environment, RngRegistry
from repro.sim.core import OBSERVER


def _digest(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()[:16]


# -- kernel churn -----------------------------------------------------------


def kernel_churn(processes: int = 50, steps: int = 200,
                 seed: int = 0) -> dict:
    """Same-instant burst churn through the timer wheel.

    Every worker sleeps an integer number of ticks, so whole cohorts
    of timeouts land on the same ``(time, priority)`` instant — the
    settle-then-drain shape of the federation bus and of kubelet
    setup storms.  Every fifth step the workers instead park on one
    shared per-tick barrier event that a driver fires (N waiters on a
    single callback list: the pooled-callback fan-out path).  The
    timer wheel collapses each burst into one outer heap push per
    distinct instant, so ``heap_pushes`` (outer-heap pushes) is the
    metric the optimization shrinks; ``events_scheduled`` and the
    profile digest stay mode-independent.
    """
    env = Environment()
    profiler = profile(env)
    rng = RngRegistry(seed).stream("kernel-churn")
    barrier = {"event": env.event()}
    live = {"workers": processes}

    def driver():
        # Fires one barrier per tick until every worker is done, so no
        # worker is left parked on a barrier that never triggers.
        while live["workers"]:
            yield env.timeout(1.0)
            current, barrier["event"] = barrier["event"], env.event()
            current.succeed()

    def worker(index):
        for step in range(steps):
            if step % 5 == 4:
                # Fan-in: every worker parks on the same barrier event.
                yield barrier["event"]
            else:
                yield env.timeout(float(rng.choice((1, 2, 3))))
        live["workers"] -= 1

    env.process(driver(), name="driver")
    for index in range(processes):
        env.process(worker(index), name=f"churn:{index}")
    env.run()
    report = profiler.report()
    return {
        "params": {"processes": processes, "steps": steps, "seed": seed},
        "ops": {
            "metric": "heap_pushes",
            "heap_pushes": env.heap_pushes,
            "events_processed": report["events_processed"],
            "events_scheduled": report["events_scheduled"],
        },
        "state": {
            "now": env.now,
            "events_scheduled": report["events_scheduled"],
            "profile_digest": _digest(report),
        },
    }


# -- scheduling sweep -------------------------------------------------------


def sched_sweep(nodes: int = 1000, pods: int = 5000,
                seed: int = 0, pct: int = 100,
                min_feasible: int = 100) -> dict:
    """Pods arriving over simulated time on a large cluster.

    ``pct``/``min_feasible`` map to ``percentage_of_nodes_to_score`` /
    ``min_feasible_nodes_to_find``: at the default 100 the scheduler is
    exhaustive and byte-identical to the pre-sampling pipeline (the
    harness asserts the state digest against the disabled-mode run);
    below 100 it samples, and the ``quality`` section carries the
    deterministic placement-quality metrics the sampled entry must keep
    within the declared envelopes of the exhaustive run (see
    ``QUALITY_BOUNDS`` in the harness).

    Quality is sampled by an OBSERVER-priority poller (runs after each
    instant settles, so it never perturbs the schedule): time-averaged
    pending-queue depth, time-averaged GPU fragmentation (share of
    occupied nodes that are only partially occupied — the stranding
    sampling could plausibly worsen), plus the mean pod wait from
    creation to bind.
    """
    env = Environment()
    config = SchedulerConfig(percentage_of_nodes_to_score=pct,
                             min_feasible_nodes_to_find=min_feasible)
    cluster = Cluster(env, RngRegistry(seed), config)
    image = Image("bench", framework="none", size_bytes=1e6)
    cluster.push_image(image)
    cluster.add_nodes(nodes, NodeCapacity(cpus=32, memory_gb=256, gpus=4,
                                          gpu_type="K80"))
    rng = RngRegistry(seed).stream("sched-sweep")

    def sleep_workload(duration):
        def workload(container):
            yield env.timeout(duration)
            return 0
        return workload

    def submit():
        for index in range(pods):
            yield env.timeout(rng.uniform(0.02, 0.18))
            pod = Pod(
                meta=ObjectMeta(name=f"bench-{index}"),
                spec=PodSpec(
                    containers=[ContainerSpec(
                        "c", "bench",
                        workload=sleep_workload(rng.uniform(20, 60)))],
                    resources=ResourceRequest(
                        cpus=1, memory_gb=2,
                        gpus=rng.choice((1, 1, 1, 2, 4)))))
            cluster.api.create_pod(pod)

    waits: dict = {}

    def record_wait(verb, pod):
        if pod.scheduled_at is not None and pod.name not in waits:
            waits[pod.name] = pod.scheduled_at - pod.meta.creation_time

    cluster.api.subscribe("pods", record_wait)
    samples = {"ticks": 0, "pending": 0, "fragmented": 0.0}
    submitted = {"done": False}

    def quality_poller():
        while True:
            yield env.timeout(5.0, priority=OBSERVER)
            samples["ticks"] += 1
            samples["pending"] += cluster.scheduler.queue_length
            occupied = partial = 0
            for allocation in cluster.allocations.values():
                if allocation.free_gpus < allocation.capacity.gpus:
                    occupied += 1
                    if allocation.free_gpus > 0:
                        partial += 1
            if occupied:
                samples["fragmented"] += partial / occupied
            elif submitted["done"] \
                    and not cluster.scheduler.queue_length:
                return  # drained: the poller must not keep run() alive

    def submit_all():
        yield from submit()
        submitted["done"] = True

    env.process(submit_all(), name="submitter")
    env.process(quality_poller(), name="quality-poller")
    env.run()
    scheduler = cluster.scheduler
    ticks = samples["ticks"] or 1
    wait_values = sorted(waits.values())
    return {
        "params": {"nodes": nodes, "pods": pods, "seed": seed,
                   "pct": pct, "min_feasible": min_feasible},
        "ops": {
            "metric": "filter_evals",
            "nodes_examined": scheduler.nodes_examined,
            "filter_evals": scheduler.filter_evals,
            "filter_cache_hits": scheduler.filter_cache_hits,
            "score_evals": scheduler.score_evals,
            "score_cache_hits": scheduler.score_cache_hits,
        },
        "state": {
            "now": env.now,
            "events_processed": env.events_processed,
            "pods_scheduled": scheduler.pods_scheduled,
            "phase_counts": cluster.api.pod_phase_counts(),
            "allocated_gpus": cluster.allocated_gpus(),
        },
        "quality": {
            "mean_pending_depth": round(samples["pending"] / ticks, 3),
            "mean_fragmentation": round(samples["fragmented"] / ticks, 4),
            "mean_wait_s": round(
                sum(wait_values) / max(1, len(wait_values)), 4),
        },
    }


# -- etcd fanout ------------------------------------------------------------


def etcd_fanout(watchers: int = 500, writes: int = 2000,
                seed: int = 0) -> dict:
    """Many concurrent watches, writes spread over the keyspace; counts
    how many watchers each notification touches."""
    env = Environment()
    store = EtcdStore(env)
    rng = RngRegistry(seed).stream("etcd-fanout")
    exact_count = watchers * 4 // 5
    prefix_count = watchers - exact_count
    exact = [store.watch(f"/jobs/job-{i}/status")
             for i in range(exact_count)]
    prefixes = [store.watch_prefix(f"/jobs/job-{i}/")
                for i in range(prefix_count)]

    def writer():
        for index in range(writes):
            yield env.timeout(0.01)
            job = rng.randrange(exact_count)
            if index % 5 == 4:
                store.put(f"/jobs/job-{job}/progress", index)
            else:
                store.put(f"/jobs/job-{job}/status", f"step-{index}")

    env.process(writer(), name="writer")
    env.run()
    pending = [w.pending() for w in exact] + \
              [w.pending() for w in prefixes]
    return {
        "params": {"watchers": watchers, "writes": writes, "seed": seed},
        "ops": {
            "metric": "watcher_visits",
            "watcher_visits": store.watcher_visits,
            "notify_calls": store.notify_calls,
        },
        "state": {
            "revision": store.revision,
            "deliveries": sum(pending),
            "pending_digest": _digest(pending),
        },
    }


#: name -> (function, smoke kwargs, full kwargs)
SCENARIOS = {
    "kernel": (kernel_churn,
               {"processes": 10, "steps": 100},
               {"processes": 50, "steps": 200}),
    "sched": (sched_sweep,
              {"nodes": 100, "pods": 400},
              {"nodes": 1000, "pods": 5000}),
    # Sampled mode: pct=5 examines max(min_feasible, 5% of the cluster)
    # feasible nodes per pod.  Sampling is a *config* knob, identical in
    # optimized and disabled modes, so the state-digest equivalence
    # assert still applies; placement quality vs the exhaustive "sched"
    # entry is what QUALITY_BOUNDS in the harness constrains.  The
    # smoke scale lowers min_feasible so a 100-node cluster actually
    # samples instead of degenerating to exhaustive.
    "sched_sampled": (sched_sweep,
                      {"nodes": 100, "pods": 400,
                       "pct": 5, "min_feasible": 10},
                      {"nodes": 1000, "pods": 5000,
                       "pct": 5, "min_feasible": 100}),
    "etcd": (etcd_fanout,
             {"watchers": 100, "writes": 400},
             {"watchers": 500, "writes": 2000}),
}
