"""The three perf scenarios: kernel churn, scheduling sweep, etcd fanout.

Each function builds a fresh simulation, runs it to completion, and
returns a dict with three sections:

``ops``
    The deterministic work counters the optimization targets (watcher
    visits, predicate evaluations, events processed).  These shrink
    when the fast paths are on and are what the CI regression check
    compares.
``state``
    A digest of observable end state.  Must be byte-identical with the
    fast paths on and off — the harness asserts it — so ``ops`` is the
    *only* thing an optimization is allowed to change.
``params``
    The scenario sizes, echoed for the BENCH file.

Everything here is schedule-deterministic: no wall clock (the harness
times the call from outside), no unseeded randomness.
"""

from __future__ import annotations

import hashlib
import json

from repro.docker import Image
from repro.etcd.kv import EtcdStore
from repro.kube import (
    Cluster,
    ContainerSpec,
    NodeCapacity,
    ObjectMeta,
    Pod,
    PodSpec,
    ResourceRequest,
)
from repro.perf import profile
from repro.sim import Environment, RngRegistry


def _digest(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()[:16]


# -- kernel churn -----------------------------------------------------------


def kernel_churn(processes: int = 50, steps: int = 200,
                 seed: int = 0) -> dict:
    """Timeout/condition churn: ~``processes * steps`` events through
    the heap, with condition fan-in exercising callback lists."""
    env = Environment()
    profiler = profile(env)
    rng = RngRegistry(seed).stream("kernel-churn")

    def worker(index):
        for step in range(steps):
            if step % 10 == 9:
                # Condition fan-in: two timeouts joined by all_of.
                yield env.all_of([env.timeout(rng.uniform(0.1, 1.0)),
                                  env.timeout(rng.uniform(0.1, 1.0))])
            else:
                yield env.timeout(rng.uniform(0.1, 1.0))

    for index in range(processes):
        env.process(worker(index), name=f"churn:{index}")
    env.run()
    report = profiler.report()
    return {
        "params": {"processes": processes, "steps": steps, "seed": seed},
        "ops": {
            "metric": "events_processed",
            "events_processed": report["events_processed"],
            "events_scheduled": report["events_scheduled"],
            "peak_heap": report["peak_heap"],
        },
        "state": {
            "now": env.now,
            "profile_digest": _digest(report),
        },
    }


# -- scheduling sweep -------------------------------------------------------


def sched_sweep(nodes: int = 1000, pods: int = 5000,
                seed: int = 0) -> dict:
    """Pods arriving over simulated time on a large cluster; counts how
    many full predicate evaluations the scheduler performs."""
    env = Environment()
    cluster = Cluster(env, RngRegistry(seed))
    image = Image("bench", framework="none", size_bytes=1e6)
    cluster.push_image(image)
    cluster.add_nodes(nodes, NodeCapacity(cpus=32, memory_gb=256, gpus=4,
                                          gpu_type="K80"))
    rng = RngRegistry(seed).stream("sched-sweep")

    def sleep_workload(duration):
        def workload(container):
            yield env.timeout(duration)
            return 0
        return workload

    def submit():
        for index in range(pods):
            yield env.timeout(rng.uniform(0.02, 0.18))
            pod = Pod(
                meta=ObjectMeta(name=f"bench-{index}"),
                spec=PodSpec(
                    containers=[ContainerSpec(
                        "c", "bench",
                        workload=sleep_workload(rng.uniform(20, 60)))],
                    resources=ResourceRequest(
                        cpus=1, memory_gb=2,
                        gpus=rng.choice((1, 1, 1, 2, 4)))))
            cluster.api.create_pod(pod)

    env.process(submit(), name="submitter")
    env.run()
    scheduler = cluster.scheduler
    return {
        "params": {"nodes": nodes, "pods": pods, "seed": seed},
        "ops": {
            "metric": "filter_evals",
            "filter_evals": scheduler.filter_evals,
            "filter_cache_hits": scheduler.filter_cache_hits,
        },
        "state": {
            "now": env.now,
            "events_processed": env.events_processed,
            "pods_scheduled": scheduler.pods_scheduled,
            "phase_counts": cluster.api.pod_phase_counts(),
            "allocated_gpus": cluster.allocated_gpus(),
        },
    }


# -- etcd fanout ------------------------------------------------------------


def etcd_fanout(watchers: int = 500, writes: int = 2000,
                seed: int = 0) -> dict:
    """Many concurrent watches, writes spread over the keyspace; counts
    how many watchers each notification touches."""
    env = Environment()
    store = EtcdStore(env)
    rng = RngRegistry(seed).stream("etcd-fanout")
    exact_count = watchers * 4 // 5
    prefix_count = watchers - exact_count
    exact = [store.watch(f"/jobs/job-{i}/status")
             for i in range(exact_count)]
    prefixes = [store.watch_prefix(f"/jobs/job-{i}/")
                for i in range(prefix_count)]

    def writer():
        for index in range(writes):
            yield env.timeout(0.01)
            job = rng.randrange(exact_count)
            if index % 5 == 4:
                store.put(f"/jobs/job-{job}/progress", index)
            else:
                store.put(f"/jobs/job-{job}/status", f"step-{index}")

    env.process(writer(), name="writer")
    env.run()
    pending = [w.pending() for w in exact] + \
              [w.pending() for w in prefixes]
    return {
        "params": {"watchers": watchers, "writes": writes, "seed": seed},
        "ops": {
            "metric": "watcher_visits",
            "watcher_visits": store.watcher_visits,
            "notify_calls": store.notify_calls,
        },
        "state": {
            "revision": store.revision,
            "deliveries": sum(pending),
            "pending_digest": _digest(pending),
        },
    }


#: name -> (function, smoke kwargs, full kwargs)
SCENARIOS = {
    "kernel": (kernel_churn,
               {"processes": 10, "steps": 100},
               {"processes": 50, "steps": 200}),
    "sched": (sched_sweep,
              {"nodes": 100, "pods": 400},
              {"nodes": 1000, "pods": 5000}),
    "etcd": (etcd_fanout,
             {"watchers": 100, "writes": 400},
             {"watchers": 500, "writes": 2000}),
}
