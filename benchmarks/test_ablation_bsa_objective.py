"""Ablation — BSA's packing objective vs a load-balancing objective.

Section 3.5: BSA takes "an objective function, such as load balancing";
FfDL chose GPU packing because "in a DL platform, GPU is typically a
scarce resource".  This ablation shows why: under the balance objective
the gang scheduler spreads gangs across machines, recreating exactly the
fragmentation that Pack (Section 3.4) exists to prevent — a subsequent
whole-node job cannot be placed.
"""


from repro.analysis import print_table
from repro.docker import Image
from repro.kube import Cluster, NodeCapacity, SchedulerConfig
from repro.sim import Environment, RngRegistry
from repro.workloads.synthetic import submit_gang_jobs


def run_with_objective(objective):
    env = Environment()
    config = SchedulerConfig(policy="pack", gang=True,
                             bsa_objective=objective)
    cluster = Cluster(env, RngRegistry(4), config)
    cluster.push_image(Image("learner", size_bytes=1e6))
    cluster.add_nodes(4, NodeCapacity(cpus=64, memory_gb=512, gpus=4,
                                      gpu_type="K80"))
    # Four 1-learner x 1-GPU gangs, then one whole-node (4-GPU) gang.
    submit_gang_jobs(env, cluster, learners=1, gpus_per_learner=1, jobs=4)
    env.run(until=30)
    nodes_used = sum(1 for a in cluster.allocations.values()
                     if a.allocated_gpus > 0)
    big = submit_gang_jobs(env, cluster, learners=1, gpus_per_learner=4,
                           jobs=1)
    env.run(until=60)
    big_pods = next(iter(big.values()))
    big_running = all(p.phase == "Running" for p in big_pods)
    return nodes_used, big_running


def run_ablation():
    pack = run_with_objective("pack")
    balance = run_with_objective("balance")
    print_table(
        ["BSA objective", "nodes used by 4 small gangs",
         "4-GPU gang schedulable?"],
        [["pack (FfDL)", pack[0], "yes" if pack[1] else "NO"],
         ["balance", balance[0], "yes" if balance[1] else "NO"]],
        title="Ablation: BSA objective function")
    return pack, balance


def test_ablation_bsa_objective(once):
    pack, balance = once(run_ablation)
    assert pack[0] == 1  # packing crams the small gangs onto one node
    assert pack[1] is True
    assert balance[0] == 4  # balancing spreads them across all nodes
    assert balance[1] is False  # ... stranding the whole-node job
