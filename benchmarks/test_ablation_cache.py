"""Ablation — the object-storage mount cache across training epochs.

Section 3.7: the mount driver "streams files on demand and caches them so
they can be reused across training epochs and jobs.  This is an important
optimization for several use cases."

Ablation: one job training for three epochs over a dataset that fits the
cache, with the cache enabled vs disabled.  With the cache, epochs 2-3
read from local disk; without it, every epoch re-streams the dataset over
the shared link.
"""


from repro.analysis import print_table
from repro.core import FfDLPlatform, JobManifest, PlatformConfig
from repro.core import statuses as st
from repro.sim import Environment, RngRegistry

EPOCHS = 3
DATASET_OBJECTS = 12
OBJECT_BYTES = 256e6


def run_job(cache_bytes):
    env = Environment()
    config = PlatformConfig(mount_cache_bytes=cache_bytes,
                            oss_bandwidth_bps=2e8)  # slow link: 200 MB/s
    platform = FfDLPlatform(env, RngRegistry(5), config)
    platform.add_gpu_nodes(1, gpus_per_node=4, gpu_type="K80")
    platform.admission.register("bench", gpu_quota=8)
    # iterations = EPOCHS passes over the dataset.
    spec_samples = OBJECT_BYTES / 110_000.0
    iters_per_object = int(spec_samples / 128)
    iterations = EPOCHS * DATASET_OBJECTS * iters_per_object
    manifest = JobManifest(
        name="cache-ablation", user="bench", framework="tensorflow",
        model="resnet50", learners=1, gpus_per_learner=1, gpu_type="K80",
        iterations=iterations, batch_size=128,
        dataset_objects=DATASET_OBJECTS,
        dataset_object_bytes=OBJECT_BYTES)
    job_id = env.run_until_complete(platform.submit_job(manifest))
    env.run_until_complete(platform.wait_for_terminal(job_id), limit=1e8)
    job = platform.job(job_id)
    assert job.status.current == st.COMPLETED
    processing = (job.status.time_of(st.STORING) -
                  job.status.time_of(st.PROCESSING))
    streamed_gb = platform.oss.link.bytes_transferred / 1e9
    hit_rate = platform.mount_cache.hit_rate if platform.mount_cache \
        else 0.0
    return processing, streamed_gb, hit_rate


def run_ablation():
    cached = run_job(cache_bytes=200e9)
    uncached = run_job(cache_bytes=0)
    print_table(
        ["mount cache", "PROCESSING time", "bytes streamed from OSS",
         "cache hit rate"],
        [["enabled", f"{cached[0]:.0f}s", f"{cached[1]:.1f} GB",
          f"{cached[2]:.0%}"],
         ["disabled", f"{uncached[0]:.0f}s", f"{uncached[1]:.1f} GB",
          "-"]],
        title=f"Ablation: mount cache over {EPOCHS} epochs")
    return cached, uncached


def test_ablation_mount_cache(once):
    (cached_time, cached_gb, hit_rate), \
        (uncached_time, uncached_gb, _)= once(run_ablation)
    # Without the cache every epoch re-streams: ~EPOCHS x the bytes.
    assert uncached_gb > (EPOCHS - 0.5) * cached_gb / 1.5
    assert cached_gb < uncached_gb / 2
    # And the job runs faster with the cache on a slow link.
    assert cached_time < uncached_time
    assert hit_rate > 0.5
