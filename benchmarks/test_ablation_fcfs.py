"""Ablation — the largest-gang-first FCFS tiebreak (Section 3.6).

"The corner case when multiple jobs arrive at the same instant, the FCFS
conflict is resolved by picking the largest gang (job) first."

Ablation: a simultaneous burst of one large job and many small ones onto
a nearly-full cluster.  Largest-first guarantees the big (expensive,
usually highest-value) job wins the tiebreak instead of being nibbled out
of capacity by small jobs.
"""


from repro.analysis import print_table
from repro.kube import Cluster, NodeCapacity, SchedulerConfig
from repro.sim import Environment, RngRegistry
from repro.workloads.synthetic import submit_gang_jobs


def run_burst(largest_first):
    env = Environment()
    config = SchedulerConfig(policy="pack", gang=True)
    cluster = Cluster(env, RngRegistry(2), config)
    from repro.docker import Image
    cluster.push_image(Image("learner", size_bytes=1e6))
    cluster.add_nodes(2, NodeCapacity(cpus=64, memory_gb=512, gpus=4,
                                      gpu_type="K80"))
    if not largest_first:
        # Plain FCFS: disable the size tiebreak by patching the pass
        # ordering to arrival-then-name.
        scheduler = cluster.scheduler

        def plain_order():
            return sorted(scheduler._gangs.values(),
                          key=lambda g: (g.arrival_time, g.key))

        original = scheduler._gang_pass

        def patched_pass():
            order = plain_order()
            for entry in order:
                if entry.key not in scheduler._gangs:
                    continue
                yield env.timeout(config.per_pod_latency_s *
                                  max(1, len(entry.pod_names)))
                yield from scheduler._attempt_gang(entry)

        scheduler._gang_pass = patched_pass
    # Simultaneous burst: one 2Lx4G job ("aaa" sorts first under plain
    # FCFS? no: small jobs named syn-1x2-*, big named syn-2x4-0; plain
    # FCFS ties on arrival_time and falls back to name order).
    small = submit_gang_jobs(env, cluster, learners=1, gpus_per_learner=2,
                             jobs=4)
    big = submit_gang_jobs(env, cluster, learners=2, gpus_per_learner=4,
                           jobs=1)
    env.run(until=60)
    big_pods = next(iter(big.values()))
    big_running = all(p.phase == "Running" for p in big_pods)
    small_running = sum(1 for pods in small.values()
                        if all(p.phase == "Running" for p in pods))
    return big_running, small_running, cluster.gpu_utilization()


def run_ablation():
    largest = run_burst(largest_first=True)
    plain = run_burst(largest_first=False)
    print_table(
        ["tiebreak", "8-GPU job running", "2-GPU jobs running",
         "GPU utilization"],
        [["largest gang first (FfDL)", largest[0], largest[1],
          f"{largest[2]:.0%}"],
         ["plain FCFS", plain[0], plain[1], f"{plain[2]:.0%}"]],
        title="Ablation: simultaneous-arrival tiebreak")
    return largest, plain


def test_ablation_largest_gang_first(once):
    largest, plain = once(run_ablation)
    # FfDL's tiebreak runs the big job; plain order lets the small jobs
    # fragment the cluster and strand it.
    assert largest[0] is True
    assert plain[0] is False
    assert plain[1] > 0
