"""Ablation — the Guardian delegate vs direct LCM deployment.

Section 3.3's design argument: deployment is a multi-step process and must
be atomic; a crash mid-deploy must not leak "an inactive job component
with allocated resources (i.e. a zombie)".  The Guardian (a K8S Job) gets
restarted and rolls back/retries; without it, a crash strands partial
state and the job.

Ablation: inject a crash after deployment step 2 on the first attempt.
With retries (Guardian semantics) the job completes and nothing leaks;
with the delegate's retries disabled (backoff 0 — "direct" deployment
semantics) the job is dead, and the half-deployed objects are the zombies
the paper warns about.
"""


from repro.analysis import print_table
from repro.core import FfDLPlatform, JobManifest, PlatformConfig
from repro.core import statuses as st
from repro.sim import Environment, RngRegistry


def deploy_with_crash(backoff_limit):
    env = Environment()
    config = PlatformConfig(guardian_backoff_limit=backoff_limit)
    platform = FfDLPlatform(env, RngRegistry(1), config)
    if backoff_limit == 0:
        # "Direct" deployment semantics: no delegate, so nothing reclaims
        # partial state after a crash.
        platform.enable_failure_cleanup = False
    platform.add_gpu_nodes(2, gpus_per_node=4, gpu_type="K80")
    platform.admission.register("bench", gpu_quota=16)
    manifest = JobManifest(name="ablation", user="bench",
                           framework="tensorflow", model="resnet50",
                           learners=1, gpus_per_learner=1, gpu_type="K80",
                           iterations=200)
    platform.crash_guardian_after_step = 2
    job_id = env.run_until_complete(platform.submit_job(manifest))
    job = platform.job(job_id)
    # Heal after the first crash so retries (if any) can succeed.
    while job.guardian_attempts < 1 and env.now < 100:
        env.run(until=env.now + 0.5)
    env.run(until=env.now + 5)
    platform.crash_guardian_after_step = 0
    env.run_until_complete(platform.wait_for_terminal(job_id), limit=1e6)
    env.run(until=env.now + 60)
    api = platform.cluster.api
    zombies = sum([
        api.exists("networkpolicies", job.netpol_name),
        api.exists("pvcs", job.pvc_name),
        api.exists("statefulsets", job.statefulset_name),
        api.exists("deployments", job.helper_name),
    ])
    return job.status.current, zombies, job.guardian_attempts


def run_ablation():
    with_guardian = deploy_with_crash(backoff_limit=3)
    without = deploy_with_crash(backoff_limit=0)
    print_table(
        ["deployment mode", "job outcome", "zombie objects leaked",
         "deploy attempts"],
        [["Guardian (rollback + retry)", *with_guardian],
         ["direct (no retry)", *without]],
        title="Ablation: atomic deployment via the Guardian")
    return with_guardian, without


def test_ablation_guardian(once):
    with_guardian, without = once(run_ablation)
    status, zombies, attempts = with_guardian
    assert status == st.COMPLETED
    assert zombies == 0
    assert attempts >= 2
    status, zombies, _attempts = without
    assert status == st.FAILED
    assert zombies >= 1  # the zombie resources the paper warns about
