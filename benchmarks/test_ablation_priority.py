"""Ablation — priority management vs plain FCFS dispatch.

Section 3.6: "Fair sharing doesn't work well — some users/customers seem
to be/become more important than others", with "exponentially decreasing
priorities for heavy internal users" listed as ongoing work.  This
ablation runs the same contended backlog under FCFS and under the
:class:`PriorityManager` dispatch order and measures per-user mean wait:
with PM, a light user's occasional job no longer queues behind a heavy
user's backlog.
"""


from repro.analysis import print_table
from repro.core.priority import PriorityManager

GPUS = 8
JOB_DURATION_S = 1800.0


def build_backlog():
    """60 jobs from a heavy user, 6 interleaved from a light user."""
    jobs = []
    for i in range(60):
        jobs.append((f"heavy-{i}", "heavy", float(i)))
    for i in range(6):
        jobs.append((f"light-{i}", "light", float(i * 10) + 0.5))
    jobs.sort(key=lambda j: j[2])
    return jobs


def simulate(order_fn):
    """Greedy dispatch onto GPUS slots; returns per-user mean wait."""
    jobs = build_backlog()
    pending = list(jobs)
    slot_free_at = [0.0] * GPUS
    waits = {"heavy": [], "light": []}
    now = 0.0
    while pending:
        slot = min(range(GPUS), key=lambda s: slot_free_at[s])
        now = max(slot_free_at[slot], now)
        ready = [j for j in pending if j[2] <= now] or [pending[0]]
        now = max(now, min(j[2] for j in ready))
        ready = [j for j in pending if j[2] <= now]
        choice_id = order_fn(ready, now)[0]
        job = next(j for j in ready if j[0] == choice_id)
        pending.remove(job)
        waits[job[1]].append(now - job[2])
        slot_free_at[slot] = now + JOB_DURATION_S
    return {user: sum(values) / len(values)
            for user, values in waits.items()}


def fcfs_order(ready, _now):
    return [job_id for job_id, _u, _t in sorted(ready,
                                                key=lambda j: j[2])]


def make_pm_order():
    pm = PriorityManager(half_life_hours=24.0)
    pm.register_internal("heavy")
    pm.register_internal("light")
    pm.charge("heavy", gpus=64, duration_s=48 * 3600, now_s=0.0)

    def order(ready, now):
        return pm.dispatch_order(ready, now_s=now)

    return order


def run_ablation():
    fcfs = simulate(fcfs_order)
    pm = simulate(make_pm_order())
    print_table(
        ["dispatch", "heavy-user mean wait", "light-user mean wait"],
        [["FCFS", f"{fcfs['heavy']:.0f}s", f"{fcfs['light']:.0f}s"],
         ["PriorityManager", f"{pm['heavy']:.0f}s",
          f"{pm['light']:.0f}s"]],
        title="Ablation: priority management vs FCFS "
              f"(66-job backlog on {GPUS} GPUs)")
    return fcfs, pm


def test_ablation_priority(once):
    fcfs, pm = once(run_ablation)
    # FCFS: the light user waits roughly as long as the heavy backlog.
    assert fcfs["light"] > 0.3 * fcfs["heavy"]
    # PM: the light user's wait collapses (bounded below by waiting for
    # the next slot to free, ~JOB_DURATION_S/GPUS on a full cluster)...
    assert pm["light"] < 0.4 * fcfs["light"]
    # ...at modest cost to the heavy user's average.
    assert pm["heavy"] < 1.5 * fcfs["heavy"]
