"""Ablation — etcd vs MongoDB as the status-coordination store.

Section 3.2: "We preferred to use etcd over MongoDB for coordination
because it is much faster and has some abstractions that MongoDB lacks,
like leases on keys and fine grained support for 'streaming watches' at
the level of a single key."

Ablation: propagate N learner status updates from a writer to an observer
through both stores.  etcd delivers each update via a streaming watch at
put latency; MongoDB needs the observer to poll, so delivery latency is
the write latency plus half the polling interval — an order of magnitude
worse even with aggressive 200ms polling.
"""


from repro.analysis import print_table
from repro.etcd import EtcdClient, EtcdStore
from repro.mongo import MongoClient, MongoDatabase
from repro.sim import Environment

UPDATES = 200
MONGO_POLL_S = 0.2


def etcd_latencies():
    env = Environment()
    client = EtcdClient(env, EtcdStore(env))
    watcher = client.watch("status/learner-0")
    latencies = []

    def observer():
        for _ in range(UPDATES):
            event = yield watcher.get()
            latencies.append(env.now - float(event.value))

    def writer():
        for i in range(UPDATES):
            yield env.timeout(1.0)
            yield client.put("status/learner-0", str(env.now))

    env.process(observer())
    env.process(writer())
    env.run()
    return latencies


def mongo_latencies():
    env = Environment()
    client = MongoClient(env, MongoDatabase())
    latencies = []
    seen = {"version": -1}

    def observer():
        while len(latencies) < UPDATES:
            yield env.timeout(MONGO_POLL_S)
            doc = yield client.find_one("statuses", {"_id": "learner-0"})
            if doc is not None and doc["version"] != seen["version"]:
                seen["version"] = doc["version"]
                latencies.append(env.now - doc["written_at"])

    def writer():
        for i in range(UPDATES):
            yield env.timeout(1.0)
            yield client.update_one(
                "statuses", {"_id": "learner-0"},
                {"$set": {"version": i, "written_at": env.now}},
                upsert=True)

    env.process(observer())
    env.process(writer())
    env.run(until=UPDATES * 1.0 + 30)
    return latencies


def run_ablation():
    etcd = etcd_latencies()
    mongo = mongo_latencies()
    mean_etcd = sum(etcd) / len(etcd)
    mean_mongo = sum(mongo) / len(mongo)
    print_table(
        ["store", "delivery mechanism", "mean status latency",
         "p100 latency"],
        [["etcd", "streaming watch", f"{mean_etcd * 1000:.1f} ms",
          f"{max(etcd) * 1000:.1f} ms"],
         ["MongoDB", f"poll @ {MONGO_POLL_S * 1000:.0f} ms",
          f"{mean_mongo * 1000:.1f} ms",
          f"{max(mongo) * 1000:.1f} ms"]],
        title="Ablation: status-update propagation, etcd vs MongoDB")
    print(f"\netcd is {mean_mongo / mean_etcd:.0f}x faster for "
          f"status coordination (the paper's rationale)")
    return mean_etcd, mean_mongo


def test_ablation_status_store(once):
    mean_etcd, mean_mongo = once(run_ablation)
    assert mean_etcd < 0.01  # single-digit milliseconds
    assert mean_mongo > 5 * mean_etcd
