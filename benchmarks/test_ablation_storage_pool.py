"""Ablation — dynamic NFS provisioning vs a pre-allocated volume pool.

Section 4 (lessons learned): "provisioning NFS volumes was slow and often
failed under high load.  Attempts to address this with a microservice to
pre-allocate and manage a pool of NFS volumes only increased the
complexity of the system."

Ablation: a burst of concurrent volume acquisitions against (a) the raw
dynamic provisioner and (b) the warm pool.  The pool is dramatically
faster and failure-free while warm — and degrades right back to dynamic
behaviour once drained, which is the operational complexity trap the
paper describes.
"""


from repro.analysis import print_table
from repro.errors import ProvisioningError
from repro.nfs import NFSProvisioner, VolumePool
from repro.sim import Environment, RngRegistry

BURST = 24


def run_burst(use_pool):
    env = Environment()
    provisioner = NFSProvisioner(env, RngRegistry(3))
    pool = None
    if use_pool:
        pool = VolumePool(env, provisioner, target_size=12,
                          refill_interval_s=5.0)
        env.run(until=400)  # warm the pool
    source = pool if pool is not None else provisioner
    outcomes = {"latencies": [], "failures": 0}

    def acquire():
        start = env.now
        try:
            yield source.acquire() if pool is not None else \
                provisioner.provision()
            outcomes["latencies"].append(env.now - start)
        except ProvisioningError:
            outcomes["failures"] += 1

    begin = env.now
    for _ in range(BURST):
        env.process(acquire())
    env.run(until=begin + 600)
    return outcomes


def run_ablation():
    dynamic = run_burst(use_pool=False)
    pooled = run_burst(use_pool=True)
    rows = []
    for name, outcome in (("dynamic provisioning", dynamic),
                          ("pre-allocated pool", pooled)):
        latencies = outcome["latencies"]
        mean = sum(latencies) / len(latencies) if latencies else float("nan")
        rows.append([name, len(latencies), outcome["failures"],
                     f"{mean:.1f}s",
                     f"{max(latencies):.1f}s" if latencies else "-"])
    print_table(["strategy", "succeeded", "failed", "mean latency",
                 "max latency"],
                rows, title=f"Ablation: {BURST}-volume provisioning burst")
    return dynamic, pooled


def test_ablation_storage_pool(once):
    dynamic, pooled = once(run_ablation)
    # The paper's observation: dynamic provisioning fails under load.
    assert dynamic["failures"] > 0
    # The warm pool absorbs the first half of the burst instantly, so its
    # mean latency is far lower and fewer (or no) requests fail.
    mean_dynamic = sum(dynamic["latencies"]) / len(dynamic["latencies"])
    mean_pooled = sum(pooled["latencies"]) / len(pooled["latencies"])
    assert mean_pooled < mean_dynamic / 2
    assert pooled["failures"] <= dynamic["failures"]
