"""Figure 3 — Spread vs Pack on a 60-day production trace.

Paper: (a) job arrivals by day (200-1400/day with a weekly rhythm) on a
400-GPU cluster (180 K80s + 220 V100s); (b) percentage of arriving jobs
queued >15 minutes — "Pack results in significantly fewer jobs queued for
more than 15 minutes - over 3x fewer queued jobs".

Reproduction: the synthetic trace generator (the published traces were
never released) replayed through both placement policies using the same
methodology as the paper ("we then simulated the effect of using both
Spread and Pack to schedule these jobs").  Trace length is configurable;
30 days keeps the benchmark quick while preserving the rates.
"""

import os


from repro.analysis import compare_policies, print_table
from repro.sim import RngRegistry
from repro.workloads import ProductionTrace, TraceConfig, arrivals_by_day

DAYS = int(os.environ.get("FFDL_FIG3_DAYS", "30"))


def run_fig3():
    trace = ProductionTrace(RngRegistry(42), TraceConfig(days=DAYS))
    jobs = trace.generate()
    arrivals = arrivals_by_day(jobs, DAYS)
    results = compare_policies(jobs, DAYS)
    spread = results["spread"].percent_delayed_by_day()
    pack = results["pack"].percent_delayed_by_day()
    rows = [[day, arrivals[day], f"{spread[day]:.1f}%",
             f"{pack[day]:.1f}%"] for day in range(DAYS)]
    print_table(["day", "jobs arriving (fig 3a)",
                 "% queued >15min, Spread", "% queued >15min, Pack"],
                rows, title=f"Figure 3: Spread vs Pack over {DAYS} days "
                            f"({len(jobs)} jobs, 400 GPUs)")
    totals = (results["spread"].total_delayed,
              results["pack"].total_delayed)
    print(f"\ntotal delayed jobs: spread={totals[0]} pack={totals[1]} "
          f"(ratio {totals[0] / max(1, totals[1]):.1f}x; paper: >3x)")
    return arrivals, spread, pack, totals


def test_fig3_spread_vs_pack(once):
    arrivals, spread, pack, (spread_total, pack_total) = once(run_fig3)
    # Fig 3a shape: daily arrivals within the published band.
    assert all(200 <= c <= 1400 for c in arrivals.values())
    # Fig 3b headline: Pack delays over 3x fewer jobs than Spread.
    assert spread_total >= 3 * pack_total
    # Daily ranges resemble the published plot.
    assert max(spread.values()) <= 25.0
    assert max(spread.values()) >= 8.0
    assert max(pack.values()) <= max(spread.values())
