"""Figure 4 — The need for gang scheduling.

Paper: 15 machines x 4 K80s; three workloads of 50 concurrent synchronous
jobs (2Lx1G, 2Lx2G, 4Lx1G), 20 repetitions each, with and without the BSA
gang scheduler.  CDFs of (a) temporarily deadlocked learners and (b) idle
GPUs.  Headline: ideal full-or-nothing scheduling happens only ~40% of the
time without gang scheduling, idle GPUs reach 46%, and with gang
scheduling both are zero in every run.
"""


from repro.analysis import empirical_cdf, print_table, probability_of_zero
from repro.workloads import GANG_WORKLOADS, run_gang_experiment

REPEATS = 20


def run_fig4():
    outcomes = {}
    for learners, gpus in GANG_WORKLOADS:
        for gang in (False, True):
            runs = [run_gang_experiment(learners, gpus, gang=gang, seed=s)
                    for s in range(REPEATS)]
            outcomes[(learners, gpus, gang)] = runs
    rows = []
    for (learners, gpus, gang), runs in outcomes.items():
        deadlocked = [r.deadlocked_learners for r in runs]
        idle = [r.idle_gpu_percent for r in runs]
        rows.append([
            f"50 jobs, {learners}L x {gpus}GPU/L",
            "gang (BSA)" if gang else "default",
            f"{min(deadlocked)}-{max(deadlocked)}",
            f"{probability_of_zero(deadlocked):.2f}",
            f"{max(idle):.0f}%",
        ])
    print_table(["workload", "scheduler", "deadlocked learners (range)",
                 "P(no deadlock)", "max idle GPUs"],
                rows, title=f"Figure 4: deadlocks over {REPEATS} runs")
    print("\nCDF of deadlocked learners (default scheduler):")
    for learners, gpus in GANG_WORKLOADS:
        runs = outcomes[(learners, gpus, False)]
        cdf = empirical_cdf([r.deadlocked_learners for r in runs])
        points = ", ".join(f"({v:.0f}, {p:.2f})" for v, p in cdf)
        print(f"  {learners}Lx{gpus}G: {points}")
    return outcomes


def test_fig4_gang_scheduling(once):
    outcomes = once(run_fig4)
    for learners, gpus in GANG_WORKLOADS:
        gang_runs = outcomes[(learners, gpus, True)]
        # "The number of idle GPUs and the number of temporarily
        # deadlocked jobs has been zero, for all runs with gang
        # scheduling."
        assert all(r.deadlocked_learners == 0 for r in gang_runs)
        assert all(r.idle_gpus == 0 for r in gang_runs)
        default_runs = outcomes[(learners, gpus, False)]
        deadlocked = [r.deadlocked_learners for r in default_runs]
        # Deadlocks occur in a majority-ish of runs without gang mode.
        assert probability_of_zero(deadlocked) < 0.7
        assert max(deadlocked) >= 4
    # Idle GPUs can reach tens of percent (paper: up to 46%).
    worst_idle = max(r.idle_gpu_percent
                     for (l, g, gang), runs in outcomes.items()
                     if not gang for r in runs)
    assert worst_idle >= 25.0
