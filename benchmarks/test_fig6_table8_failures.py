"""Figure 6 + Table 8 — scheduling-failure analysis.

Paper (Section 5.6), from four months of scheduler logs on a 680-GPU
production cluster:

* Figure 6 — distribution of FailedScheduling over pod types: >60%
  learners, ~15% lhelper, a long tail of operational pod types.
* Table 8 — distribution over failure reasons: ~64% "No nodes available
  that match all of the predicates", 17% binding rejected, 15.1% skip
  schedule deleting pod, 1.94% persistentvolumeclaim not found, 1.6% pods
  not found, 0.17% timeouts, 0.17% assume-pod races.

Reproduction: a multi-day, fault-injected, heavily loaded run of the full
platform; events are classified from the same log-message taxonomy.  The
operational pod types of the production cluster (validation-gpu,
dvt-testbox, ...) do not exist here, so the type distribution is over
learner / lhelper / jobmonitor.
"""

import os


from repro.analysis import print_table
from repro.kube.events import (
    REASON_ASSUME_FAILED,
    REASON_BINDING_REJECTED,
    REASON_NO_NODES,
    REASON_POD_NOT_FOUND,
    REASON_PVC_NOT_FOUND,
    REASON_SKIP_DELETING,
    REASON_TIMEOUT,
)
from repro.workloads import FailureStudyConfig, run_failure_study

DAYS = int(os.environ.get("FFDL_FAILURE_DAYS", "4"))

PAPER_REASONS = {
    REASON_BINDING_REJECTED: 17.05,
    REASON_TIMEOUT: 0.169,
    REASON_POD_NOT_FOUND: 1.603,
    REASON_ASSUME_FAILED: 0.169,
    REASON_PVC_NOT_FOUND: 1.94,
    REASON_SKIP_DELETING: 15.1,
    REASON_NO_NODES: 64.0,
}


from functools import lru_cache


@lru_cache(maxsize=1)
def _study():
    config = FailureStudyConfig(days=DAYS, seed=1,
                                timeout_race_probability=3e-5,
                                assume_race_probability=3e-5)
    return run_failure_study(config)


def run_study():
    # Both tests analyse the same run; compute it once.
    return _study()


def test_fig6_pod_type_distribution(once):
    result = once(run_study)
    fractions = result.failed_type_fractions()
    rows = [[pod_type, f"{100 * fraction:.1f}%"]
            for pod_type, fraction in
            sorted(fractions.items(), key=lambda kv: -kv[1])]
    print_table(["pod type", "% of failed-scheduling pods"],
                rows, title="Figure 6: scheduling failures by pod type "
                            f"({sum(result.failed_pods_by_type().values())}"
                            " unique pods)")
    # Paper: "more than 60% of failed scheduling pods are learners".
    assert fractions.get("learner", 0.0) > 0.60
    # Helper and guardian pods appear in the tail.
    assert fractions.get("lhelper", 0.0) > 0.0


def test_table8_failure_reasons(once):
    result = once(run_study)
    fractions = result.reason_fractions()
    rows = []
    for reason, paper_pct in sorted(PAPER_REASONS.items(),
                                    key=lambda kv: -kv[1]):
        measured = 100.0 * fractions.get(reason, 0.0)
        rows.append([reason, f"{measured:.2f}%", f"{paper_pct:.2f}%"])
    print_table(["failure reason", "measured % of pods", "paper"],
                rows, title="Table 8: scheduling-failure reasons")
    # The dominant reason is resource exhaustion, as in production.
    leading = max(fractions, key=fractions.get)
    assert leading == REASON_NO_NODES
    assert fractions[REASON_NO_NODES] > 0.45
    # Deletion races are the second family.
    deletion_family = fractions.get(REASON_SKIP_DELETING, 0) + \
        fractions.get(REASON_BINDING_REJECTED, 0) + \
        fractions.get(REASON_POD_NOT_FOUND, 0)
    assert deletion_family > 0.02
    # The rare races appear but stay rare.
    for rare in (REASON_TIMEOUT, REASON_ASSUME_FAILED):
        assert fractions.get(rare, 0.0) < 0.05
