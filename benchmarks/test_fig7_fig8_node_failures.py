"""Figures 7 and 8 — pod deletions caused by node failures.

Paper (Section 5.6): "overall the percentage of pod deletions due to node
failures is within 5% over time" (Figure 7, per day over a month), and
the monthly percentage of learner pods deleted due to node failures was
below 1% for months 1-4 with a spike to 0.52% in month 5 (Figure 8) —
"assuming all failed learner pods belonged to different training jobs ...
the cancellation of jobs due to the deletion pods was below 1%".

Reproduction: a time-compressed run (identical fault and arrival rates,
shorter horizon) with per-node crash injection; deletions are classified
by cause from the cluster's deletion log.
"""

import os


from repro.analysis import print_table
from repro.workloads import FailureStudyConfig, run_failure_study

DAYS = int(os.environ.get("FFDL_NODEFAIL_DAYS", "10"))
DAYS_PER_MONTH = max(2, DAYS // 5)


from functools import lru_cache


@lru_cache(maxsize=1)
def _study():
    # Rates chosen to mirror production's churn-to-crash ratio: with 20
    # nodes at a 40-day MTBF, crashes are a few per ten days against
    # thousands of routine pod deletions from job completions.
    config = FailureStudyConfig(
        days=DAYS, jobs_per_day=320, seed=2,
        node_crash_mtbf_days=40.0,
        cancellation_probability=0.06,
        mean_iterations=4000)
    return run_failure_study(config)


def run_study():
    # Both figures analyse the same run; compute it once.
    return _study()


def test_fig7_pod_deletions_by_day(once):
    result = once(run_study)
    by_day = result.deletion_percent_by_day()
    rows = [[day, f"{pct:.2f}%"] for day, pct in sorted(by_day.items())]
    print_table(["day", "% of pod deletions due to node failures"],
                rows, title=f"Figure 7 ({DAYS} days, "
                            f"{result.node_crashes} node crashes)")
    assert by_day, "no deletions recorded"
    # Paper: "within 5% over time" (with occasional spikes tolerated).
    days_over = sum(1 for pct in by_day.values() if pct > 5.0)
    assert days_over <= max(1, len(by_day) // 4)
    assert max(by_day.values()) < 15.0


def test_fig8_learner_deletions_by_month(once):
    result = once(run_study)
    monthly = result.learner_deletion_percent_by_month(DAYS_PER_MONTH)
    rows = [[f"Month-{month + 1}", f"{pct:.4f}%"]
            for month, pct in sorted(monthly.items())]
    print_table(["month", "% of learner pods deleted (node failures)"],
                rows, title="Figure 8 (time-compressed months of "
                            f"{DAYS_PER_MONTH} days)")
    assert monthly
    # Paper: every month below ~1% (their worst month was 0.52%, and
    # job cancellation stayed below 1%).
    for month, pct in monthly.items():
        assert pct < 2.0, (month, pct)
