"""Microbenchmarks of the substrates themselves (wall-clock performance).

Unlike the table/figure benchmarks (which run once and print paper-style
output), these measure the real execution speed of the building blocks —
useful when extending the library, since experiment wall-clock time is
dominated by kernel event throughput.
"""


from repro.docker import Image
from repro.etcd import EtcdStore
from repro.kube import Cluster, NodeCapacity, SchedulerConfig
from repro.kube.objects import ContainerSpec, ObjectMeta, Pod, PodSpec
from repro.kube.resources import ResourceRequest
from repro.mongo import Collection
from repro.raft import CallbackStateMachine, RaftCluster
from repro.sim import Environment, RngRegistry


def test_kernel_event_throughput(benchmark):
    """Timeout-chain processing rate of the discrete-event kernel."""

    def run():
        env = Environment()

        def ticker():
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(ticker())
        env.run()
        return env.now

    assert benchmark(run) == 10_000.0


def test_etcd_put_get_throughput(benchmark):
    def run():
        store = EtcdStore(Environment())
        for i in range(2_000):
            store.put(f"key-{i % 100}", i)
        return store.revision

    assert benchmark(run) == 2_000


def test_etcd_watch_fanout(benchmark):
    def run():
        store = EtcdStore(Environment())
        watchers = [store.watch_prefix("jobs/") for _ in range(50)]
        for i in range(200):
            store.put(f"jobs/{i % 10}", i)
        return sum(w.pending() for w in watchers)

    assert benchmark(run) == 50 * 200


def test_mongo_query_throughput(benchmark):
    coll = Collection("bench")
    for i in range(500):
        coll.insert_one({"user": f"u{i % 20}", "gpus": i % 8,
                         "status": "RUNNING" if i % 3 else "COMPLETED"})

    def run():
        hits = coll.find({"user": "u7", "gpus": {"$gte": 4}})
        return len(hits)

    benchmark(run)


def test_raft_commit_latency(benchmark):
    """Simulated-time cost of one replicated commit on a 3-node group."""

    def run():
        env = Environment()
        cluster = RaftCluster(env, RngRegistry(0),
                              lambda n: CallbackStateMachine(
                                  lambda i, c: None),
                              size=3)
        env.run(until=1.0)
        start = env.now
        env.run_until_complete(cluster.propose("x"), limit=start + 10)
        return env.now - start

    latency = benchmark(run)
    assert latency < 0.1  # a commit takes a few network round-trips


def test_scheduler_placement_rate(benchmark):
    """Wall-clock cost of placing a 200-pod burst."""

    def run():
        env = Environment()
        cluster = Cluster(env, RngRegistry(0),
                          SchedulerConfig(policy="pack"))
        cluster.push_image(Image("learner", size_bytes=1e6))
        cluster.add_nodes(25, NodeCapacity(cpus=64, memory_gb=512,
                                           gpus=8, gpu_type="K80"))

        def sleeper(container):
            yield env.timeout(10_000)
            return 0

        for i in range(200):
            cluster.api.create_pod(Pod(
                meta=ObjectMeta(name=f"p{i}"),
                spec=PodSpec(containers=[ContainerSpec(
                    "m", "learner:latest", sleeper)],
                    resources=ResourceRequest(cpus=1, memory_gb=4,
                                              gpus=1, gpu_type="K80"))))
        env.run(until=120)
        return cluster.scheduler.pods_scheduled

    assert benchmark(run) == 200
