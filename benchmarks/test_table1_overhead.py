"""Table 1 — Performance overhead of FfDL vs bare-metal servers.

Paper: VGG-16/Caffe and InceptionV3/TensorFlow across 8 job configurations
(1-4 learners x 1-4 GPUs/learner); FfDL's overhead is minimal (<= ~5%).

Reproduction: each configuration is executed end-to-end on the simulated
platform; "bare metal" is the same training run without the platform's
overhead components (Docker, network virtualization/policies, storage
mount driver).  Throughput is measured as images/s over the PROCESSING
phase, exactly as the paper quantifies it.
"""


from repro.analysis import print_table
from repro.core import FfDLPlatform, JobManifest, PlatformConfig
from repro.core import statuses as st
from repro.perfmodel import distributed_images_per_sec, model_spec
from repro.sim import Environment, RngRegistry

CONFIGS = [(1, 1), (1, 2), (1, 4), (2, 1), (2, 2), (2, 4), (4, 2), (4, 4)]
MODELS = [("vgg16", "caffe"), ("inceptionv3", "tensorflow")]

PAPER_ROWS = {
    ("vgg16", "caffe"): [3.29, 0.34, 5.2, 3.76, 2.45, 4.76, 3.2, 5.35],
    ("inceptionv3", "tensorflow"): [0.32, 4.86, 5.15, 1.54, 3.65, 3.96,
                                    4.2, 4.97],
}


def measure_config(model_name, framework, learners, gpus, seed):
    env = Environment()
    platform = FfDLPlatform(env, RngRegistry(seed), PlatformConfig(
        oss_bandwidth_bps=1e11))  # isolate platform overhead from storage
    platform.add_gpu_nodes(max(2, learners), gpus_per_node=4,
                           gpu_type="K80")
    platform.admission.register("bench", gpu_quota=64)
    iterations = 1500
    manifest = JobManifest(
        name=f"t1-{model_name}-{learners}x{gpus}", user="bench",
        framework=framework, model=model_name,
        learners=learners, gpus_per_learner=gpus, gpu_type="K80",
        cpus_per_learner=4.0 * gpus, iterations=iterations,
        dataset_objects=8, dataset_object_bytes=64e6)
    job_id = env.run_until_complete(platform.submit_job(manifest))
    env.run_until_complete(platform.wait_for_terminal(job_id), limit=1e8)
    job = platform.job(job_id)
    assert job.status.current == st.COMPLETED
    # STORING can be coalesced away by the controller's batching; fall
    # back to completion time (the final upload is negligible here).
    end = job.status.time_of(st.STORING) or job.finished_at
    processing_s = end - job.status.time_of(st.PROCESSING)
    spec = model_spec(model_name, framework)
    batch = manifest.batch_size or spec.default_batch_size
    measured = learners * iterations * batch / processing_s
    bare_metal = distributed_images_per_sec(
        spec, "K80", learners, gpus, manifest.effective_cpus(), batch)
    return 100.0 * (1.0 - measured / bare_metal)


def run_table1():
    rows = []
    results = {}
    for model_name, framework in MODELS:
        decreases = []
        for seed, (learners, gpus) in enumerate(CONFIGS):
            decrease = measure_config(model_name, framework, learners,
                                      gpus, seed)
            decreases.append(decrease)
            rows.append([f"{model_name}/{framework}",
                         f"{learners}L x {gpus}GPU/L",
                         f"{decrease:.2f}%",
                         f"{PAPER_ROWS[(model_name, framework)][CONFIGS.index((learners, gpus))]:.2f}%"])
        results[(model_name, framework)] = decreases
    print_table(["model", "config", "measured decrease", "paper"],
                rows, title="Table 1: FfDL overhead vs bare metal")
    return results


def test_table1_overhead(once):
    results = once(run_table1)
    for key, decreases in results.items():
        # The paper's headline: overhead is minimal, bounded by ~5-6%.
        assert all(0.0 < d < 7.0 for d in decreases), (key, decreases)
        # And grows (noisily) with the distribution footprint: the largest
        # config should exceed the smallest single-GPU overhead.
        assert max(decreases[2:]) >= min(decreases[:2])
