"""Table 2 — FfDL (PCIe servers) vs NVIDIA DGX-1 bare metal.

Paper: TensorFlow HPM benchmarks on P100; the gap is modest (3.3-13.7%),
growing with GPU count and largest for VGG-16 — despite DGX-1's 2-3x cost.
"""

import random


from repro.analysis import print_table
from repro.perfmodel import (
    INCEPTIONV3_TF,
    P100,
    RESNET50_TF,
    VGG16_TF,
    overhead_vs_dgx1,
)

PAPER = {
    ("inceptionv3", 1): 3.30, ("resnet50", 1): 7.07, ("vgg16", 1): 7.84,
    ("inceptionv3", 2): 10.06, ("resnet50", 2): 10.53, ("vgg16", 2): 13.69,
}


def run_table2():
    rows = []
    results = {}
    for n_gpus in (1, 2):
        for model in (INCEPTIONV3_TF, RESNET50_TF, VGG16_TF):
            gap = 100.0 * overhead_vs_dgx1(model, P100, 16, n_gpus,
                                           rng=random.Random(7))
            results[(model.name, n_gpus)] = gap
            rows.append([model.name, "TF", n_gpus, P100,
                         f"{gap:.2f}%",
                         f"{PAPER[(model.name, n_gpus)]:.2f}%"])
    print_table(["benchmark", "framework", "# GPUs", "GPU type",
                 "measured difference", "paper"],
                rows, title="Table 2: FfDL vs DGX-1 bare metal")
    return results


def test_table2_dgx_gap(once):
    results = once(run_table2)
    for (model, n), gap in results.items():
        assert 0.0 < gap < 16.0, (model, n, gap)
        # Within 4 percentage points of the published value.
        assert abs(gap - PAPER[(model, n)]) < 4.0, (model, n, gap)
    # Two GPUs always cost more relative to DGX-1 than one.
    for model in ("inceptionv3", "resnet50", "vgg16"):
        assert results[(model, 2)] > results[(model, 1)]
    # VGG-16 (bandwidth-bound) suffers the most on PCIe.
    assert results[("vgg16", 1)] > results[("inceptionv3", 1)]
