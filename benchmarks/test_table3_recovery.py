"""Table 3 — Time to recover from crash failures, by component.

Paper: API 3-5s, LCM 4-6s, Guardian 1-2s, Helper 3-4s, Learner 10-20s
("learners take longest to restart because binding to the Object Storage
Service and persistent NFS volumes takes longer, and FfDL microservices
take the shortest time because they are stateless").

Reproduction: each component is crashed kubectl-style (pod deletion for
job components, replica kill for microservices) and the time until the
replacement is serving again is measured on the simulated cluster.
"""


from repro.analysis import print_table
from repro.core import FfDLPlatform, JobManifest
from repro.core import statuses as st
from repro.sim import Environment, RngRegistry

PAPER_RANGES = {
    "API": (3, 5), "LCM": (4, 6), "Guardian": (1, 2),
    "Helper": (3, 4), "Learner": (10, 20),
}


def start_job(seed):
    env = Environment()
    platform = FfDLPlatform(env, RngRegistry(seed))
    platform.add_gpu_nodes(3, gpus_per_node=4, gpu_type="K80")
    platform.admission.register("bench", gpu_quota=32)
    manifest = JobManifest(
        name="t3-job", user="bench", framework="tensorflow",
        model="resnet50", learners=2, gpus_per_learner=1, gpu_type="K80",
        iterations=60_000, checkpoint_interval_iterations=2_000)
    job_id = env.run_until_complete(platform.submit_job(manifest))
    job = platform.job(job_id)
    while job.status.current != st.PROCESSING and env.now < 2000:
        env.run(until=env.now + 5)
    assert job.status.current == st.PROCESSING
    return env, platform, job_id


def measure_pod_restart(env, platform, job_id, pod_getter):
    """Delete the pod; time until its replacement is Running.

    For stateful identities the replacement keeps the same name; for
    replica-set pods a fresh name appears — either way we wait for a pod
    from the same getter with a different uid.
    """
    pod = pod_getter()
    assert pod is not None
    old_uid = pod.meta.uid
    old_name = pod.name
    start = env.now
    platform.cluster.delete_pod(pod.name)
    deadline = env.now + 300
    while env.now < deadline:
        env.run(until=env.now + 0.25)
        replacement = pod_getter()
        if replacement is None:
            continue
        if replacement.meta.uid == old_uid:
            continue
        # Stateful pods must come back under the same name; others may
        # not reuse it.
        same_family = (replacement.name == old_name or
                       not platform.cluster.api.exists("pods", old_name))
        if same_family and replacement.phase == "Running":
            return env.now - start
    raise AssertionError("replacement never became Running")


def measure_microservice(env, service, samples=5):
    durations = []
    for _ in range(samples):
        service.crash_replica()
        env.run(until=env.now + 30)
    for down, up in service.recovery_log[-samples:]:
        durations.append(up - down)
    return durations


def run_table3():
    measured = {}

    env, platform, job_id = start_job(seed=0)
    learner_name = sorted(p.name
                          for p in platform.learner_pods(job_id))[0]
    measured["Learner"] = [measure_pod_restart(
        env, platform, job_id,
        lambda: platform.cluster.api.try_get_pod(learner_name))]
    measured["Helper"] = [measure_pod_restart(
        env, platform, job_id, lambda: platform.helper_pod(job_id))]
    measured["Guardian"] = [measure_pod_restart(
        env, platform, job_id, lambda: platform.guardian_pod(job_id))]
    measured["API"] = measure_microservice(env, platform.api_service)
    measured["LCM"] = measure_microservice(env, platform.lcm)

    rows = []
    for component in ("API", "LCM", "Guardian", "Helper", "Learner"):
        lo, hi = min(measured[component]), max(measured[component])
        plo, phi = PAPER_RANGES[component]
        rows.append([component, f"{lo:.1f}-{hi:.1f}s", f"{plo}-{phi}s"])
    print_table(["component", "measured recovery", "paper"],
                rows, title="Table 3: crash-recovery time by component")
    return measured


def test_table3_recovery_times(once):
    measured = once(run_table3)
    for component, (lo, hi) in PAPER_RANGES.items():
        for value in measured[component]:
            # Within the paper's range, with one second of slack.
            assert lo - 1.2 <= value <= hi + 2.0, (component, value)
    # The qualitative ordering the paper calls out.
    assert max(measured["Guardian"]) < min(measured["Learner"])
    assert max(measured["Helper"]) < min(measured["Learner"])
