"""Table 4 — Throughput scaling of VGG-16/Caffe with CPU threads.

Paper: batch 75; ~66 img/s on 1xP100 and ~107 img/s on 1xV100, flat from
2 CPU threads ("Caffe models performance saturates at 4/8 CPU threads").
"""

import pytest

from repro.analysis import print_table
from repro.perfmodel import P100, V100, VGG16_CAFFE, images_per_sec

PAPER = {
    (P100, 2): 65.96, (P100, 4): 66.14, (P100, 8): 65.67,
    (V100, 2): 106.46, (V100, 4): 106.5, (V100, 8): 107.24,
    (V100, 16): 107.45, (V100, 28): 107.47,
}


def run_table4():
    rows = []
    results = {}
    for threads in (2, 4, 8, 16, 28):
        p100 = images_per_sec(VGG16_CAFFE, P100, threads, batch_size=75)
        v100 = images_per_sec(VGG16_CAFFE, V100, threads, batch_size=75)
        results[threads] = (p100, v100)
        rows.append([threads, f"{p100:.2f}", f"{v100:.2f}",
                     PAPER.get((P100, threads), "-"),
                     PAPER.get((V100, threads), "-")])
    print_table(["CPU threads", "thpt 1xP100", "thpt 1xV100",
                 "paper P100", "paper V100"],
                rows, title="Table 4: VGG-16/Caffe throughput scaling "
                            "(batch 75)")
    return results


def test_table4_caffe_scaling(once):
    results = once(run_table4)
    # Published absolute throughputs within 3%.
    for (gpu, threads), published in PAPER.items():
        got = results[threads][0 if gpu == P100 else 1]
        assert got == pytest.approx(published, rel=0.03), (gpu, threads)
    # Saturation: no meaningful gain past 4 threads.
    assert results[28][0] - results[4][0] < 0.01 * results[4][0]
    assert results[28][1] - results[4][1] < 0.01 * results[4][1]
