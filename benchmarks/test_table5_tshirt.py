"""Table 5 — T-shirt size recommendations for FfDL jobs.

Paper: per-GPU-type learner sizes chosen to saturate GPUs (framework
agnostic, deliberately over-provisioned on CPU/RAM).  The benchmark both
prints the published table and re-derives the CPU counts from the
throughput model's saturation sweep (the procedure Section 5.4 describes),
then verifies the derivation lands near the published sizes and that the
published sizes do saturate every calibrated model.
"""


from repro.analysis import print_table
from repro.core import TSHIRT_SIZES, derive_cpus
from repro.perfmodel import MODEL_SPECS, cpu_scaling

PAPER_ORDER = [("K80", 1), ("K80", 2), ("K80", 4), ("P100", 1),
               ("P100", 2), ("V100", 1), ("V100", 2)]


def run_table5():
    rows = []
    derived = {}
    for gpu_type, gpus in PAPER_ORDER:
        size = TSHIRT_SIZES[(gpu_type, gpus)]
        derived_cpus = derive_cpus(gpu_type, gpus)
        derived[(gpu_type, gpus)] = derived_cpus
        rows.append([f"{gpus}-{gpu_type}", size.cpus, size.memory_gb,
                     derived_cpus])
    print_table(["GPU config", "CPUs (paper)", "memory GB (paper)",
                 "CPUs (derived from model)"],
                rows, title="Table 5: learner t-shirt sizes")
    return derived


def test_table5_tshirt_sizes(once):
    derived = once(run_table5)
    for key, size in TSHIRT_SIZES.items():
        # The derivation reproduces the published sizes within 2x (the
        # published table is conservatively rounded and framework-blended).
        assert size.cpus / 2 <= derived[key] <= size.cpus * 2, key
    # The published Caffe-and-TF-blend sizes saturate the Caffe models
    # fully and TF models to >=90% of peak on a per-GPU basis.
    for (gpu_type, gpus), size in TSHIRT_SIZES.items():
        per_gpu_threads = size.cpus / gpus
        for spec in MODEL_SPECS.values():
            if spec.framework == "caffe":
                assert cpu_scaling(per_gpu_threads, spec) > 0.98
    # V100 sizes reflect the faster GPU needing more feeding.
    assert TSHIRT_SIZES[("V100", 1)].cpus > TSHIRT_SIZES[("P100", 1)].cpus \
        > TSHIRT_SIZES[("K80", 1)].cpus
