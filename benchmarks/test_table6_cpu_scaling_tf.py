"""Table 6 — TensorFlow throughput + GPU utilization vs CPU threads.

Paper: 1xV100, batch 128.  InceptionV3 keeps scaling to 28 threads
(217.8 -> 223.6 img/s); ResNet-50 and VGG-16 are already saturated at 16.
GPU utilizations shown in parentheses (86.8-98.7%).
"""

import pytest

from repro.analysis import print_table
from repro.perfmodel import (
    INCEPTIONV3_TF,
    RESNET50_TF,
    V100,
    VGG16_TF,
    gpu_utilization,
    images_per_sec,
)

PAPER = {
    ("inceptionv3", 16): (217.8, 86.8), ("inceptionv3", 28): (223.6, 90.5),
    ("resnet50", 16): (345.3, 93.3), ("resnet50", 28): (345.8, 92.7),
    ("vgg16", 16): (216.2, 98.7), ("vgg16", 28): (216.2, 97.3),
}


def run_table6():
    rows = []
    results = {}
    for threads in (16, 28):
        row = [threads]
        for model in (INCEPTIONV3_TF, RESNET50_TF, VGG16_TF):
            thpt = images_per_sec(model, V100, threads, batch_size=128)
            util = 100.0 * gpu_utilization(model, threads)
            results[(model.name, threads)] = (thpt, util)
            paper_thpt, paper_util = PAPER[(model.name, threads)]
            row.append(f"{thpt:.1f} ({util:.1f}%) "
                       f"[paper {paper_thpt} ({paper_util}%)]")
        rows.append(row)
    print_table(["CPU threads", "InceptionV3", "ResNet-50", "VGG-16"],
                rows, title="Table 6: TensorFlow scaling on 1xV100 "
                            "(batch 128)")
    return results


def test_table6_tf_scaling(once):
    results = once(run_table6)
    for key, (paper_thpt, paper_util) in PAPER.items():
        thpt, util = results[key]
        assert thpt == pytest.approx(paper_thpt, rel=0.03), key
        assert util == pytest.approx(paper_util, abs=3.0), key
    # Inception benefits from 28 threads; the others are flat.
    assert results[("inceptionv3", 28)][0] > \
        results[("inceptionv3", 16)][0] * 1.01
    assert results[("vgg16", 28)][0] == \
        pytest.approx(results[("vgg16", 16)][0], rel=0.005)
