"""Table 7 + Figure 5 — the pre-production scale test.

Paper: a 680-GPU cluster under light load (70 concurrent ResNet-50/TF
ImageNet jobs) and heavy load (700 jobs), staggered in four batches.
Figure 5 compares mean end-to-end runtime per GPU-type batch: heavy load
degrades K80 jobs 6-8%, P100 ~24% and V100 ~51% — "by the time V100 jobs
are running, the load is at its peak, and hence the shared resources
(network and cloud object storage bandwidth) start impacting performance".

Reproduction runs at a configurable linear scale (default 0.1: 68 GPUs,
70 heavy jobs) which preserves every contention ratio.
"""

import os


from repro.analysis import print_table
from repro.workloads import (
    BATCHES,
    ScaleTestConfig,
    degradation_percent,
    run_scale_test,
)

SCALE = float(os.environ.get("FFDL_SCALE", "0.1"))
PAPER_RUNTIMES = {
    "V100-batch4": (2410, 3552), "P100-batch3": (3207, 3981),
    "K80-batch2": (4853, 5084), "K80-batch1": (4778, 5085),
}


def run_scale():
    config = ScaleTestConfig(scale=SCALE)
    light = run_scale_test("light", config, seed=0)
    heavy = run_scale_test("heavy", config, seed=0)

    mix_rows = [[b.name, config.scaled(b.jobs_light),
                 config.scaled(b.jobs_heavy),
                 f"t+{b.start_s / 60:.0f}min"] for b in BATCHES]
    print_table(["GPU-type-batch#", "jobs-LL", "jobs-HL", "start time"],
                mix_rows,
                title=f"Table 7: job mix at scale={SCALE} "
                      f"({int(680 * SCALE)} GPUs)")

    degradation = degradation_percent(light, heavy)
    runtime_rows = []
    for batch in BATCHES:
        name = batch.name
        paper_ll, paper_hl = PAPER_RUNTIMES[name]
        runtime_rows.append([
            name,
            f"{light.batches[name].mean_runtime_s:.0f}s",
            f"{heavy.batches[name].mean_runtime_s:.0f}s",
            f"{degradation[name]:+.1f}%",
            f"{paper_ll}s / {paper_hl}s "
            f"({100 * (paper_hl / paper_ll - 1):+.0f}%)",
        ])
    print_table(["batch", "light-load runtime", "heavy-load runtime",
                 "degradation", "paper LL/HL"],
                runtime_rows, title="Figure 5: E2E runtime by GPU type")
    print(f"\nheavy-load aggregate: "
          f"{heavy.aggregate_images_per_s:.0f} images/s, "
          f"{heavy.aggregate_iterations_per_s:.0f} iterations/s "
          f"(paper at full scale: ~54000 images/s, ~837 iterations/s); "
          f"failed jobs: {heavy.failed_jobs}")
    return light, heavy, degradation


def test_table7_fig5_scale_test(once):
    light, heavy, degradation = once(run_scale)
    # Every job completes under both loads (the paper's 12 stuck jobs were
    # later traced to cordoned faulty nodes, not FfDL).
    assert light.failed_jobs == 0
    assert heavy.failed_jobs == 0
    # Light-load runtimes order by GPU generation.
    assert light.batches["V100-batch4"].mean_runtime_s < \
        light.batches["P100-batch3"].mean_runtime_s < \
        light.batches["K80-batch1"].mean_runtime_s
    # Figure 5 headline: degradation grows with GPU generation.
    assert degradation["K80-batch1"] < degradation["P100-batch3"] < \
        degradation["V100-batch4"]
    # Rough magnitudes: K80 mildly affected, V100 hit hard.
    assert degradation["K80-batch1"] < 12.0
    assert 10.0 < degradation["P100-batch3"] < 45.0
    assert 25.0 < degradation["V100-batch4"] < 90.0
    # Aggregate throughput scales with the configured fraction of 54k.
    assert heavy.aggregate_images_per_s > 0.4 * 54_000 * SCALE
