"""Fault-tolerance demo: checkpoints, crashes, node failures, recovery.

Reproduces the dependability story of Section 3.8 on a toy cluster:

1. a distributed job checkpoints periodically to object storage,
2. a learner container is killed mid-training -> Kubernetes restarts it
   and FfDL resumes it from the latest checkpoint,
3. an entire node dies -> the learner is rescheduled on another machine,
   again resuming from its checkpoint,
4. the Guardian is killed -> the restarted Guardian keeps monitoring the
   healthy job instead of rolling it back.

Run with:  python examples/fault_tolerance_demo.py
"""

from repro import Environment, FfDLPlatform, JobManifest, RngRegistry
from repro.core import PlatformConfig


def wait_for_progress(env, platform, job_id, iterations):
    job = platform.job(job_id)
    while max(s.iterations_done for s in job.learner_states) < iterations:
        env.run(until=env.now + 10)
    return job


def main():
    env = Environment()
    config = PlatformConfig(node_detection_latency_s=10.0,
                            pod_eviction_timeout_s=10.0)
    platform = FfDLPlatform(env, RngRegistry(3), config)
    platform.add_gpu_nodes(3, gpus_per_node=4, gpu_type="P100")
    platform.admission.register("bob", gpu_quota=8)

    manifest = JobManifest(
        name="fault-demo", user="bob", framework="tensorflow",
        model="inceptionv3", learners=2, gpus_per_learner=1,
        gpu_type="P100", iterations=6_000,
        checkpoint_interval_iterations=1_000)
    job_id = env.run_until_complete(platform.submit_job(manifest))
    print(f"submitted {job_id} with checkpoints every "
          f"{manifest.checkpoint_interval_iterations} iterations")

    # --- fault 1: kill a learner container once it has checkpointed ------
    job = wait_for_progress(env, platform, job_id, 1_200)
    victim = platform.learner_pods(job_id)[0]
    print(f"\n[t={env.now:7.0f}s] killing learner container on "
          f"{victim.name} (progress: "
          f"{job.learner_states[0].iterations_done} iters)")
    platform.kill_pod_containers(victim.name)
    wait_for_progress(env, platform, job_id, 2_200)
    state = job.learner_states[0]
    print(f"[t={env.now:7.0f}s] learner recovered: loaded "
          f"{state.checkpoints_loaded} checkpoint(s), back to "
          f"{state.iterations_done} iters")

    # --- fault 2: crash the whole node ------------------------------------
    pod = platform.learner_pods(job_id)[0]
    doomed_node = pod.node_name
    print(f"\n[t={env.now:7.0f}s] failing node {doomed_node}")
    platform.cluster.fail_node(doomed_node)
    wait_for_progress(env, platform, job_id, 3_500)
    moved = platform.learner_pods(job_id)
    print(f"[t={env.now:7.0f}s] learners now on nodes: "
          f"{sorted({p.node_name for p in moved})} (evicted from "
          f"{doomed_node})")

    # --- fault 3: kill the Guardian ---------------------------------------
    guardian = platform.guardian_pod(job_id)
    print(f"\n[t={env.now:7.0f}s] killing Guardian {guardian.name}")
    platform.kill_pod_containers(guardian.name)

    final = env.run_until_complete(platform.wait_for_terminal(job_id),
                                   limit=10**7)
    job = platform.job(job_id)
    print(f"\n[t={env.now:7.0f}s] job {final} despite all three faults")
    print(f"guardian attempts: {job.guardian_attempts}, "
          f"learner restarts absorbed: "
          f"{[s.restarts for s in job.learner_states]}")
    print("status timeline:")
    for status, time in job.status.timeline():
        print(f"  {time:9.1f}s  {status}")


if __name__ == "__main__":
    main()
