"""Multi-tenant hyperparameter sweep with HALT/RESUME and quotas.

The workflow the paper's checkpointing section enables: a data scientist
launches several trials, halts the weakest mid-flight to free GPUs for a
promising configuration, and later resumes it from its checkpoint.
Meanwhile a second tenant is bounded by admission control.

Run with:  python examples/hyperparameter_sweep.py
"""

from repro import Environment, FfDLPlatform, JobManifest, RngRegistry
from repro.core import statuses as st
from repro.errors import QuotaExceededError


def main():
    env = Environment()
    platform = FfDLPlatform(env, RngRegistry(11))
    platform.add_gpu_nodes(2, gpus_per_node=4, gpu_type="V100")
    platform.admission.register("researcher", gpu_quota=6)
    platform.admission.register("intern", gpu_quota=1)
    platform.admission.allow_opportunistic = False

    # --- launch three trials with different (simulated) learning rates ----
    trials = {}
    for i, learning_rate in enumerate([0.1, 0.01, 0.001]):
        manifest = JobManifest(
            name=f"trial-lr{learning_rate}", user="researcher",
            framework="pytorch", model="inceptionv3",
            command=f"python train.py --lr {learning_rate}",
            learners=1, gpus_per_learner=1, gpu_type="V100",
            iterations=8_000, checkpoint_interval_iterations=1_000)
        job_id = env.run_until_complete(platform.submit_job(manifest))
        trials[job_id] = learning_rate
        print(f"launched {job_id} (lr={learning_rate})")

    # --- the intern is quota-bounded ---------------------------------------
    big_ask = JobManifest(
        name="intern-overreach", user="intern", framework="tensorflow",
        model="vgg16", learners=2, gpus_per_learner=2, gpu_type="V100",
        cpus_per_learner=8, iterations=1_000)
    try:
        env.run_until_complete(platform.submit_job(big_ask))
    except QuotaExceededError as err:
        print(f"\nintern rejected by admission control: {err}")

    # --- halt the weakest trial once training is underway ------------------
    env.run(until=env.now + 600)
    weakest = next(job_id for job_id, lr in trials.items() if lr == 0.1)
    print(f"\n[t={env.now:6.0f}s] halting {weakest} "
          f"(diverging loss at lr=0.1)")
    env.run_until_complete(platform.halt_job(weakest))
    env.run_until_complete(platform.wait_for_terminal(weakest),
                           limit=10**7)
    job = platform.job(weakest)
    print(f"[t={env.now:6.0f}s] {weakest} HALTED at "
          f"{job.learner_states[0].iterations_done} iterations "
          f"({job.learner_states[0].checkpoints_written} checkpoints)")

    # --- the other trials complete ----------------------------------------
    for job_id, lr in trials.items():
        if job_id == weakest:
            continue
        status = env.run_until_complete(
            platform.wait_for_terminal(job_id), limit=10**7)
        print(f"[t={env.now:6.0f}s] {job_id} (lr={lr}): {status}")

    # --- second thoughts: resume the halted trial --------------------------
    print(f"\n[t={env.now:6.0f}s] resuming {weakest} from its checkpoint")
    env.run_until_complete(platform.resume_job(weakest))
    status = env.run_until_complete(platform.wait_for_terminal(weakest),
                                    limit=10**7)
    job = platform.job(weakest)
    print(f"[t={env.now:6.0f}s] {weakest}: {status}, "
          f"checkpoints loaded on resume: "
          f"{job.learner_states[0].checkpoints_loaded}")
    print("\nfull timeline of the halted/resumed trial:")
    for status, time in job.status.timeline():
        print(f"  {time:9.1f}s  {status}")


if __name__ == "__main__":
    main()
