"""Operating a multi-tenant FfDL cluster: monitoring, maintenance, priority.

An ops-oriented tour of the platform features that surround training:

1. continuous GPU-utilization monitoring (Training Metrics Service),
2. draining a node for maintenance while jobs keep running,
3. the priority-management extension (Section 3.6 "ongoing work"):
   exponentially decaying priorities for heavy internal users and
   demand-driven pricing for external ones.

Run with:  python examples/multi_tenant_operations.py
"""

from repro import Environment, FfDLPlatform, JobManifest, RngRegistry
from repro.core.priority import PriorityManager


def submit(env, platform, name, user, iterations=1500):
    manifest = JobManifest(
        name=name, user=user, framework="tensorflow", model="resnet50",
        learners=1, gpus_per_learner=1, gpu_type="K80",
        iterations=iterations, data_bucket=f"data-{user}")
    return env.run_until_complete(platform.submit_job(manifest))


def main():
    env = Environment()
    platform = FfDLPlatform(env, RngRegistry(21))
    platform.add_gpu_nodes(3, gpus_per_node=4, gpu_type="K80")
    for user in ("team-vision", "team-speech", "acme-corp"):
        platform.admission.register(user, gpu_quota=8)
    platform.start_utilization_sampler(interval_s=120.0)

    # --- a mixed workload arrives ------------------------------------------
    jobs = []
    for i in range(3):
        jobs.append(submit(env, platform, f"vision-{i}", "team-vision"))
    jobs.append(submit(env, platform, "speech-0", "team-speech"))
    env.run(until=300)
    print(f"[t={env.now:6.0f}s] cluster at "
          f"{platform.cluster.gpu_utilization():.0%} GPU utilization, "
          f"{len(jobs)} jobs in flight")

    # --- drain a node for maintenance --------------------------------------
    # Pick the busiest node so the drain visibly relocates workload.
    node = max(platform.cluster.allocations,
               key=lambda n: platform.cluster.allocations[n]
               .allocated_gpus)
    evicted = platform.cluster.drain_node(node)
    print(f"[t={env.now:6.0f}s] drained {node} for maintenance "
          f"({len(evicted)} pods evicted; stateful learners reschedule)")
    env.run(until=env.now + 120)
    platform.cluster.uncordon(node)
    print(f"[t={env.now:6.0f}s] maintenance done, {node} back in service")

    # --- priority management -------------------------------------------------
    pm = PriorityManager()
    pm.register_internal("team-vision")
    pm.register_internal("team-speech")
    pm.register_external("acme-corp", bid_multiplier=2.5)
    # Charge historical usage: team-vision has been hammering the cluster.
    pm.charge("team-vision", gpus=12, duration_s=36 * 3600, now_s=env.now)
    queued = [("vision-next", "team-vision", env.now),
              ("speech-next", "team-speech", env.now),
              ("acme-job", "acme-corp", env.now)]
    utilization = platform.cluster.gpu_utilization()
    order = pm.dispatch_order(queued, now_s=env.now,
                              cluster_utilization=utilization)
    print(f"\npriority dispatch order at {utilization:.0%} utilization:")
    for rank, job in enumerate(order, start=1):
        user = next(u for j, u, _t in queued if j == job)
        priority = pm.priority(user, env.now, utilization)
        print(f"  {rank}. {job:<12} ({user}, priority {priority:.1f})")
    print("\nheavy internal user 'team-vision' sinks below the light user "
          "and the\nhigh-bidding external customer — the Section 3.6 "
          "policies in action.")

    # --- everything still completes -----------------------------------------
    for job_id in jobs:
        env.run_until_complete(platform.wait_for_terminal(job_id),
                               limit=10**7)
    env.run(until=env.now + 60)
    print(f"\n[t={env.now:6.0f}s] all {len(jobs)} jobs COMPLETED; "
          f"utilization samples collected: "
          f"{len(platform.metrics.series('cluster_gpu_utilization'))}")


if __name__ == "__main__":
    main()
