"""Replay a production-style trace to compare placement policies.

A compact version of the paper's Section 5.2 study (Figure 3): generate a
multi-week job-arrival trace with the published shape, replay it through
Spread and Pack placement on a 400-GPU cluster, and report the queueing
impact per day.

Run with:  python examples/production_trace_study.py [days]
"""

import sys

from repro.analysis import compare_policies, print_table
from repro.sim import RngRegistry
from repro.workloads import ProductionTrace, TraceConfig, arrivals_by_day


def main():
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    trace = ProductionTrace(RngRegistry(42), TraceConfig(days=days))
    jobs = trace.generate()
    arrivals = arrivals_by_day(jobs, days)
    gpu_demand = sum(j.total_gpus * j.duration_s for j in jobs)
    print(f"trace: {len(jobs)} jobs over {days} days "
          f"(~{gpu_demand / (400 * 86400 * days):.0%} offered GPU load "
          f"on 400 GPUs)")

    results = compare_policies(jobs, days)
    spread = results["spread"].percent_delayed_by_day()
    pack = results["pack"].percent_delayed_by_day()
    rows = [[day, arrivals[day], f"{spread[day]:.1f}%",
             f"{pack[day]:.1f}%"] for day in range(days)]
    print_table(["day", "arrivals", "Spread: % queued >15min",
                 "Pack: % queued >15min"], rows)
    totals = (results["spread"].total_delayed,
              results["pack"].total_delayed)
    print(f"\ntotal jobs queued >15min: Spread {totals[0]}, "
          f"Pack {totals[1]} ({totals[0] / max(1, totals[1]):.1f}x fewer "
          f"with Pack — the paper reports >3x)")


if __name__ == "__main__":
    main()
