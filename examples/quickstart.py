"""Quickstart: submit one training job to FfDL and watch it complete.

Run with:  python examples/quickstart.py
"""

from repro import Environment, FfDLPlatform, JobManifest, RngRegistry

def main():
    env = Environment()
    platform = FfDLPlatform(env, RngRegistry(7))

    # A small GPU cluster: 4 machines x 4 K80s.
    platform.add_gpu_nodes(4, gpus_per_node=4, gpu_type="K80")
    platform.admission.register("alice", gpu_quota=16)

    manifest = JobManifest(
        name="resnet50-demo",
        user="alice",
        framework="tensorflow",
        model="resnet50",
        command="python train.py --epochs 10",
        learners=2,
        gpus_per_learner=2,
        gpu_type="K80",
        iterations=2_000,
        checkpoint_interval_iterations=500,
    )

    job_id = env.run_until_complete(platform.submit_job(manifest))
    print(f"submitted {job_id} "
          f"({manifest.learners} learners x {manifest.gpus_per_learner} "
          f"GPUs, t-shirt size: {manifest.effective_cpus():.0f} CPUs / "
          f"{manifest.effective_memory_gb():.0f} GB per learner)")

    final = env.run_until_complete(platform.wait_for_terminal(job_id),
                                   limit=10**7)
    env.run(until=env.now + 30)  # let garbage collection settle

    job = platform.job(job_id)
    print(f"\njob finished: {final} after {job.runtime_s:.0f}s simulated")
    print("\nstatus timeline (the DL-specific statuses the paper touts):")
    for status, time in job.status.timeline():
        print(f"  {time:9.1f}s  {status}")

    print("\nper-learner progress:")
    for state in job.learner_states:
        print(f"  learner-{state.index}: {state.iterations_done} iters, "
              f"{state.checkpoints_written} checkpoints written")

    print(f"\ntraining logs collected: "
          f"{len(platform.stream_logs(job_id))} lines "
          f"(first: {platform.stream_logs(job_id)[0].line!r})")
    print(f"cluster GPU utilization now: "
          f"{platform.cluster.gpu_utilization():.0%} (job cleaned up)")


if __name__ == "__main__":
    main()
