"""Scheduler comparison: Spread vs Pack fragmentation, and gang scheduling.

Recreates the two motivating examples of Sections 3.4 and 3.5 exactly:

* Spread strands a 4-GPU job on a cluster that Pack keeps feasible.
* Without gang scheduling, concurrent synchronous jobs deadlock holding
  GPUs; the BSA gang scheduler keeps every job all-or-nothing.

Run with:  python examples/scheduler_comparison.py
"""

from repro.analysis import print_table
from repro.sim import Environment, RngRegistry
from repro.workloads.synthetic import run_gang_experiment


def fragmentation_demo():
    print("=" * 66)
    print("Section 3.4 example: 4 x (1-GPU job) then one 4-GPU job")
    print("=" * 66)
    rows = []
    for policy in ("spread", "pack"):
        from repro.kube import Cluster, NodeCapacity, SchedulerConfig
        from repro.kube.objects import ContainerSpec, ObjectMeta, Pod, \
            PodSpec
        from repro.kube.resources import ResourceRequest
        from repro.docker import Image

        env = Environment()
        cluster = Cluster(env, RngRegistry(0),
                          SchedulerConfig(policy=policy))
        cluster.push_image(Image("learner", size_bytes=1e6))
        cluster.add_nodes(4, NodeCapacity(cpus=32, memory_gb=256, gpus=4,
                                          gpu_type="K80"))

        def sleeper(container):
            yield env.timeout(10_000)
            return 0

        def gpu_pod(name, gpus):
            return Pod(meta=ObjectMeta(name=name),
                       spec=PodSpec(
                           containers=[ContainerSpec(
                               "main", "learner:latest", sleeper)],
                           resources=ResourceRequest(
                               cpus=4, memory_gb=16, gpus=gpus,
                               gpu_type="K80")))

        small = [gpu_pod(f"small-{i}", 1) for i in range(4)]
        for pod in small:
            cluster.api.create_pod(pod)
        env.run(until=20)
        big = gpu_pod("big-4gpu", 4)
        cluster.api.create_pod(big)
        env.run(until=40)
        free = sorted(a.free_gpus for a in cluster.allocations.values())
        rows.append([policy, str(free), big.phase,
                     "yes" if big.phase == "Running" else
                     "NO - fragmented"])
    print_table(["policy", "free GPUs per node", "4-GPU job phase",
                 "schedulable?"], rows)


def gang_demo():
    print()
    print("=" * 66)
    print("Section 3.5: 50 sync jobs on 60 GPUs, with/without gang "
          "scheduling")
    print("=" * 66)
    rows = []
    for learners, gpus in ((2, 1), (2, 2), (4, 1)):
        for gang in (False, True):
            result = run_gang_experiment(learners, gpus, gang=gang,
                                         seed=17)
            rows.append([f"{learners}L x {gpus}GPU/L",
                         "gang (BSA)" if gang else "default",
                         result.deadlocked_learners,
                         f"{result.idle_gpu_percent:.0f}%",
                         result.fully_scheduled_jobs,
                         result.fully_queued_jobs])
    print_table(["workload", "scheduler", "deadlocked learners",
                 "idle GPUs", "jobs running", "jobs queued"], rows)
    print("\nWith gang scheduling, deadlocked learners and idle GPUs are "
          "zero for every workload,\nexactly as the paper reports.")


def main():
    fragmentation_demo()
    gang_demo()


if __name__ == "__main__":
    main()
