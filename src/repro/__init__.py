"""Reproduction of "FfDL: A Flexible Multi-tenant Deep Learning Platform"
(Jayaram et al., MIDDLEWARE 2019).

The package layers, bottom to top:

* :mod:`repro.sim` — deterministic discrete-event kernel.
* :mod:`repro.raft`, :mod:`repro.etcd`, :mod:`repro.mongo`,
  :mod:`repro.objectstore`, :mod:`repro.nfs`, :mod:`repro.docker`,
  :mod:`repro.kube` — the substrates FfDL depends on, built from scratch.
* :mod:`repro.perfmodel` — training throughput calibrated to the paper.
* :mod:`repro.core` — FfDL itself (API, LCM, Guardian, helpers, learners).
* :mod:`repro.workloads`, :mod:`repro.analysis` — experiment drivers.
"""

__version__ = "1.0.0"

from repro.core import FfDLPlatform, JobManifest, PlatformConfig
from repro.sim import Environment, RngRegistry

__all__ = ["Environment", "FfDLPlatform", "JobManifest", "PlatformConfig",
           "RngRegistry", "__version__"]
