"""Analysis helpers: CDFs, table rendering, fast placement replay."""

from repro.analysis.cdf import (
    cdf_at,
    empirical_cdf,
    probability_of_zero,
    quantile,
)
from repro.analysis.report import build_report, quick_report
from repro.analysis.schedreplay import (
    NodeSpec,
    PRODUCTION_NODES,
    PlacementReplayer,
    QUEUE_THRESHOLD_S,
    ReplayResult,
    compare_policies,
)
from repro.analysis.tables import format_table, print_table

__all__ = [
    "NodeSpec",
    "PRODUCTION_NODES",
    "PlacementReplayer",
    "QUEUE_THRESHOLD_S",
    "ReplayResult",
    "build_report",
    "cdf_at",
    "compare_policies",
    "empirical_cdf",
    "format_table",
    "quick_report",
    "print_table",
    "probability_of_zero",
    "quantile",
]
