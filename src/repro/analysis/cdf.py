"""Empirical-CDF helpers for the Figure 4 style plots."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def empirical_cdf(samples: Iterable[float]) -> List[Tuple[float, float]]:
    """Return (value, P[X <= value]) points of the empirical CDF."""
    data = sorted(samples)
    n = len(data)
    if n == 0:
        return []
    points: List[Tuple[float, float]] = []
    for i, value in enumerate(data, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, i / n)
        else:
            points.append((value, i / n))
    return points


def cdf_at(cdf: Sequence[Tuple[float, float]], value: float) -> float:
    """P[X <= value] from an empirical CDF."""
    probability = 0.0
    for x, p in cdf:
        if x <= value:
            probability = p
        else:
            break
    return probability


def quantile(samples: Sequence[float], q: float) -> float:
    """The q-quantile (0 <= q <= 1) by nearest-rank."""
    if not samples:
        raise ValueError("quantile of empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    data = sorted(samples)
    rank = min(len(data) - 1, max(0, int(q * len(data) + 0.5) - 1))
    return data[rank]


def probability_of_zero(samples: Sequence[float]) -> float:
    """P[X == 0]; e.g. the chance a run had no deadlocked learners."""
    if not samples:
        return 0.0
    return sum(1 for s in samples if s == 0) / len(samples)
