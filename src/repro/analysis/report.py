"""Programmatic experiment reports.

Builds Markdown reports of reproduced experiments without going through
pytest — useful for notebooks, CI summaries, or regenerating
EXPERIMENTS.md-style tables after changing the calibration:

    from repro.analysis.report import quick_report
    print(quick_report())          # fast experiments only

Each section function returns (title, headers, rows) so callers can also
assemble custom subsets.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

from repro.analysis.tables import format_table

Section = Tuple[str, Sequence[str], List[Sequence[object]]]


def table2_section() -> Section:
    from repro.perfmodel import (
        INCEPTIONV3_TF,
        P100,
        RESNET50_TF,
        VGG16_TF,
        overhead_vs_dgx1,
    )

    rows = []
    for n_gpus in (1, 2):
        for model in (INCEPTIONV3_TF, RESNET50_TF, VGG16_TF):
            gap = 100.0 * overhead_vs_dgx1(model, P100, 16, n_gpus,
                                           rng=random.Random(7))
            rows.append([model.name, n_gpus, f"{gap:.2f}%"])
    return ("Table 2: FfDL vs DGX-1", ["model", "# GPUs", "gap"], rows)


def table4_section() -> Section:
    from repro.perfmodel import P100, V100, VGG16_CAFFE, images_per_sec

    rows = [[threads,
             f"{images_per_sec(VGG16_CAFFE, P100, threads, batch_size=75):.1f}",
             f"{images_per_sec(VGG16_CAFFE, V100, threads, batch_size=75):.1f}"]
            for threads in (2, 4, 8, 16, 28)]
    return ("Table 4: VGG-16/Caffe scaling",
            ["CPU threads", "P100 img/s", "V100 img/s"], rows)


def table5_section() -> Section:
    from repro.core.tshirt import TSHIRT_SIZES, derive_cpus

    rows = [[f"{gpus}x{gpu}", size.cpus, size.memory_gb,
             derive_cpus(gpu, gpus)]
            for (gpu, gpus), size in sorted(TSHIRT_SIZES.items())]
    return ("Table 5: t-shirt sizes",
            ["config", "CPUs", "memory GB", "derived CPUs"], rows)


def table6_section() -> Section:
    from repro.perfmodel import (
        INCEPTIONV3_TF,
        RESNET50_TF,
        V100,
        VGG16_TF,
        gpu_utilization,
        images_per_sec,
    )

    rows = []
    for threads in (16, 28):
        for model in (INCEPTIONV3_TF, RESNET50_TF, VGG16_TF):
            rows.append([
                model.name, threads,
                f"{images_per_sec(model, V100, threads, batch_size=128):.1f}",
                f"{100 * gpu_utilization(model, threads):.1f}%"])
    return ("Table 6: TensorFlow scaling on V100",
            ["model", "CPU threads", "img/s", "GPU util"], rows)


def fig4_section(repeats: int = 10) -> Section:
    from repro.analysis.cdf import probability_of_zero
    from repro.workloads import GANG_WORKLOADS, run_gang_experiment

    rows = []
    for learners, gpus in GANG_WORKLOADS:
        for gang in (False, True):
            runs = [run_gang_experiment(learners, gpus, gang=gang, seed=s)
                    for s in range(repeats)]
            deadlocked = [r.deadlocked_learners for r in runs]
            rows.append([
                f"{learners}Lx{gpus}G",
                "gang" if gang else "default",
                f"{min(deadlocked)}-{max(deadlocked)}",
                f"{probability_of_zero(deadlocked):.2f}"])
    return ("Figure 4: gang scheduling deadlocks",
            ["workload", "scheduler", "deadlocked range",
             "P(no deadlock)"], rows)


def fig3_section(days: int = 10) -> Section:
    from repro.analysis.schedreplay import compare_policies
    from repro.sim import RngRegistry
    from repro.workloads import ProductionTrace, TraceConfig

    jobs = ProductionTrace(RngRegistry(42),
                           TraceConfig(days=days)).generate()
    results = compare_policies(jobs, days)
    rows = [[policy, result.total_delayed]
            for policy, result in results.items()]
    return (f"Figure 3: jobs queued >15min over {days} days",
            ["policy", "delayed jobs"], rows)


def staticcheck_section() -> Section:
    """Findings of the determinism & safety analyzer over the tree.

    A clean row means every reproduced table rests on a replayable
    simulation; any finding here invalidates the experiment numbers
    before they are even generated.
    """
    from repro.staticcheck import analyze_tree

    findings, suppressed = analyze_tree()
    rows: List[Sequence[object]] = [
        [f.code, f.location, f.message] for f in findings]
    if not rows:
        rows = [["-", "-", f"clean ({len(suppressed)} suppressed)"]]
    return ("Static analysis: determinism & safety",
            ["code", "location", "message"], rows)


#: Fast default sections (seconds of wall-clock time).
QUICK_SECTIONS: Tuple[Callable[[], Section], ...] = (
    table2_section, table4_section, table5_section, table6_section,
    fig4_section, fig3_section, staticcheck_section,
)


def build_report(sections: Sequence[Callable[[], Section]]) -> str:
    parts = ["# FfDL reproduction report", ""]
    for section in sections:
        title, headers, rows = section()
        parts.append(format_table(headers, rows, title=f"## {title}"))
        parts.append("")
    return "\n".join(parts)


def quick_report() -> str:
    """Markdown report of the fast experiments."""
    return build_report(QUICK_SECTIONS)
