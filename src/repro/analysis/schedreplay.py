"""Fast trace replay of placement policies (Figure 3b).

The paper's own methodology: "We then simulated the effect of using both
Spread and Pack to schedule these jobs, and measured the number of jobs
that are queued for more than 15 minutes because the requisite GPU
configuration is unavailable."  This replayer does exactly that: it
re-uses the cluster's :class:`NodeAllocation` arithmetic and the Spread /
Pack preference orders, but drives arrivals/completions with a bare event
heap so a 60-day, ~40k-job trace replays in seconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kube.resources import NodeAllocation, NodeCapacity, ResourceRequest
from repro.kube.scheduling.policies import PACK, SPREAD
from repro.workloads.trace import TraceJob

QUEUE_THRESHOLD_S = 15 * 60.0  # the paper's user-satisfaction threshold


@dataclass
class NodeSpec:
    count: int
    gpus: int
    gpu_type: str
    cpus: float = 64.0
    memory_gb: float = 512.0


#: The production cluster of Section 5.2: 400 GPUs (180 K80s, 220 V100s).
PRODUCTION_NODES = (NodeSpec(45, 4, "K80"), NodeSpec(55, 4, "V100"))


@dataclass
class ReplayResult:
    """Per-job queueing outcomes plus per-day aggregates."""

    days: int
    queue_times: Dict[str, float] = field(default_factory=dict)
    arrivals_per_day: Dict[int, int] = field(default_factory=dict)
    delayed_per_day: Dict[int, int] = field(default_factory=dict)

    def percent_delayed_by_day(self) -> Dict[int, float]:
        out = {}
        for day in range(self.days):
            arrived = self.arrivals_per_day.get(day, 0)
            delayed = self.delayed_per_day.get(day, 0)
            out[day] = 100.0 * delayed / arrived if arrived else 0.0
        return out

    @property
    def total_delayed(self) -> int:
        return sum(self.delayed_per_day.values())


class PlacementReplayer:
    """Replays a trace under one placement policy."""

    def __init__(self, policy: str,
                 nodes: Tuple[NodeSpec, ...] = PRODUCTION_NODES):
        if policy not in (SPREAD, PACK):
            raise ValueError(f"unknown policy {policy!r}")
        self.policy = policy
        self.allocations: Dict[str, NodeAllocation] = {}
        for spec_index, spec in enumerate(nodes):
            for i in range(spec.count):
                name = f"n{spec_index}-{spec.gpu_type}-{i}"
                self.allocations[name] = NodeAllocation(NodeCapacity(
                    cpus=spec.cpus, memory_gb=spec.memory_gb,
                    gpus=spec.gpus, gpu_type=spec.gpu_type))

    # -- placement ------------------------------------------------------------

    def _request(self, job: TraceJob) -> ResourceRequest:
        return ResourceRequest(cpus=4.0 * job.gpus_per_learner,
                               memory_gb=24.0 * job.gpus_per_learner,
                               gpus=job.gpus_per_learner,
                               gpu_type=job.gpu_type)

    def try_place(self, job: TraceJob) -> Optional[List[str]]:
        """All-or-nothing placement of every learner; returns node names
        (one per learner) or None, WITHOUT committing."""
        request = self._request(job)
        tentative: Dict[str, Tuple[float, float, int]] = {}
        chosen: List[str] = []
        for _learner in range(job.learners):
            best_name = None
            best_key = None
            for name, alloc in self.allocations.items():
                free_cpus, free_mem, free_gpus = tentative.get(
                    name, (alloc.free_cpus, alloc.free_memory_gb,
                           alloc.free_gpus))
                if alloc.capacity.gpus == 0 or \
                        alloc.capacity.gpu_type != job.gpu_type:
                    continue
                if request.gpus > free_gpus or request.cpus > free_cpus \
                        or request.memory_gb > free_mem:
                    continue
                used = alloc.capacity.gpus - free_gpus
                colocated = chosen.count(name)
                if self.policy == PACK:
                    # Fullest feasible node first.
                    key = (used, name)
                    better = best_key is None or key > best_key
                else:
                    # Spread: avoid colocating this job's learners, then
                    # prefer the emptiest node.
                    key = (-colocated, -used, name)
                    better = best_key is None or key > best_key
                if better:
                    best_key = key
                    best_name = name
            if best_name is None:
                return None
            free_cpus, free_mem, free_gpus = tentative.get(
                best_name, (self.allocations[best_name].free_cpus,
                            self.allocations[best_name].free_memory_gb,
                            self.allocations[best_name].free_gpus))
            tentative[best_name] = (free_cpus - request.cpus,
                                    free_mem - request.memory_gb,
                                    free_gpus - request.gpus)
            chosen.append(best_name)
        return chosen

    def commit(self, job: TraceJob, nodes: List[str]) -> None:
        request = self._request(job)
        for name in nodes:
            self.allocations[name].allocate(request)

    def release(self, job: TraceJob, nodes: List[str]) -> None:
        request = self._request(job)
        for name in nodes:
            self.allocations[name].release(request)

    # -- replay loop ----------------------------------------------------------------

    def replay(self, jobs: List[TraceJob], days: int) -> ReplayResult:
        result = ReplayResult(days=days)
        for job in jobs:
            day = job.arrival_day
            result.arrivals_per_day[day] = \
                result.arrivals_per_day.get(day, 0) + 1
        events: List[Tuple[float, int, int, str, TraceJob, list]] = []
        seq = 0
        for job in jobs:
            heapq.heappush(events, (job.arrival_s, 0, seq, "arrive", job,
                                    []))
            seq += 1
        queue: List[TraceJob] = []

        def try_queue(now: float) -> None:
            nonlocal seq
            remaining = []
            for queued in queue:
                placement = self.try_place(queued)
                if placement is None:
                    remaining.append(queued)
                    continue
                self.commit(queued, placement)
                result.queue_times[queued.job_id] = now - queued.arrival_s
                heapq.heappush(events, (now + queued.duration_s, 1, seq,
                                        "finish", queued, placement))
                seq += 1
            queue[:] = remaining

        while events:
            now, _prio, _seq, kind, job, placement = heapq.heappop(events)
            if kind == "arrive":
                queue.append(job)
                try_queue(now)
            else:
                self.release(job, placement)
                try_queue(now)
        # Jobs never placed count as delayed.
        for job in jobs:
            queue_time = result.queue_times.get(job.job_id)
            if queue_time is None or queue_time > QUEUE_THRESHOLD_S:
                day = job.arrival_day
                result.delayed_per_day[day] = \
                    result.delayed_per_day.get(day, 0) + 1
        return result


def compare_policies(jobs: List[TraceJob], days: int,
                     nodes: Tuple[NodeSpec, ...] = PRODUCTION_NODES
                     ) -> Dict[str, ReplayResult]:
    """Replay the same trace under Spread and Pack (Figure 3b)."""
    return {policy: PlacementReplayer(policy, nodes).replay(jobs, days)
            for policy in (SPREAD, PACK)}
