"""Plain-text table rendering for benchmark output.

Each benchmark prints rows in the same layout as the paper's table or
figure series so the reproduction can be eyeballed against the original.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return " | ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in rendered_rows)
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                title: str = "") -> None:
    print()
    print(format_table(headers, rows, title))
