"""Deterministic chaos engine for the FfDL platform.

Composes the per-substrate fault hooks that already exist across the tree
(:class:`~repro.sim.failure.FaultInjector` specs, Raft network partitions,
MongoDB primary kills, object-store outage/brownout windows, kubelet crash
injection) into declarative, seeded scenarios.  Each scenario runs a job
churn against a fully replicated platform, injects its faults on a fixed
schedule, checks steady-state hypotheses before and after the injections,
and emits a merged audit log that is byte-identical across runs with the
same seed — the property ``--check-determinism`` verifies.

Run ``python -m repro.chaos --list`` to see the named scenarios.
"""

from repro.chaos.engine import (
    ChaosEngine,
    ChaosReport,
    HypothesisResult,
    InjectionStep,
    RecoveryRecord,
    Scenario,
)
from repro.chaos.federation import (
    FEDERATION_SCENARIOS,
    FederationChaosEngine,
    FederationScenario,
    FederationStep,
    get_federation_scenario,
    run_federation_scenario,
)
from repro.chaos.scenarios import SCENARIOS, get_scenario

__all__ = [
    "ChaosEngine",
    "ChaosReport",
    "FEDERATION_SCENARIOS",
    "FederationChaosEngine",
    "FederationScenario",
    "FederationStep",
    "HypothesisResult",
    "InjectionStep",
    "RecoveryRecord",
    "SCENARIOS",
    "Scenario",
    "get_federation_scenario",
    "get_scenario",
    "run_federation_scenario",
]
