"""``python -m repro.chaos`` dispatches to the CLI."""

import sys

from repro.chaos.cli import main

if __name__ == "__main__":
    sys.exit(main())
