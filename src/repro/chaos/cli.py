"""Command-line entry point: ``python -m repro.chaos``.

Runs a named scenario and prints its report.  Exit status is 0 when all
steady-state hypotheses pass, 1 when any fails, and 2 when
``--check-determinism`` or ``--perturb`` finds a divergent audit log or
end state.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.chaos.engine import ChaosEngine
from repro.chaos.federation import FederationChaosEngine
from repro.chaos.registry import get_registered_scenario, scenario_registry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run a deterministic chaos scenario against a "
                    "replicated FfDL platform.")
    parser.add_argument("--scenario", default="everything-at-once",
                        help="scenario name (see --list)")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed (default 0)")
    parser.add_argument("--list", action="store_true",
                        help="list the named scenarios and exit")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the scenario twice and fail unless the "
                             "audit logs are identical")
    parser.add_argument("--tiebreak-seed", type=int, default=0,
                        help="heap tie-break permutation seed "
                             "(0 = FIFO, the default)")
    parser.add_argument("--perturb", type=int, default=0, metavar="N",
                        help="re-run the scenario under N additional "
                             "tie-break permutations and fail unless "
                             "audit logs and end states are identical")
    parser.add_argument("--detect-races", action="store_true",
                        help="attach the vector-clock schedule-"
                             "sensitivity detector (conflicts fail the "
                             "run)")
    parser.add_argument("--format", choices=("text", "md"), default="text",
                        help="report format (default text)")
    parser.add_argument("--no-audit", action="store_true",
                        help="omit the audit log from the report")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for entry in scenario_registry().values():
            tag = "" if entry.kind == "chaos" \
                else f"[{entry.kind}] "
            print(f"{entry.name} ({entry.origins}): "
                  f"{tag}{entry.description}")
        return 0
    from repro.manifest import ManifestError

    try:
        entry = get_registered_scenario(args.scenario)
        kind, scenario, compiled = entry.resolve()
    except KeyError as err:
        print(err.args[0])
        return 2
    except ManifestError as err:
        print(err.render())
        return 2
    node_groups = compiled.node_groups or None \
        if compiled is not None else None

    def run_once(tiebreak_seed: int):
        if kind == "federation":
            return FederationChaosEngine(
                scenario, seed=args.seed, tiebreak_seed=tiebreak_seed,
                detect_races=args.detect_races).run()
        return ChaosEngine(scenario, seed=args.seed,
                           tiebreak_seed=tiebreak_seed,
                           detect_races=args.detect_races,
                           node_groups=node_groups).run()

    report = run_once(args.tiebreak_seed)
    print(report.render(args.format, audit=not args.no_audit))
    if args.perturb:
        for offset in range(1, args.perturb + 1):
            perturbed_seed = args.tiebreak_seed + offset
            perturbed = run_once(perturbed_seed)
            if perturbed.audit_lines != report.audit_lines \
                    or perturbed.end_state() != report.end_state():
                print(f"perturbation check FAILED: tiebreak seed "
                      f"{perturbed_seed} diverges from "
                      f"{args.tiebreak_seed} (audit "
                      f"{len(report.audit_lines)} vs "
                      f"{len(perturbed.audit_lines)} lines)")
                return 2
        print(f"perturbation check passed: {args.perturb} permuted "
              f"schedules reproduce the audit log and end state")
    if args.check_determinism:
        rerun = run_once(args.tiebreak_seed)
        if rerun.audit_lines != report.audit_lines:
            diverging = sum(1 for a, b in
                            zip(report.audit_lines, rerun.audit_lines)
                            if a != b)
            print(f"determinism check FAILED: {diverging} diverging "
                  f"entries (lengths {len(report.audit_lines)} vs "
                  f"{len(rerun.audit_lines)})")
            return 2
        print(f"determinism check passed: {len(report.audit_lines)} "
              f"audit entries identical across two runs")
    return 0 if report.passed else 1
