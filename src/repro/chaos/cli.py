"""Command-line entry point: ``python -m repro.chaos``.

Runs a named scenario and prints its report.  Exit status is 0 when all
steady-state hypotheses pass, 1 when any fails, and 2 when
``--check-determinism`` finds a divergent audit log.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.chaos.engine import ChaosEngine
from repro.chaos.scenarios import SCENARIOS, get_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run a deterministic chaos scenario against a "
                    "replicated FfDL platform.")
    parser.add_argument("--scenario", default="everything-at-once",
                        help="scenario name (see --list)")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed (default 0)")
    parser.add_argument("--list", action="store_true",
                        help="list the named scenarios and exit")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the scenario twice and fail unless the "
                             "audit logs are identical")
    parser.add_argument("--format", choices=("text", "md"), default="text",
                        help="report format (default text)")
    parser.add_argument("--no-audit", action="store_true",
                        help="omit the audit log from the report")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for scenario in SCENARIOS.values():
            print(f"{scenario.name}: {scenario.description}")
        return 0
    try:
        scenario = get_scenario(args.scenario)
    except KeyError as err:
        print(err.args[0])
        return 2
    report = ChaosEngine(scenario, seed=args.seed).run()
    print(report.render(args.format, audit=not args.no_audit))
    if args.check_determinism:
        rerun = ChaosEngine(scenario, seed=args.seed).run()
        if rerun.audit_lines != report.audit_lines:
            diverging = sum(1 for a, b in
                            zip(report.audit_lines, rerun.audit_lines)
                            if a != b)
            print(f"determinism check FAILED: {diverging} diverging "
                  f"entries (lengths {len(report.audit_lines)} vs "
                  f"{len(rerun.audit_lines)})")
            return 2
        print(f"determinism check passed: {len(report.audit_lines)} "
              f"audit entries identical across two runs")
    return 0 if report.passed else 1
