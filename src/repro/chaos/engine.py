"""The chaos engine: seeded scenarios, injections, hypotheses, audit.

A :class:`Scenario` is pure data: a schedule of :class:`InjectionStep`
records against named fault kinds.  :class:`ChaosEngine` binds each kind
to the substrate hooks that already exist in the tree (Raft
crash/partition, Mongo member kills, object-store outage and brownout
windows, kubelet node crashes, microservice replica kills), schedules
every step through a :class:`~repro.sim.failure.FaultInjector` so each
occurrence lands in the injector's audit log, runs a seeded job churn
over the platform, and checks steady-state hypotheses before the first
injection and after the last recovery.

Everything — churn arrivals, outage durations, retry jitter — draws from
named :class:`~repro.sim.rng.RngRegistry` streams, so a scenario's merged
audit log is identical across runs with the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import statuses as st
from repro.core.manifest import JobManifest
from repro.core.platform import FfDLPlatform, PlatformConfig
from repro.errors import SimulationError, StoreUnavailableError
from repro.etcd.replicated import ReplicatedEtcd
from repro.mongo.database import MongoReplicaSet
from repro.resilience import RetryPolicy, TRANSIENT_ERRORS
from repro.sim.core import Environment, OBSERVER
from repro.sim.failure import FaultEvent, FaultInjector
from repro.sim.race import RaceDetector
from repro.sim.rng import RngRegistry

#: Paper recovery-time calibration (Table 3), for the kinds that map onto
#: a crashed FfDL component.  Other kinds report measured times only.
TABLE3_RECOVERY_S: Dict[str, Tuple[str, Tuple[float, float]]] = {
    "api-crash": ("API", (3.0, 5.0)),
    "lcm-crash": ("LCM", (4.0, 6.0)),
}

#: Fault kinds the engine can bind (scenario validation).
FAULT_KINDS = (
    "etcd-leader-kill",
    "etcd-partition",
    "mongo-primary-kill",
    "oss-outage",
    "oss-brownout",
    "node-crash",
    "api-crash",
    "lcm-crash",
)


@dataclass(frozen=True)
class InjectionStep:
    """One scheduled injection: *what* to break, *when*, for *how long*."""

    at_s: float
    kind: str
    target: str = ""
    duration_s: float = 0.0
    #: Kind-specific knob (e.g. brownout bandwidth fraction).
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {', '.join(FAULT_KINDS)}")
        if self.at_s < 0 or self.duration_s < 0:
            raise ValueError("at_s and duration_s must be non-negative")


@dataclass(frozen=True)
class Scenario:
    """A named, declarative chaos scenario."""

    name: str
    description: str
    steps: Tuple[InjectionStep, ...]
    horizon_s: float = 900.0
    #: Extra quiet time after the horizon for recoveries and flushes.
    settle_s: float = 240.0
    jobs: int = 6
    job_interarrival_s: float = 20.0
    job_iterations: int = 150
    #: Shape of each churn job (defaults match the historical engine
    #: hard-coding, so existing scenarios are unchanged).
    job_learners: int = 1
    job_gpus_per_learner: int = 1
    job_gpu_type: str = "K80"
    job_memory_gb: Optional[float] = None


@dataclass(frozen=True)
class HypothesisResult:
    phase: str
    name: str
    ok: bool
    detail: str
    time: float


@dataclass(frozen=True)
class RecoveryRecord:
    kind: str
    target: str
    started_at: float
    duration_s: Optional[float]
    timed_out: bool = False


@dataclass
class ChaosReport:
    """Everything one scenario run produced."""

    scenario: str
    seed: int
    hypotheses: List[HypothesisResult]
    recoveries: List[RecoveryRecord]
    audit_lines: List[str]
    counters: Dict[str, float] = field(default_factory=dict)
    #: Heap tie-break permutation the run used (0 = FIFO).
    tiebreak_seed: int = 0
    #: job_id -> final status; part of the end-state witness.
    job_states: Dict[str, str] = field(default_factory=dict)
    #: Rendered schedule-sensitivity conflicts (empty unless the run
    #: was started with ``detect_races=True`` and found some).
    race_lines: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(h.ok for h in self.hypotheses) and bool(self.hypotheses) \
            and not self.race_lines

    def end_state(self) -> dict:
        """The schedule-independence witness: everything that must be
        identical across tie-break perturbations of the same seed."""
        return {
            "counters": dict(self.counters),
            "job_states": dict(self.job_states),
            "hypotheses": [(h.phase, h.name, h.ok)
                           for h in self.hypotheses],
        }

    def render(self, fmt: str = "text", audit: bool = True) -> str:
        if fmt == "md":
            return self._render_md(audit)
        return self._render_text(audit)

    def _recovery_rows(self) -> List[Tuple[str, str, str, str]]:
        rows = []
        for rec in self.recoveries:
            measured = "TIMED OUT" if rec.timed_out \
                else f"{rec.duration_s:.2f}s"
            paper = ""
            mapped = TABLE3_RECOVERY_S.get(rec.kind)
            if mapped is not None:
                component, (lo, hi) = mapped
                paper = f"{component} {lo:g}-{hi:g}s (Table 3)"
            rows.append((rec.kind, rec.target or "-", measured, paper))
        return rows

    def _render_text(self, audit: bool) -> str:
        lines = [f"chaos scenario {self.scenario!r} seed={self.seed} "
                 f"tiebreak={self.tiebreak_seed}: "
                 f"{'PASS' if self.passed else 'FAIL'}"]
        if self.race_lines:
            lines.append(f"schedule-sensitive conflicts "
                         f"({len(self.race_lines)}):")
            lines.extend(f"  {entry}" for entry in self.race_lines)
        lines.append("counters: " + " ".join(
            f"{key}={value:g}" for key, value in self.counters.items()))
        lines.append("hypotheses:")
        for h in self.hypotheses:
            lines.append(f"  [{h.phase}] {h.name}: "
                         f"{'PASS' if h.ok else 'FAIL'} ({h.detail})")
        lines.append("recovery times:")
        for kind, target, measured, paper in self._recovery_rows():
            suffix = f"  [paper: {paper}]" if paper else ""
            lines.append(f"  {kind} target={target}: {measured}{suffix}")
        if audit:
            lines.append(f"audit log ({len(self.audit_lines)} entries):")
            lines.extend(f"  {entry}" for entry in self.audit_lines)
        return "\n".join(lines)

    def _render_md(self, audit: bool) -> str:
        lines = [f"## Chaos scenario `{self.scenario}` (seed {self.seed}, "
                 f"tiebreak {self.tiebreak_seed}) — "
                 f"{'PASS' if self.passed else 'FAIL'}", ""]
        if self.race_lines:
            lines.append(f"**{len(self.race_lines)} schedule-sensitive "
                         f"conflict(s):**")
            lines.extend(f"- `{entry}`" for entry in self.race_lines)
            lines.append("")
        lines.append("| counter | value |")
        lines.append("|---|---|")
        for key, value in self.counters.items():
            lines.append(f"| {key} | {value:g} |")
        lines.append("")
        lines.append("| phase | hypothesis | result | detail |")
        lines.append("|---|---|---|---|")
        for h in self.hypotheses:
            lines.append(f"| {h.phase} | {h.name} | "
                         f"{'PASS' if h.ok else 'FAIL'} | {h.detail} |")
        lines.append("")
        lines.append("| fault | target | measured recovery | paper |")
        lines.append("|---|---|---|---|")
        for kind, target, measured, paper in self._recovery_rows():
            lines.append(f"| {kind} | {target} | {measured} | "
                         f"{paper or '—'} |")
        if audit:
            lines.append("")
            lines.append("<details><summary>audit log "
                         f"({len(self.audit_lines)} entries)</summary>")
            lines.append("")
            lines.append("```")
            lines.extend(self.audit_lines)
            lines.append("```")
            lines.append("</details>")
        return "\n".join(lines)


def default_platform_config() -> PlatformConfig:
    """The fully replicated deployment chaos scenarios run against."""
    return PlatformConfig(
        etcd_replicas=3,
        mongo_secondaries=2,
        mongo_election_delay_s=4.0,
        client_breakers=True,
        mount_retry=RetryPolicy(max_attempts=6, base_delay_s=0.2,
                                max_delay_s=5.0),
    )


class ChaosEngine:
    """Runs one scenario against one freshly built platform."""

    #: Recovery polling resolution (quantizes measured recovery times).
    POLL_S = 0.25
    #: Give up watching for a fault's recovery after this long.
    RECOVERY_TIMEOUT_S = 900.0
    #: Bounded drain grace before each hypothesis check: the writer gets
    #: up to this many half-second windows to flush in-flight writes, so
    #: a write enqueued microseconds before the check does not read as a
    #: stuck backlog.
    DRAIN_GRACE_STEPS = 120

    def __init__(self, scenario: Scenario, seed: int = 0,
                 config: Optional[PlatformConfig] = None,
                 gpu_nodes: int = 4, gpus_per_node: int = 4,
                 tiebreak_seed: int = 0, detect_races: bool = False,
                 node_groups: Optional[Sequence] = None):
        self.scenario = scenario
        self.seed = seed
        self.tiebreak_seed = tiebreak_seed
        self.env = Environment(tiebreak_seed=tiebreak_seed)
        #: Attach the vector-clock monitor *before* any substrate is
        #: built so every access from t=0 is covered.
        self.race_detector = RaceDetector(self.env) if detect_races else None
        self.rng = RngRegistry(seed)
        self.config = config or default_platform_config()
        self.platform = FfDLPlatform(self.env, self.rng, self.config)
        if node_groups is None:
            self.platform.add_gpu_nodes(gpu_nodes,
                                        gpus_per_node=gpus_per_node,
                                        gpu_type="K80")
        else:
            # Declarative topology (manifest-compiled): each group is
            # any object with count/gpus_per_node/gpu_type/cpus/
            # memory_gb attributes, e.g. repro.manifest NodeGroup.
            for group in node_groups:
                self.platform.add_gpu_nodes(
                    group.count, gpus_per_node=group.gpus_per_node,
                    gpu_type=group.gpu_type, cpus=group.cpus,
                    memory_gb=group.memory_gb)
        self.platform.admission.register("chaos", gpu_quota=10 ** 6)
        self.injector = FaultInjector(self.env, self.rng)
        self.stream = self.rng.stream("chaos:arrivals")
        self._engine_log: List[Tuple[float, str]] = []
        self.hypotheses: List[HypothesisResult] = []
        self.recoveries: List[RecoveryRecord] = []
        self.submitted: List[str] = []
        self.submit_failures = 0
        self._ran = False

    # -- audit --------------------------------------------------------------

    def _log(self, text: str) -> None:
        self._engine_log.append((self.env.now, text))

    def audit_lines(self) -> List[str]:
        """Engine events merged with the injector's own audit log.

        At equal timestamps the injector record comes first (it is
        written before the fault callback runs); *within* one source and
        timestamp, lines sort canonically by text.  Within-tick append
        order is exactly what the kernel is free to permute when two
        events tie (see :class:`~repro.sim.core.Environment`), so the
        witness treats one instant's lines as an unordered set.  The
        merged log is the determinism contract: two runs with the same
        scenario seed must produce identical lines under *every*
        tie-break seed.
        """
        entries: List[Tuple[float, int, str, int]] = []
        for seq, fault in enumerate(self.injector.log):
            entries.append((fault.time, 0,
                            f"fault {fault.kind} target={fault.target} "
                            f"duration={fault.duration_s:.3f}", seq))
        for seq, (time, text) in enumerate(self._engine_log):
            entries.append((time, 1, text, seq))
        entries.sort()
        return [f"t={time:10.3f} {text}"
                for time, _src, text, _seq in entries]

    # -- fault binding ------------------------------------------------------

    def _bind(self, step: InjectionStep):
        """(inject, recover, healthy) callables for one step."""
        platform = self.platform
        state: Dict[str, object] = {}

        if step.kind == "etcd-leader-kill":
            if not isinstance(platform.etcd, ReplicatedEtcd):
                raise SimulationError(
                    "etcd-leader-kill needs etcd_replicas > 0")

            def inject(event: FaultEvent) -> None:
                state["node"] = platform.etcd.crash_leader()

            def recover(event: FaultEvent) -> None:
                node = state.get("node")
                if node:
                    platform.etcd.restart_replica(node)

            def healthy() -> bool:
                return platform.etcd.cluster.leader() is not None

        elif step.kind == "etcd-partition":
            if not isinstance(platform.etcd, ReplicatedEtcd):
                raise SimulationError(
                    "etcd-partition needs etcd_replicas > 0")
            raft = platform.etcd.cluster

            def inject(event: FaultEvent) -> None:
                leader = raft.leader()
                state["term"] = leader.current_term if leader else 0
                if leader is not None:
                    others = {node_id for node_id in raft.node_ids()
                              if node_id != leader.node_id}
                    raft.network.partition({leader.node_id}, others)

            def recover(event: FaultEvent) -> None:
                raft.network.heal_all()

            def healthy() -> bool:
                # Healthy once the majority side elected a fresh leader.
                leader = raft.leader()
                return leader is not None and \
                    leader.current_term > int(state.get("term", 0))

        elif step.kind == "mongo-primary-kill":
            if not isinstance(platform.mongo, MongoReplicaSet):
                raise SimulationError(
                    "mongo-primary-kill needs mongo_secondaries > 0")

            def inject(event: FaultEvent) -> None:
                state["index"] = platform.mongo.primary_index
                platform.mongo.crash_member(state["index"])

            def recover(event: FaultEvent) -> None:
                platform.mongo.restart_member(int(state["index"]))

            def healthy() -> bool:
                return platform.mongo.has_primary

        elif step.kind == "oss-outage":
            def inject(event: FaultEvent) -> None:
                platform.oss.begin_outage()

            def recover(event: FaultEvent) -> None:
                platform.oss.end_outage()

            def healthy() -> bool:
                return platform.oss.available

        elif step.kind == "oss-brownout":
            fraction = step.param or 0.1

            def inject(event: FaultEvent) -> None:
                platform.oss.set_bandwidth(
                    platform.oss.nominal_bandwidth_bps * fraction)

            def recover(event: FaultEvent) -> None:
                platform.oss.restore_bandwidth()

            def healthy() -> bool:
                return platform.oss.link.capacity_bps >= \
                    platform.oss.nominal_bandwidth_bps

        elif step.kind == "node-crash":
            if not step.target:
                raise SimulationError("node-crash needs a target node")

            def inject(event: FaultEvent) -> None:
                platform.cluster.fail_node(step.target)

            def recover(event: FaultEvent) -> None:
                platform.cluster.recover_node(step.target)

            def healthy() -> bool:
                return platform.cluster.node_is_up(step.target)

        elif step.kind in ("api-crash", "lcm-crash"):
            service = platform.api_service if step.kind == "api-crash" \
                else platform.lcm

            def inject(event: FaultEvent) -> None:
                # Kill the whole replica set so availability actually
                # drops; recovery time is the fastest replica's restart
                # (the quantity Table 3 reports).
                for _ in range(service.replicas_up):
                    service.crash_replica()

            def recover(event: FaultEvent) -> None:
                pass  # replicas restart themselves

            def healthy() -> bool:
                return service.available

        else:  # pragma: no cover - InjectionStep validates kinds
            raise SimulationError(f"unbound fault kind {step.kind!r}")

        return inject, recover, healthy

    def _schedule_step(self, step: InjectionStep) -> None:
        inject, recover, healthy = self._bind(step)

        def on_fault(event: FaultEvent) -> None:
            inject(event)
            self._log(f"inject {step.kind} target={step.target or '-'} "
                      f"duration={step.duration_s:g}")
            self.env.process(self._watch_recovery(step, healthy),
                             name=f"chaos-watch:{step.kind}")

        def on_recover(event: FaultEvent) -> None:
            recover(event)
            self._log(f"recover {step.kind} target={step.target or '-'}")

        self.injector.inject_once(
            step.kind, step.target or step.kind, step.at_s, on_fault,
            duration_s=step.duration_s, on_recover=on_recover)

    def _watch_recovery(self, step: InjectionStep, healthy):
        started = self.env.now
        while self.env.now - started < self.RECOVERY_TIMEOUT_S:
            # OBSERVER priority: sample the tick's settled state, so a
            # recovery landing exactly on a poll boundary is measured
            # identically under every legal tie-breaking order.
            yield self.env.timeout(self.POLL_S, priority=OBSERVER)
            if healthy():
                duration = self.env.now - started
                self.recoveries.append(RecoveryRecord(
                    step.kind, step.target, started, duration))
                self._log(f"recovered {step.kind} "
                          f"target={step.target or '-'} "
                          f"after {duration:.2f}s")
                return
        self.recoveries.append(RecoveryRecord(
            step.kind, step.target, started, None, timed_out=True))
        self._log(f"recovery-timeout {step.kind} "
                  f"target={step.target or '-'}")

    # -- workload -----------------------------------------------------------

    def _churn(self):
        for index in range(self.scenario.jobs):
            yield self.env.timeout(self.stream.expovariate(
                1.0 / self.scenario.job_interarrival_s))
            self.env.process(self._one_job(index),
                             name=f"chaos-job:{index}")

    def _one_job(self, index: int):
        manifest = JobManifest(
            name=f"chaos-{index}", user="chaos", framework="tensorflow",
            model="resnet50", data_bucket=f"chaos-data-{index}",
            result_bucket="chaos-results",
            learners=self.scenario.job_learners,
            gpus_per_learner=self.scenario.job_gpus_per_learner,
            gpu_type=self.scenario.job_gpu_type,
            memory_gb_per_learner=self.scenario.job_memory_gb,
            iterations=self.scenario.job_iterations,
            dataset_objects=2, dataset_object_bytes=32e6)
        try:
            job_id = yield self.platform.submit_job(manifest)
        except TRANSIENT_ERRORS as err:
            self.submit_failures += 1
            self._log(f"submit-failed job=chaos-{index} "
                      f"error={type(err).__name__}")
            return
        self.submitted.append(job_id)
        self._log(f"submitted {job_id} (chaos-{index})")

    # -- hypotheses ---------------------------------------------------------

    def _jobs_collection(self):
        return self.platform.mongo.collection("jobs")

    def _hyp_writer_flushed(self) -> Tuple[bool, str]:
        writer = self.platform.status_writer
        ok = writer.pending == 0 and not writer.degraded \
            and writer.write_errors == 0
        return ok, (f"enqueued={writer.total_enqueued} "
                    f"flushed={writer.total_flushed} "
                    f"pending={writer.pending} "
                    f"errors={writer.write_errors}")

    def _hyp_jobs_durable(self) -> Tuple[bool, str]:
        if self.platform.status_writer.pending:
            return False, (f"{self.platform.status_writer.pending} "
                           f"writes still buffered")
        try:
            collection = self._jobs_collection()
        except StoreUnavailableError:
            return False, "mongo primary unavailable"
        missing = [job_id for job_id in sorted(self.platform.jobs)
                   if collection.find_one({"_id": job_id}) is None]
        if missing:
            return False, (f"{len(missing)} job records lost: "
                           f"{missing[:3]}")
        return True, f"{len(self.platform.jobs)} job records durable"

    def _hyp_status_consistent(self) -> Tuple[bool, str]:
        try:
            collection = self._jobs_collection()
        except StoreUnavailableError:
            return False, "mongo primary unavailable"
        stale = []
        for job_id in sorted(self.platform.jobs):
            document = collection.find_one({"_id": job_id})
            if document is None:
                continue  # counted by the durability hypothesis
            if document.get("status") != \
                    self.platform.jobs[job_id].status.current:
                stale.append(job_id)
        if stale:
            return False, (f"{len(stale)} durable statuses stale: "
                           f"{stale[:3]}")
        return True, "durable status matches in-memory status"

    def _hyp_mongo_primary(self) -> Tuple[bool, str]:
        backend = self.platform.mongo
        if isinstance(backend, MongoReplicaSet):
            ok = backend.has_primary
            return ok, (f"primary index {backend.primary_index}" if ok
                        else "no primary")
        return True, "standalone mongo"

    def _hyp_etcd_leader(self) -> Tuple[bool, str]:
        backend = self.platform.etcd
        if isinstance(backend, ReplicatedEtcd):
            leader = backend.cluster.leader()
            if leader is None:
                return False, "no raft leader"
            return True, f"leader {leader.node_id}"
        return True, "standalone etcd"

    def _hyp_no_overallocation(self) -> Tuple[bool, str]:
        over = [name for name, alloc in
                sorted(self.platform.cluster.allocations.items())
                if alloc.allocated_gpus > alloc.capacity.gpus]
        if over:
            return False, f"over-allocated nodes: {over}"
        return True, (f"allocated {self.platform.cluster.allocated_gpus()}"
                      f"/{self.platform.cluster.total_gpus()} GPUs")

    def _hypotheses(self):
        return (
            ("status-writer-flushed", self._hyp_writer_flushed),
            ("no-lost-job-records", self._hyp_jobs_durable),
            ("status-consistency", self._hyp_status_consistent),
            ("mongo-primary-available", self._hyp_mongo_primary),
            ("etcd-leader-elected", self._hyp_etcd_leader),
            ("no-gpu-overallocation", self._hyp_no_overallocation),
        )

    def _check_hypotheses(self, phase: str):
        # Bounded drain grace: let in-flight (non-degraded) writes land
        # so the check measures steady state, not a scheduling race.
        writer = self.platform.status_writer
        for _ in range(self.DRAIN_GRACE_STEPS):
            if writer.pending == 0 and not writer.degraded:
                break
            yield self.env.timeout(0.5, priority=OBSERVER)
        for name, check in self._hypotheses():
            ok, detail = check()
            self.hypotheses.append(HypothesisResult(
                phase, name, ok, detail, self.env.now))
            self._log(f"hypothesis {name} [{phase}]: "
                      f"{'PASS' if ok else 'FAIL'} ({detail})")

    # -- run ----------------------------------------------------------------

    def run(self) -> ChaosReport:
        if self._ran:
            raise SimulationError("ChaosEngine instances are single-use; "
                                  "build a fresh one per run")
        self._ran = True
        first_fault = min((step.at_s for step in self.scenario.steps),
                          default=0.0)

        def baseline():
            yield self.env.timeout(max(0.0, first_fault - 1.0))
            yield from self._check_hypotheses("steady-state:before")

        self.env.process(baseline(), name="chaos-baseline")
        self.env.process(self._churn(), name="chaos-churn")
        for step in self.scenario.steps:
            self._schedule_step(step)
        self.env.run(until=self.scenario.horizon_s
                     + self.scenario.settle_s)
        self.env.run_until_complete(
            self.env.process(self._check_hypotheses("steady-state:after"),
                             name="chaos-final"),
            limit=self.env.now + 120.0)
        return self._report()

    def _report(self) -> ChaosReport:
        platform = self.platform
        completed = sum(1 for job in platform.jobs.values()
                        if job.status.current == st.COMPLETED)
        terminal = sum(1 for job in platform.jobs.values()
                       if job.status.is_terminal)
        writer = platform.status_writer
        counters: Dict[str, float] = {
            "jobs-submitted": len(self.submitted),
            "submit-failures": self.submit_failures,
            "jobs-completed": completed,
            "jobs-terminal": terminal,
            "writes-enqueued": writer.total_enqueued,
            "writes-flushed": writer.total_flushed,
            "write-errors": writer.write_errors,
            "peak-buffered-writes": writer.peak_pending,
            "degraded-windows": len(writer.degraded_periods),
            "mongo-retries": platform.mongo_client.retries,
            "etcd-retries": platform.etcd_client.retries,
            "faults-injected": len(self.injector.log),
        }
        if isinstance(platform.mongo, MongoReplicaSet):
            counters["mongo-failovers"] = len(platform.mongo.failover_log)
        race_lines: List[str] = []
        if self.race_detector is not None:
            race_lines = self.race_detector.render()
            counters["schedule-conflicts"] = len(race_lines)
        return ChaosReport(
            scenario=self.scenario.name,
            seed=self.seed,
            hypotheses=list(self.hypotheses),
            recoveries=list(self.recoveries),
            audit_lines=self.audit_lines(),
            counters=counters,
            tiebreak_seed=self.tiebreak_seed,
            job_states={job_id: job.status.current
                        for job_id, job in sorted(platform.jobs.items())},
            race_lines=race_lines,
        )


def run_scenario(scenario: Scenario, seed: int = 0,
                 config: Optional[PlatformConfig] = None,
                 tiebreak_seed: int = 0,
                 detect_races: bool = False) -> ChaosReport:
    """Build a fresh engine and run ``scenario`` once."""
    return ChaosEngine(scenario, seed=seed, config=config,
                       tiebreak_seed=tiebreak_seed,
                       detect_races=detect_races).run()
