"""Whole-cell chaos: blackout and brownout scenarios over a federation.

The single-platform :class:`~repro.chaos.engine.ChaosEngine` breaks
components *inside* one FfDL installation.  This module breaks entire
installations: a :class:`FederationChaosEngine` builds N cells under a
:class:`~repro.federation.dispatcher.FederationDispatcher`, replays a
paper-shaped federated trace, and injects two whole-cell fault kinds —

* ``cell-blackout`` — the cell goes completely dark (services held
  down, every node dead, MongoDB unreachable) and later returns;
* ``cell-brownout`` — the cell stays up but its API/LCM latency
  inflates by ``param`` (default 200x), the crash-storm signature the
  health monitor must classify from probe latency alone.

The steady-state hypotheses pin the federation's contract: zero lost
intent records, zero double executions, every intent resolved, every
buffered writer drained, all cells healthy again.  Reports reuse
:class:`~repro.chaos.engine.ChaosReport`, so ``--check-determinism``,
``--perturb`` and ``--detect-races`` work unchanged: two runs with the
same seed must produce byte-identical audit logs and end states under
every tie-break permutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos.engine import (
    ChaosReport,
    HypothesisResult,
    RecoveryRecord,
)
from repro.core import statuses as st
from repro.errors import QuotaExceededError, SimulationError
from repro.federation import (
    Cell,
    CellSpec,
    FederationBus,
    FederationDispatcher,
    HEALTHY,
    HealthConfig,
)
from repro.sim.core import Environment, OBSERVER
from repro.sim.failure import FaultEvent, FaultInjector
from repro.sim.race import RaceDetector
from repro.sim.rng import RngRegistry
from repro.workloads.federation_trace import (
    FederationTrace,
    FederationTraceConfig,
)

FEDERATION_FAULT_KINDS = ("cell-blackout", "cell-brownout")


@dataclass(frozen=True)
class CellDef:
    """Declarative cell shape inside a scenario (pure data)."""

    name: str
    zone: str
    gpu_nodes: int
    gpus_per_node: int
    gpu_type: str


@dataclass(frozen=True)
class FederationStep:
    """One whole-cell injection."""

    at_s: float
    kind: str
    cell: str
    duration_s: float = 0.0
    #: Brownout latency inflation factor (0 -> default 200x).
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FEDERATION_FAULT_KINDS:
            raise ValueError(
                f"unknown federation fault kind {self.kind!r}; "
                f"known: {', '.join(FEDERATION_FAULT_KINDS)}")
        if self.at_s < 0 or self.duration_s < 0:
            raise ValueError("at_s and duration_s must be non-negative")


@dataclass(frozen=True)
class FederationScenario:
    """A named multi-cell chaos scenario."""

    name: str
    description: str
    cells: Tuple[CellDef, ...]
    steps: Tuple[FederationStep, ...]
    horizon_s: float = 1500.0
    settle_s: float = 600.0
    jobs: int = 12
    arrival_window_s: float = 240.0
    min_iterations: int = 80
    max_iterations: int = 200
    #: Federation-wide per-tenant GPU quota.
    tenant_quota_gpus: int = 512

    @property
    def total_gpus(self) -> int:
        return sum(c.gpu_nodes * c.gpus_per_node for c in self.cells)


class FederationChaosEngine:
    """Runs one federation scenario against freshly built cells."""

    POLL_S = 0.25
    RECOVERY_TIMEOUT_S = 900.0
    DRAIN_GRACE_STEPS = 120

    def __init__(self, scenario: FederationScenario, seed: int = 0,
                 tiebreak_seed: int = 0, detect_races: bool = False):
        self.scenario = scenario
        self.seed = seed
        self.tiebreak_seed = tiebreak_seed
        self.env = Environment(tiebreak_seed=tiebreak_seed)
        self.race_detector = RaceDetector(self.env) if detect_races else None
        self.rng = RngRegistry(seed)
        self._engine_log: List[Tuple[float, str]] = []
        self.bus = FederationBus(self.env, self.rng)
        self.cells: Dict[str, Cell] = {}
        for spec in scenario.cells:
            cell = Cell(self.env, self.rng, CellSpec(
                name=spec.name, zone=spec.zone, gpu_nodes=spec.gpu_nodes,
                gpus_per_node=spec.gpus_per_node, gpu_type=spec.gpu_type))
            self.cells[cell.name] = cell
        self.dispatcher = FederationDispatcher(
            self.env, self.rng, self.bus, list(self.cells.values()),
            health_config=HealthConfig(),
            audit=self._log)
        self.trace = FederationTrace(self.rng, FederationTraceConfig(
            jobs=scenario.jobs,
            arrival_window_s=scenario.arrival_window_s,
            min_iterations=scenario.min_iterations,
            max_iterations=scenario.max_iterations,
            gpu_type_mix=self._gpu_type_mix(scenario)))
        self.injector = FaultInjector(self.env, self.rng)
        self.hypotheses: List[HypothesisResult] = []
        self.recoveries: List[RecoveryRecord] = []
        self.submitted: List[str] = []
        self.submit_failures = 0
        self._ran = False

    @staticmethod
    def _gpu_type_mix(scenario: FederationScenario):
        """Restrict the trace's GPU-type mix to types some cell actually
        has (a job demanding a type no cell offers would queue forever),
        renormalized to preserve the relative production weights."""
        available = {spec.gpu_type for spec in scenario.cells}
        mix = tuple((gpu_type, weight) for gpu_type, weight
                    in FederationTraceConfig().gpu_type_mix
                    if gpu_type in available)
        if not mix:
            raise SimulationError(
                f"no trace weights for cell GPU types {sorted(available)}")
        total = sum(weight for _, weight in mix)
        return tuple((gpu_type, weight / total) for gpu_type, weight in mix)

    # -- audit -------------------------------------------------------------

    def _log(self, text: str) -> None:
        self._engine_log.append((self.env.now, text))

    def audit_lines(self) -> List[str]:
        """Injector records merged with engine/dispatcher events — the
        determinism witness (same contract as ChaosEngine)."""
        entries: List[Tuple[float, int, str, int]] = []
        for seq, fault in enumerate(self.injector.log):
            entries.append((fault.time, 0,
                            f"fault {fault.kind} target={fault.target} "
                            f"duration={fault.duration_s:.3f}", seq))
        for seq, (time, text) in enumerate(self._engine_log):
            entries.append((time, 1, text, seq))
        entries.sort()
        return [f"t={time:10.3f} {text}"
                for time, _src, text, _seq in entries]

    # -- fault binding -----------------------------------------------------

    def _bind(self, step: FederationStep):
        cell = self.cells.get(step.cell)
        if cell is None:
            raise SimulationError(
                f"scenario targets unknown cell {step.cell!r}")
        monitor = self.dispatcher.monitors[cell.name]

        if step.kind == "cell-blackout":
            def inject(event: FaultEvent) -> None:
                cell.begin_blackout()

            def recover(event: FaultEvent) -> None:
                cell.end_blackout()
        else:  # cell-brownout
            factor = step.param or 200.0

            def inject(event: FaultEvent) -> None:
                cell.begin_brownout(latency_factor=factor)

            def recover(event: FaultEvent) -> None:
                cell.end_brownout()

        def healthy() -> bool:
            # Recovered means the *monitor* says so: detection and
            # recovery are both observed through probes, like
            # production.
            return monitor.state == HEALTHY

        return inject, recover, healthy

    def _schedule_step(self, step: FederationStep) -> None:
        inject, recover, healthy = self._bind(step)

        def on_fault(event: FaultEvent) -> None:
            inject(event)
            self._log(f"inject {step.kind} cell={step.cell} "
                      f"duration={step.duration_s:g}")
            self.env.process(self._watch_recovery(step, healthy),
                             name=f"fedchaos-watch:{step.kind}")

        def on_recover(event: FaultEvent) -> None:
            recover(event)
            self._log(f"recover {step.kind} cell={step.cell}")

        self.injector.inject_once(
            step.kind, step.cell, step.at_s, on_fault,
            duration_s=step.duration_s, on_recover=on_recover)

    def _watch_recovery(self, step: FederationStep,
                        healthy: Callable[[], bool]):
        started = self.env.now
        # Let the monitor *notice* the fault before watching for the
        # all-clear (probes take a few intervals to classify).
        degraded_seen = False
        while self.env.now - started < self.RECOVERY_TIMEOUT_S:
            yield self.env.timeout(self.POLL_S, priority=OBSERVER)
            if not degraded_seen:
                degraded_seen = not healthy()
                continue
            if healthy():
                duration = self.env.now - started
                self.recoveries.append(RecoveryRecord(
                    step.kind, step.cell, started, duration))
                self._log(f"recovered {step.kind} cell={step.cell} "
                          f"after {duration:.2f}s")
                return
        self.recoveries.append(RecoveryRecord(
            step.kind, step.cell, started, None, timed_out=True))
        self._log(f"recovery-timeout {step.kind} cell={step.cell}")

    # -- workload ----------------------------------------------------------

    def _churn(self):
        jobs = self.trace.generate()
        for user in sorted({job.user for job in jobs}):
            self.dispatcher.register_tenant(
                user, self.scenario.tenant_quota_gpus)
        now = 0.0
        for job in jobs:
            if job.arrival_s > now:
                yield self.env.timeout(job.arrival_s - now)
                now = job.arrival_s
            self.env.process(self._one_job(job),
                             name=f"fedchaos-job:{job.trace_id}")

    def _one_job(self, job):
        try:
            intent_id = yield self.dispatcher.submit(
                job.to_manifest(), preferred_zone=job.preferred_zone)
        except QuotaExceededError:
            self.submit_failures += 1
            self._log(f"submit-rejected {job.trace_id} "
                      f"user={job.user} (quota)")
            return
        self.submitted.append(intent_id)
        self._log(f"submitted {intent_id} ({job.trace_id} "
                  f"{job.total_gpus}x{job.gpu_type})")

    # -- hypotheses --------------------------------------------------------

    def _hyp_no_lost_intents(self) -> Tuple[bool, str]:
        lost = self.dispatcher.lost_intents()
        if lost:
            return False, f"{len(lost)} intent records lost: {lost[:3]}"
        return True, (f"{len(self.dispatcher.intents())} intent records "
                      f"durable or buffered")

    def _hyp_no_double_execution(self) -> Tuple[bool, str]:
        doubles = self.dispatcher.counters["double_executions"]
        multi = [i.intent_id for i in self.dispatcher.intents()
                 if i.completions > 1]
        ok = doubles == 0 and not multi
        return ok, f"double-executions={doubles} multi-completed={multi[:3]}"

    def _hyp_intent_log_flushed(self) -> Tuple[bool, str]:
        writer = self.dispatcher.intent_log
        ok = writer.pending == 0 and not writer.degraded \
            and writer.write_errors == 0
        return ok, (f"enqueued={writer.total_enqueued} "
                    f"flushed={writer.total_flushed} "
                    f"pending={writer.pending} "
                    f"errors={writer.write_errors}")

    def _hyp_cell_writers_flushed(self) -> Tuple[bool, str]:
        stuck = []
        for name in sorted(self.cells):
            writer = self.cells[name].platform.status_writer
            if writer.pending or writer.degraded:
                stuck.append(f"{name}:{writer.pending}")
        if stuck:
            return False, f"cell writers not drained: {stuck}"
        return True, "every cell status writer drained"

    def _hyp_all_intents_resolved(self) -> Tuple[bool, str]:
        open_intents = [i.intent_id for i in self.dispatcher.intents()
                        if not i.terminal]
        if open_intents:
            return False, (f"{len(open_intents)} intents unresolved: "
                           f"{open_intents[:3]}")
        return True, f"{len(self.dispatcher.intents())} intents terminal"

    def _hyp_cells_healthy(self) -> Tuple[bool, str]:
        unhealthy = [name for name in sorted(self.dispatcher.monitors)
                     if self.dispatcher.monitors[name].state != HEALTHY]
        if unhealthy:
            return False, f"unhealthy cells: {unhealthy}"
        return True, f"all {len(self.cells)} cells HEALTHY"

    def _hyp_no_overallocation(self) -> Tuple[bool, str]:
        over = []
        for name in sorted(self.cells):
            cluster = self.cells[name].platform.cluster
            for node, alloc in sorted(cluster.allocations.items()):
                if alloc.allocated_gpus > alloc.capacity.gpus:
                    over.append(f"{name}/{node}")
        if over:
            return False, f"over-allocated: {over[:3]}"
        return True, "no cell over-allocates GPUs"

    def _hypotheses(self):
        return (
            ("no-lost-intent-records", self._hyp_no_lost_intents),
            ("no-double-execution", self._hyp_no_double_execution),
            ("intent-log-flushed", self._hyp_intent_log_flushed),
            ("cell-writers-flushed", self._hyp_cell_writers_flushed),
            ("all-intents-resolved", self._hyp_all_intents_resolved),
            ("cells-healthy", self._hyp_cells_healthy),
            ("no-gpu-overallocation", self._hyp_no_overallocation),
        )

    def _check_hypotheses(self, phase: str, structural_only: bool = False):
        writers = [self.dispatcher.intent_log] + \
            [self.cells[name].platform.status_writer
             for name in sorted(self.cells)]
        for _ in range(self.DRAIN_GRACE_STEPS):
            if all(w.pending == 0 and not w.degraded for w in writers):
                break
            yield self.env.timeout(0.5, priority=OBSERVER)
        for name, check in self._hypotheses():
            if structural_only and name in ("all-intents-resolved",):
                continue  # meaningless before the workload finishes
            ok, detail = check()
            self.hypotheses.append(HypothesisResult(
                phase, name, ok, detail, self.env.now))
            self._log(f"hypothesis {name} [{phase}]: "
                      f"{'PASS' if ok else 'FAIL'} ({detail})")

    # -- run ---------------------------------------------------------------

    def run(self) -> ChaosReport:
        if self._ran:
            raise SimulationError(
                "FederationChaosEngine instances are single-use; "
                "build a fresh one per run")
        self._ran = True
        first_fault = min((step.at_s for step in self.scenario.steps),
                          default=0.0)

        def baseline():
            yield self.env.timeout(max(0.0, first_fault - 1.0))
            yield from self._check_hypotheses("steady-state:before",
                                              structural_only=True)

        self.env.process(baseline(), name="fedchaos-baseline")
        self.env.process(self._churn(), name="fedchaos-churn")
        for step in self.scenario.steps:
            self._schedule_step(step)
        self.env.run(until=self.scenario.horizon_s
                     + self.scenario.settle_s)
        self.env.run_until_complete(
            self.env.process(
                self._check_hypotheses("steady-state:after"),
                name="fedchaos-final"),
            limit=self.env.now + 120.0)
        return self._report()

    def _report(self) -> ChaosReport:
        dispatcher = self.dispatcher
        counters: Dict[str, float] = {
            "cells": len(self.cells),
            "total-gpus": self.scenario.total_gpus,
            "intents-submitted": len(self.submitted),
            "submit-rejections": self.submit_failures,
            "bus-messages": self.bus.stats.messages,
        }
        for key in sorted(dispatcher.counters):
            counters[f"fed-{key.replace('_', '-')}"] = \
                dispatcher.counters[key]
        for name in sorted(self.cells):
            platform = self.cells[name].platform
            counters[f"{name}-jobs"] = len(platform.jobs)
            counters[f"{name}-completed"] = sum(
                1 for job in platform.jobs.values()
                if job.status.current == st.COMPLETED)
        counters["faults-injected"] = len(self.injector.log)
        race_lines: List[str] = []
        if self.race_detector is not None:
            race_lines = self.race_detector.render()
            counters["schedule-conflicts"] = len(race_lines)
        # The end-state witness covers both layers: federated intents
        # and every cell-local job.
        job_states = {intent.intent_id: intent.state
                      for intent in dispatcher.intents()}
        for name in sorted(self.cells):
            for job_id, job in sorted(
                    self.cells[name].platform.jobs.items()):
                job_states[f"{name}/{job_id}"] = job.status.current
        return ChaosReport(
            scenario=self.scenario.name,
            seed=self.seed,
            hypotheses=list(self.hypotheses),
            recoveries=list(self.recoveries),
            audit_lines=self.audit_lines(),
            counters=counters,
            tiebreak_seed=self.tiebreak_seed,
            job_states=job_states,
            race_lines=race_lines,
        )


# -- named scenarios --------------------------------------------------------

FEDERATION_CELL_OUTAGE = FederationScenario(
    name="federation-cell-outage",
    description="Two cells; cell-a suffers a whole-cell blackout under "
                "churn.  Queued and running jobs migrate to cell-b, the "
                "recovered cell is fenced, and no intent is lost or run "
                "twice.  (CI smoke scenario.)",
    cells=(
        CellDef("cell-a", "zone-a", gpu_nodes=4, gpus_per_node=4,
                gpu_type="K80"),
        CellDef("cell-b", "zone-b", gpu_nodes=4, gpus_per_node=4,
                gpu_type="K80"),
    ),
    steps=(
        FederationStep(at_s=120.0, kind="cell-blackout", cell="cell-a",
                       duration_s=150.0),
    ),
    horizon_s=1600.0,
    settle_s=600.0,
    jobs=8,
    arrival_window_s=180.0,
    min_iterations=60,
    max_iterations=140,
)

FEDERATION_BROWNOUT_MIGRATION = FederationScenario(
    name="federation-brownout-migration",
    description="Three cells; cell-a browns out (200x API/LCM latency) "
                "without dying.  The health monitor must classify the "
                "brownout from probe latency alone and migrate work to "
                "the healthy cells.",
    cells=(
        CellDef("cell-a", "zone-a", gpu_nodes=4, gpus_per_node=4,
                gpu_type="K80"),
        CellDef("cell-b", "zone-a", gpu_nodes=4, gpus_per_node=4,
                gpu_type="K80"),
        CellDef("cell-c", "zone-b", gpu_nodes=4, gpus_per_node=4,
                gpu_type="K80"),
    ),
    steps=(
        FederationStep(at_s=100.0, kind="cell-brownout", cell="cell-a",
                       duration_s=200.0, param=200.0),
    ),
    horizon_s=1600.0,
    settle_s=600.0,
    jobs=9,
    arrival_window_s=180.0,
    min_iterations=60,
    max_iterations=140,
)

FEDERATION_TRACE_3K = FederationScenario(
    name="federation-trace-3k",
    description="The acceptance scenario: 4 cells / 3072 GPUs across "
                "two zones replaying a paper-shaped trace, with one "
                "whole-cell blackout and one brownout.  Zero lost "
                "intents, zero double executions, byte-identical audit "
                "across runs.",
    cells=(
        CellDef("cell-a", "zone-a", gpu_nodes=24, gpus_per_node=32,
                gpu_type="K80"),
        CellDef("cell-b", "zone-b", gpu_nodes=24, gpus_per_node=32,
                gpu_type="K80"),
        CellDef("cell-c", "zone-a", gpu_nodes=24, gpus_per_node=32,
                gpu_type="V100"),
        CellDef("cell-d", "zone-b", gpu_nodes=24, gpus_per_node=32,
                gpu_type="V100"),
    ),
    steps=(
        FederationStep(at_s=180.0, kind="cell-blackout", cell="cell-a",
                       duration_s=240.0),
        FederationStep(at_s=300.0, kind="cell-brownout", cell="cell-c",
                       duration_s=240.0, param=200.0),
    ),
    horizon_s=2200.0,
    settle_s=800.0,
    jobs=48,
    arrival_window_s=420.0,
    min_iterations=80,
    max_iterations=240,
    tenant_quota_gpus=1024,
)

FEDERATION_SCENARIOS: Dict[str, FederationScenario] = {
    scenario.name: scenario
    for scenario in (
        FEDERATION_CELL_OUTAGE,
        FEDERATION_BROWNOUT_MIGRATION,
        FEDERATION_TRACE_3K,
    )
}


def get_federation_scenario(name: str) -> FederationScenario:
    try:
        return FEDERATION_SCENARIOS[name]
    except KeyError:
        known = ", ".join(FEDERATION_SCENARIOS)
        raise KeyError(f"unknown federation scenario {name!r}; "
                       f"known: {known}") from None


def run_federation_scenario(scenario: FederationScenario, seed: int = 0,
                            tiebreak_seed: int = 0,
                            detect_races: bool = False) -> ChaosReport:
    """Build a fresh engine and run ``scenario`` once."""
    return FederationChaosEngine(scenario, seed=seed,
                                 tiebreak_seed=tiebreak_seed,
                                 detect_races=detect_races).run()
