"""One registry for every runnable scenario, however it is defined.

Scenarios come from two places: the hand-written dataclasses
(:mod:`repro.chaos.scenarios`, :mod:`repro.chaos.federation`) and the
declarative manifests under the repo's ``scenarios/`` directory
(:mod:`repro.manifest`).  The chaos CLI's ``--list`` and scenario
resolution both go through this module, so there is a single source of
truth: a ported scenario shows up once, tagged with *both* origins, and
a manifest-only scenario is runnable by name with no Python module.

Resolution compiles a manifest lazily (a broken manifest lists fine and
only fails, with file:line findings, when someone tries to run it).
Builtins win resolution when both origins define a name — the ported
manifests are asserted equal to their builtins by the parity tests, so
the choice is observable only through compile overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.chaos.federation import FEDERATION_SCENARIOS
from repro.chaos.scenarios import SCENARIOS


@dataclass
class RegisteredScenario:
    """One listable/runnable scenario and where it came from."""

    name: str
    kind: str                    # "chaos" | "federation"
    description: str
    builtin: object = None       # Scenario | FederationScenario | None
    manifest_path: Optional[Path] = None

    @property
    def origins(self) -> str:
        tags = []
        if self.builtin is not None:
            tags.append("builtin")
        if self.manifest_path is not None:
            tags.append(f"manifest:{self.manifest_path.as_posix()}")
        return "+".join(tags)

    def resolve(self):
        """The scenario object and, for manifests, the compiled wrapper.

        Returns ``(kind, scenario, compiled)`` where ``compiled`` is a
        :class:`~repro.manifest.compiler.CompiledScenario` when the
        scenario came from a manifest (needed for chaos node groups),
        else ``None``.
        """
        if self.builtin is not None:
            return self.kind, self.builtin, None
        from repro.manifest import compile_manifest_file

        compiled = compile_manifest_file(self.manifest_path)
        return compiled.kind, compiled.scenario, compiled


def scenario_registry(scenario_dir: Optional[Path] = None,
                      ) -> Dict[str, RegisteredScenario]:
    """Every known scenario, builtins merged with discovered manifests.

    Listed in documentation order: chaos builtins, federation builtins,
    then manifest-only scenarios (sorted by name).
    """
    registry: Dict[str, RegisteredScenario] = {}
    for scenario in SCENARIOS.values():
        registry[scenario.name] = RegisteredScenario(
            name=scenario.name, kind="chaos",
            description=scenario.description, builtin=scenario)
    for scenario in FEDERATION_SCENARIOS.values():
        registry[scenario.name] = RegisteredScenario(
            name=scenario.name, kind="federation",
            description=scenario.description, builtin=scenario)

    from repro.manifest import discover_manifests

    import yaml

    for name, path in sorted(discover_manifests(scenario_dir).items()):
        entry = registry.get(name)
        if entry is not None:
            entry.manifest_path = path
            continue
        kind, description = "chaos", f"(manifest {path.as_posix()})"
        try:
            document = yaml.safe_load(path.read_text(encoding="utf-8"))
        except (OSError, yaml.YAMLError):
            document = None
        if isinstance(document, dict):
            if isinstance(document.get("kind"), str):
                kind = document["kind"]
            if isinstance(document.get("description"), str):
                description = document["description"]
        registry[name] = RegisteredScenario(
            name=name, kind=kind, description=description,
            manifest_path=path)
    return registry


def get_registered_scenario(name: str,
                            scenario_dir: Optional[Path] = None,
                            ) -> RegisteredScenario:
    registry = scenario_registry(scenario_dir)
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(registry)
        raise KeyError(f"unknown scenario {name!r}; known: {known}") \
            from None
