"""The named chaos scenarios.

Each scenario is pure data (:class:`~repro.chaos.engine.Scenario`); the
engine binds the fault kinds to the substrate hooks at run time.  Node
targets follow the cluster naming convention ``node-<gpu_type>-<index>``
for the four K80 nodes the engine provisions.
"""

from __future__ import annotations

from typing import Dict

from repro.chaos.engine import InjectionStep, Scenario

ETCD_LEADER_KILL = Scenario(
    name="etcd-leader-kill",
    description="Kill the Raft leader twice under job churn; the cluster "
                "must re-elect and the coordination plane must recover.",
    steps=(
        InjectionStep(at_s=60.0, kind="etcd-leader-kill", duration_s=30.0),
        InjectionStep(at_s=180.0, kind="etcd-leader-kill", duration_s=30.0),
        InjectionStep(at_s=300.0, kind="etcd-partition", duration_s=20.0),
    ),
    horizon_s=900.0,
)

MONGO_FAILOVER_UNDER_CHURN = Scenario(
    name="mongo-failover-under-churn",
    description="Crash the MongoDB primary twice while jobs are being "
                "submitted; the status writer must buffer through each "
                "election window and flush with no lost records.",
    steps=(
        InjectionStep(at_s=50.0, kind="mongo-primary-kill",
                      duration_s=40.0),
        InjectionStep(at_s=150.0, kind="mongo-primary-kill",
                      duration_s=40.0),
    ),
    horizon_s=900.0,
)

OBJECTSTORE_BROWNOUT = Scenario(
    name="objectstore-brownout",
    description="Throttle object storage to 5% bandwidth, then take it "
                "down entirely; mounts must retry through the brownout "
                "and learners must survive the outage.",
    steps=(
        InjectionStep(at_s=60.0, kind="oss-brownout", duration_s=90.0,
                      param=0.05),
        InjectionStep(at_s=200.0, kind="oss-outage", duration_s=30.0),
    ),
    horizon_s=900.0,
)

ROLLING_NODE_CRASHES = Scenario(
    name="rolling-node-crashes",
    description="Crash three of the four GPU nodes in a staggered "
                "rolling wave; gang rescheduling must keep GPU "
                "accounting consistent.",
    steps=(
        InjectionStep(at_s=90.0, kind="node-crash", target="node-K80-0",
                      duration_s=120.0),
        InjectionStep(at_s=210.0, kind="node-crash", target="node-K80-1",
                      duration_s=120.0),
        InjectionStep(at_s=330.0, kind="node-crash", target="node-K80-2",
                      duration_s=120.0),
    ),
    horizon_s=1100.0,
    settle_s=300.0,
)

EVERYTHING_AT_ONCE = Scenario(
    name="everything-at-once",
    description="Every fault kind in one run: etcd leader kill and "
                "partition, mongo failovers, object-store brownout and "
                "outage, rolling node crashes, API and LCM replica "
                "wipes.  The combined stress test behind the "
                "acceptance criteria.",
    steps=(
        InjectionStep(at_s=60.0, kind="etcd-leader-kill", duration_s=30.0),
        InjectionStep(at_s=120.0, kind="mongo-primary-kill",
                      duration_s=45.0),
        InjectionStep(at_s=180.0, kind="oss-brownout", duration_s=90.0,
                      param=0.05),
        InjectionStep(at_s=240.0, kind="node-crash", target="node-K80-0",
                      duration_s=120.0),
        InjectionStep(at_s=300.0, kind="node-crash", target="node-K80-1",
                      duration_s=120.0),
        InjectionStep(at_s=330.0, kind="api-crash"),
        InjectionStep(at_s=360.0, kind="lcm-crash"),
        InjectionStep(at_s=420.0, kind="oss-outage", duration_s=30.0),
        InjectionStep(at_s=480.0, kind="etcd-partition", duration_s=20.0),
        InjectionStep(at_s=540.0, kind="mongo-primary-kill",
                      duration_s=45.0),
    ),
    horizon_s=1100.0,
    settle_s=300.0,
    jobs=8,
)

#: name -> scenario, in documentation order.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        ETCD_LEADER_KILL,
        MONGO_FAILOVER_UNDER_CHURN,
        OBJECTSTORE_BROWNOUT,
        ROLLING_NODE_CRASHES,
        EVERYTHING_AT_ONCE,
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise KeyError(f"unknown scenario {name!r}; known: {known}") \
            from None
