"""Command-line interface (the CLI box of the paper's Figure 1).

Drives a self-contained FfDL deployment from job manifests expressed as
JSON, mirroring the real FfDL CLI's verbs::

    python -m repro.cli demo --manifest job.json
    python -m repro.cli show-tshirt-sizes
    python -m repro.cli validate --manifest job.json

Because the platform is simulated, ``demo`` stands up a small cluster,
submits the manifest, fast-forwards simulated time to completion and
prints the status timeline and logs — the full "tens of minutes" user
experience of the paper compressed into one command.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Sequence

from repro.core import FfDLPlatform, JobManifest, PlatformConfig
from repro.core.tshirt import TSHIRT_SIZES
from repro.errors import ReproError
from repro.sim import Environment, RngRegistry

#: Manifest keys accepted from JSON (everything else is rejected loudly).
_MANIFEST_FIELDS = {
    "name", "user", "framework", "model", "command", "data_bucket",
    "result_bucket", "learners", "gpus_per_learner", "gpu_type",
    "cpus_per_learner", "memory_gb_per_learner", "iterations",
    "batch_size", "dataset_objects", "dataset_object_bytes",
    "checkpoint_interval_iterations", "checkpoint_bytes",
}


def load_manifest(path: str) -> JobManifest:
    with open(path) as handle:
        raw: Dict[str, Any] = json.load(handle)
    unknown = set(raw) - _MANIFEST_FIELDS
    if unknown:
        raise ReproError(
            f"unknown manifest fields: {', '.join(sorted(unknown))}")
    return JobManifest(**raw)


def manifest_from_args(args: argparse.Namespace) -> JobManifest:
    if args.manifest:
        return load_manifest(args.manifest)
    return JobManifest(name=args.name, user=args.user,
                       framework=args.framework, model=args.model,
                       learners=args.learners,
                       gpus_per_learner=args.gpus,
                       gpu_type=args.gpu_type,
                       iterations=args.iterations,
                       checkpoint_interval_iterations=args.checkpoint)


def cmd_validate(args: argparse.Namespace) -> int:
    if args.scenario_manifest:
        return _validate_scenario(args)
    manifest = manifest_from_args(args)
    manifest.validate()
    print(f"manifest OK: {manifest.learners} learner(s) x "
          f"{manifest.gpus_per_learner} {manifest.gpu_type} GPU(s), "
          f"{manifest.effective_cpus():.0f} CPUs / "
          f"{manifest.effective_memory_gb():.0f} GB per learner")
    return 0


def _validate_scenario(args: argparse.Namespace) -> int:
    """``repro validate <manifest.yaml> [--run]``: static MAN pass,
    then (optionally) compile, run, and check declared hypotheses."""
    from pathlib import Path

    from repro.manifest import compile_manifest
    from repro.staticcheck.manifest import analyze_manifest

    path = Path(args.scenario_manifest)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        return 2
    display = path.as_posix()
    findings, suppressed, _model = analyze_manifest(source, display)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{display}: {len(findings)} static finding(s)")
        return 1
    note = f" ({len(suppressed)} suppressed)" if suppressed else ""
    print(f"{display}: static pass clean{note}")
    if not args.run:
        return 0

    compiled = compile_manifest(source, display)
    seed = args.seed if args.seed is not None \
        else (compiled.seed_override or 0)
    print(f"running {compiled.name} [{compiled.kind}] seed={seed} "
          f"tiebreak={args.tiebreak_seed} ...")
    report = compiled.run(seed=seed, tiebreak_seed=args.tiebreak_seed)
    results = compiled.verify(report)
    for result in results:
        print(f"  check {result.name}: "
              f"{'PASS' if result.ok else 'FAIL'} ({result.detail})")
    ok = report.passed and all(result.ok for result in results)
    print(f"{display}: run "
          f"{'PASS' if ok else 'FAIL'} "
          f"(engine hypotheses {'pass' if report.passed else 'FAIL'}, "
          f"{len(results)} declared check(s))")
    return 0 if ok else 1


def cmd_show_tshirt_sizes(_args: argparse.Namespace) -> int:
    print(f"{'GPU config':<12} {'CPUs':>5} {'memory (GB)':>12}")
    for (gpu_type, gpus), size in sorted(TSHIRT_SIZES.items()):
        print(f"{gpus}x{gpu_type:<10} {size.cpus:>5} "
              f"{size.memory_gb:>12}")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    manifest = manifest_from_args(args)
    manifest.validate()
    env = Environment()
    platform = FfDLPlatform(env, RngRegistry(args.seed), PlatformConfig())
    platform.add_gpu_nodes(args.nodes, gpus_per_node=args.gpus_per_node,
                           gpu_type=manifest.gpu_type)
    platform.admission.register(manifest.user, gpu_quota=args.quota)
    job_id = env.run_until_complete(platform.submit_job(manifest))
    print(f"submitted {job_id}")
    final = env.run_until_complete(platform.wait_for_terminal(job_id),
                                   limit=args.sim_limit)
    env.run(until=env.now + 30)
    job = platform.job(job_id)
    print(f"final status: {final} (simulated "
          f"{job.finished_at - job.submitted_at:.0f}s)")
    print("timeline:")
    for status, when in job.status.timeline():
        print(f"  {when:10.1f}s  {status}")
    if args.logs:
        print("logs:")
        for entry in platform.stream_logs(job_id):
            print(f"  [{entry.time:9.1f}s] {entry.source}: {entry.line}")
    return 0 if final == "COMPLETED" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="FfDL reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_manifest_args(p):
        p.add_argument("--manifest", help="path to a JSON job manifest")
        p.add_argument("--name", default="cli-job")
        p.add_argument("--user", default="cli-user")
        p.add_argument("--framework", default="tensorflow")
        p.add_argument("--model", default="resnet50")
        p.add_argument("--learners", type=int, default=1)
        p.add_argument("--gpus", type=int, default=1)
        p.add_argument("--gpu-type", dest="gpu_type", default="K80")
        p.add_argument("--iterations", type=int, default=1000)
        p.add_argument("--checkpoint", type=int, default=0,
                       help="checkpoint interval in iterations")

    validate = sub.add_parser(
        "validate",
        help="validate a job manifest, or statically lint (and "
             "optionally run) a YAML scenario manifest")
    validate.add_argument(
        "scenario_manifest", nargs="?", default=None,
        help="path to a YAML scenario manifest; when given, runs the "
             "MAN static pass instead of JSON job-manifest validation")
    validate.add_argument("--run", action="store_true",
                          help="after a clean static pass, compile and "
                               "run the scenario and check its "
                               "declared hypotheses")
    validate.add_argument("--seed", type=int, default=None,
                          help="run seed (default: the manifest's "
                               "workload.seed, else 0)")
    validate.add_argument("--tiebreak-seed", dest="tiebreak_seed",
                          type=int, default=0,
                          help="heap tie-break permutation seed")
    add_manifest_args(validate)
    validate.set_defaults(fn=cmd_validate)

    sizes = sub.add_parser("show-tshirt-sizes",
                           help="print the Table 5 learner sizes")
    sizes.set_defaults(fn=cmd_show_tshirt_sizes)

    demo = sub.add_parser("demo", help="run a job on a simulated cluster")
    add_manifest_args(demo)
    demo.add_argument("--nodes", type=int, default=4)
    demo.add_argument("--gpus-per-node", dest="gpus_per_node", type=int,
                      default=4)
    demo.add_argument("--quota", type=int, default=64)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--logs", action="store_true",
                      help="print collected training logs")
    demo.add_argument("--sim-limit", dest="sim_limit", type=float,
                      default=1e8)
    demo.set_defaults(fn=cmd_demo)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, FileNotFoundError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
