"""FfDL core: the paper's primary contribution.

Public surface: build a :class:`FfDLPlatform`, describe jobs with
:class:`JobManifest`, submit and track them through the DL-specific status
pipeline (QUEUED -> DEPLOYING -> DOWNLOADING -> PROCESSING -> STORING ->
COMPLETED, plus FAILED / HALTED / RESUMED).
"""

from repro.core.admission import (
    AdmissionController,
    AdmissionDecision,
    FREE_TIER,
    PAID_TIER,
    Tenant,
)
from repro.core.job import TrainingJob, new_job_id
from repro.core.learner import LearnerState
from repro.core.logging_service import LogEntry, LogIndex
from repro.core.manifest import JobManifest
from repro.core.metrics import TrainingMetricsService
from repro.core.platform import FfDLPlatform, PlatformConfig
from repro.core.services import Microservice
from repro.core.statuses import (
    ALL_STATUSES,
    COMPLETED,
    DEPLOYING,
    DOWNLOADING,
    FAILED,
    HALTED,
    PROCESSING,
    QUEUED,
    RESUMED,
    STORING,
    StatusHistory,
    TERMINAL_STATUSES,
)
from repro.core.tshirt import TSHIRT_SIZES, TShirtSize, derive_cpus, recommend

__all__ = [
    "ALL_STATUSES",
    "AdmissionController",
    "AdmissionDecision",
    "COMPLETED",
    "DEPLOYING",
    "DOWNLOADING",
    "FAILED",
    "FREE_TIER",
    "FfDLPlatform",
    "HALTED",
    "JobManifest",
    "LearnerState",
    "LogEntry",
    "LogIndex",
    "Microservice",
    "PAID_TIER",
    "PROCESSING",
    "PlatformConfig",
    "QUEUED",
    "RESUMED",
    "STORING",
    "StatusHistory",
    "TERMINAL_STATUSES",
    "TSHIRT_SIZES",
    "TShirtSize",
    "Tenant",
    "TrainingJob",
    "TrainingMetricsService",
    "derive_cpus",
    "new_job_id",
    "recommend",
]
