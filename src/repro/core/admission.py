"""Admission control and preemption (Section 3.6).

"Given that there is no overcommitment, admission control (AC) becomes
necessary; there is a component above FfDL that performs AC — based on
quotas for internal users, and based on pricing/agreements for external
users. ... the AC component also pre-empts 2 job types as necessary: (1)
free users during heavy load, and (2) user A exceeded their quota; their
job was scheduled because user B wasn't using their quotas; user B
subsequently wants to use his quota."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.job import TrainingJob
from repro.errors import QuotaExceededError

FREE_TIER = "free"
PAID_TIER = "paid"


@dataclass
class Tenant:
    """One user/org with a GPU quota."""

    user: str
    gpu_quota: int
    tier: str = PAID_TIER


@dataclass
class AdmissionDecision:
    admitted: bool
    over_quota: bool = False
    preempted_jobs: List[str] = field(default_factory=list)
    reason: str = ""


class AdmissionController:
    """Quota accounting plus the two preemption policies."""

    def __init__(self, allow_opportunistic: bool = True):
        self._tenants: Dict[str, Tenant] = {}
        #: job_id -> (user, gpus, over_quota)
        self._active: Dict[str, tuple] = {}
        self.allow_opportunistic = allow_opportunistic
        self.rejections = 0
        self.preemptions = 0

    # -- tenancy --------------------------------------------------------------

    def register(self, user: str, gpu_quota: int,
                 tier: str = PAID_TIER) -> Tenant:
        tenant = Tenant(user, gpu_quota, tier)
        self._tenants[user] = tenant
        return tenant

    def tenant(self, user: str) -> Tenant:
        if user not in self._tenants:
            raise QuotaExceededError(f"unknown tenant {user!r}")
        return self._tenants[user]

    def usage(self, user: str) -> int:
        return sum(gpus for _user, gpus, _over in self._active.values()
                   if _user == user)

    # -- admission -----------------------------------------------------------------

    def admit(self, job: TrainingJob) -> AdmissionDecision:
        """Decide whether a job may run.  Jobs over quota are admitted
        opportunistically (flagged) when allowed — they are the first
        preemption victims."""
        user = job.manifest.user
        tenant = self.tenant(user)
        demand = job.manifest.total_gpus
        within = self.usage(user) + demand <= tenant.gpu_quota
        if within:
            self._active[job.job_id] = (user, demand, False)
            return AdmissionDecision(admitted=True)
        if self.allow_opportunistic:
            self._active[job.job_id] = (user, demand, True)
            return AdmissionDecision(admitted=True, over_quota=True,
                                     reason="over quota (opportunistic)")
        self.rejections += 1
        return AdmissionDecision(
            admitted=False, over_quota=True,
            reason=f"user {user} quota {tenant.gpu_quota} GPUs exceeded")

    def release(self, job_id: str) -> None:
        self._active.pop(job_id, None)

    # -- preemption -------------------------------------------------------------------

    def preemption_victims_for_quota(self, claiming_user: str,
                                     gpus_needed: int) -> List[str]:
        """Job ids to preempt so ``claiming_user`` can use their quota:
        over-quota (opportunistic) jobs first, largest first."""
        victims = []
        reclaimed = 0
        over_quota = sorted(
            ((job_id, gpus) for job_id, (user, gpus, over)
             in self._active.items()
             if over and user != claiming_user),
            key=lambda item: -item[1])
        for job_id, gpus in over_quota:
            if reclaimed >= gpus_needed:
                break
            victims.append(job_id)
            reclaimed += gpus
        return victims if reclaimed >= gpus_needed else []

    def preemption_victims_for_load(self) -> List[str]:
        """Free-tier jobs to preempt under heavy load."""
        return [job_id for job_id, (user, _g, _over)
                in self._active.items()
                if self._tenants.get(user) is not None
                and self._tenants[user].tier == FREE_TIER]

    def note_preempted(self, job_id: str) -> None:
        self.preemptions += 1
        self.release(job_id)
