"""The Guardian: per-job delegate for atomic deployment and monitoring.

"The LCM launches a delegate for atomic deployment and further monitoring
of each DL job. ... The Guardian is a FfDL component created on the fly as
a K8S Job for every DL job. ... If the Guardian crashes in the middle of a
job deployment, K8S is guaranteed to restart it.  The restarted Guardian
will roll back the previous partially deployed DL job and start a fresh
deployment process" (Section 3.3).

The Guardian's multi-step deployment:

1. provision the shared NFS volume and bind it as a PVC,
2. apply the job's network-isolation policy,
3. create the helper Deployment (controller + load-data + store-results +
   log-collector containers),
4. create the learner StatefulSet (a scheduling gang),
5. record the "deployed" milestone in etcd (so a restarted Guardian knows
   to monitor instead of rolling back), then monitor learner statuses from
   etcd, aggregating them into the job status in MongoDB.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core import statuses as st
from repro.core.helper import (
    job_prefix,
    learner_exit_key,
    learner_status_key,
)
from repro.core.job import TrainingJob
from repro.errors import ProvisioningError
from repro.kube.objects import (
    NetworkPolicy,
    ObjectMeta,
    PersistentVolumeClaim,
)
from repro.sim.core import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.platform import FfDLPlatform

#: Ordering of learner statuses for aggregation: the job is only as far
#: along as its slowest learner.
_STATUS_RANK = {st.DOWNLOADING: 0, st.PROCESSING: 1, st.STORING: 2,
                "COMPLETED": 3}

DEPLOYED_MILESTONE_VALUE = "deployed"


def deployed_key(job_id: str) -> str:
    return f"/jobs/{job_id}/deployed"


def make_guardian_workload(platform: "FfDLPlatform", job: TrainingJob):
    """Build the container workload for the job's Guardian."""

    def workload(container):
        env = platform.env
        etcd = platform.etcd_client
        job.guardian_attempts += 1
        deployed = yield etcd.get_value(deployed_key(job.job_id))
        if deployed != DEPLOYED_MILESTONE_VALUE:
            # Fresh deployment (possibly after rolling back a partial one).
            yield from _rollback(platform, job)
            try:
                yield from _deploy(platform, job, container)
            except ProvisioningError as err:
                container.log(f"deploy failed: {err}")
                return 1  # K8S Job restarts us (bounded by backoff limit)
        code = yield from _monitor(platform, job, container)
        return code

    return workload


# -- deployment -----------------------------------------------------------------


def _deploy(platform: "FfDLPlatform", job: TrainingJob, container):
    env = platform.env
    platform.record_status(job, st.DEPLOYING)

    # Step 1: declare the PVC, provision the shared NFS volume, and bind.
    # Under load provisioning is the slow, failure-prone step (Section 4);
    # a failure here aborts the attempt before any pods exist.
    platform.cluster.api.create_pvc(PersistentVolumeClaim(
        meta=ObjectMeta(name=job.pvc_name,
                        labels={"job": job.job_id}),
        bound=False, volume=None))
    volume = yield platform.provision_volume(job)
    job.volume = volume
    pvc = platform.cluster.api.get_pvc(job.pvc_name)
    pvc.volume = volume
    pvc.bound = True
    if platform.crash_guardian_after_step == 1:
        raise RuntimeError("injected guardian crash after step 1")

    # Step 2: network isolation policy for the job's pods.
    platform.cluster.api.create_network_policy(NetworkPolicy(
        meta=ObjectMeta(name=job.netpol_name, labels={"job": job.job_id}),
        pod_selector={"job": job.job_id},
        allowed_peer_labels={"job": job.job_id}))
    if platform.crash_guardian_after_step == 2:
        raise RuntimeError("injected guardian crash after step 2")

    # Step 3: helper deployment.
    platform.create_helper(job)
    if platform.crash_guardian_after_step == 3:
        raise RuntimeError("injected guardian crash after step 3")

    # Step 4: learner StatefulSet (the scheduling gang).
    platform.create_learners(job)
    platform.cluster.scheduler.kick()
    if platform.crash_guardian_after_step == 4:
        raise RuntimeError("injected guardian crash after step 4")

    # Step 5: durable milestone — a restarted Guardian must monitor, not
    # roll back a healthy job.
    yield platform.etcd_client.put(deployed_key(job.job_id),
                                   DEPLOYED_MILESTONE_VALUE)
    job.deploy_completed_at = env.now
    if platform.crash_guardian_after_step == 5:
        # The deploy-but-before-monitoring window: the milestone is
        # durable, so the restarted Guardian must monitor, not redeploy.
        raise RuntimeError("injected guardian crash after step 5")
    container.log("deployment complete")


def _rollback(platform: "FfDLPlatform", job: TrainingJob):
    """Delete any partially created objects of a previous attempt."""
    api = platform.cluster.api
    for set_name in (job.statefulset_name, job.ps_set_name):
        if api.exists("statefulsets", set_name):
            api.delete_statefulset(set_name)
    if api.exists("deployments", job.helper_name):
        api.delete_deployment(job.helper_name)
    if api.exists("networkpolicies", job.netpol_name):
        api.delete_network_policy(job.netpol_name)
    if api.exists("pvcs", job.pvc_name):
        pvc = api.get_pvc(job.pvc_name)
        if pvc.volume is not None:
            pvc.volume.release()
        api.delete_pvc(job.pvc_name)
    job.volume = None
    yield platform.env.timeout(0.2)  # API round-trips


# -- monitoring ---------------------------------------------------------------------


def _aggregate(platform: "FfDLPlatform", job: TrainingJob) -> Optional[str]:
    """Compute the job-level status from per-learner etcd state."""
    etcd = platform.etcd_store()
    exits = []
    statuses = []
    for index in range(job.manifest.learners):
        exit_kv = etcd.get(learner_exit_key(job.job_id, index))
        if exit_kv is not None:
            exits.append(exit_kv.value)
        status_kv = etcd.get(learner_status_key(job.job_id, index))
        if status_kv is not None:
            statuses.append(status_kv.value)
    if any(code == "1" for code in exits):
        return st.FAILED
    if len(exits) == job.manifest.learners:
        if all(code == "0" for code in exits):
            return st.COMPLETED
        if all(code in ("0", "halted") for code in exits):
            return st.HALTED
    if not statuses:
        return None
    known = [s for s in statuses if s in _STATUS_RANK]
    if len(known) < job.manifest.learners:
        return st.DOWNLOADING if known else None
    slowest = min(known, key=lambda s: _STATUS_RANK[s])
    if slowest == "COMPLETED":
        return None  # waiting for exit files
    return slowest


def _monitor(platform: "FfDLPlatform", job: TrainingJob, container):
    env = platform.env
    # The with-block closes the watcher on any exit (terminal status,
    # interrupt, crash), deregistering it from the store's fanout index.
    with platform.etcd_store().watch_prefix(job_prefix(job.job_id)) \
            as watcher:
        while True:
            status = _aggregate(platform, job)
            if status in (st.COMPLETED, st.FAILED, st.HALTED):
                # record_status stamps finished_at at the moment the
                # terminal status is recorded; garbage collection that
                # follows must not shift the user-visible timestamp.
                platform.record_status(job, status)
                yield from _garbage_collect(platform, job,
                                            keep_volume=False)
                if job.finished_at is None:
                    job.finished_at = env.now
                return 0
            if status is not None:
                platform.record_status(job, status)
            yield watcher.get()


def _garbage_collect(platform: "FfDLPlatform", job: TrainingJob,
                     keep_volume: bool):
    api = platform.cluster.api
    for set_name in (job.statefulset_name, job.ps_set_name):
        if api.exists("statefulsets", set_name):
            api.delete_statefulset(set_name)
    if api.exists("deployments", job.helper_name):
        api.delete_deployment(job.helper_name)
    if api.exists("networkpolicies", job.netpol_name):
        api.delete_network_policy(job.netpol_name)
    if api.exists("pvcs", job.pvc_name) and not keep_volume:
        pvc = api.get_pvc(job.pvc_name)
        if pvc.volume is not None:
            pvc.volume.release()
        api.delete_pvc(job.pvc_name)
    # Let the pod deletions complete their API round-trip before clearing
    # the job's etcd state: a still-dying controller holds lease-backed
    # status keys, and a put it issued before the kill must land before —
    # never concurrently with — the prefix delete, or cleanup races
    # resurrection.
    yield platform.env.timeout(0.2)
    yield platform.etcd_client.delete_prefix(job_prefix(job.job_id))
