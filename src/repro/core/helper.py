"""The helper pod: controller, load-data, store-results, log-collector.

"For each DL job, the Guardian also creates a separate helper K8S pod ...
which contains a number of 'helper' containers: load-data and store-results
to load and store data, log-collector to process logs, and controller to
orchestrate the job.  The helper pod remains isolated from the learner
pods, but both share a common NFS filesystem" (Section 3.8).

The controller reads learner status/exit files from NFS and records
per-learner status in etcd (under a lease, so stale state self-erases if
the whole job vanishes); the Guardian aggregates from etcd.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.manifest import JobManifest
from repro.etcd.client import EtcdClient
from repro.nfs.volume import NFSVolume
from repro.sim.core import Environment, Interrupt

#: etcd layout for one job.
def job_prefix(job_id: str) -> str:
    return f"/jobs/{job_id}/"


def learner_status_key(job_id: str, index: int) -> str:
    return f"/jobs/{job_id}/learners/{index}/status"


def learner_exit_key(job_id: str, index: int) -> str:
    return f"/jobs/{job_id}/learners/{index}/exit"


def job_status_key(job_id: str) -> str:
    return f"/jobs/{job_id}/status"


def halt_key(job_id: str) -> str:
    return f"/jobs/{job_id}/halt"


#: The controller's poll interval over NFS (its reaction latency).
CONTROLLER_POLL_S = 0.5
#: Lease TTL on controller-written keys; refreshed while the controller
#: lives, so keys vanish soon after the whole job does.
CONTROLLER_LEASE_TTL_S = 60.0


@dataclass
class ControllerState:
    """Observable state of one job's controller (tests/benches read it)."""

    statuses: Dict[int, str] = field(default_factory=dict)
    exits: Dict[int, str] = field(default_factory=dict)
    updates_written: int = 0
    lease_id: Optional[int] = None


def make_controller_workload(env: Environment, manifest: JobManifest,
                             job_id: str, volume: NFSVolume,
                             etcd: EtcdClient, state: ControllerState):
    """Controller container: NFS -> etcd status relay."""

    def workload(container):
        lease = yield etcd.grant_lease(CONTROLLER_LEASE_TTL_S)
        state.lease_id = lease.lease_id
        dirty = {"paths": set()}
        wake = [env.event()]

        def on_change(path: str) -> None:
            dirty["paths"].add(path)
            if not wake[0].triggered:
                wake[0].succeed()

        volume.subscribe(on_change)
        # Pick up anything written before we subscribed (controller can
        # start after learners under unfortunate scheduling).
        for path in volume.listdir("learners/"):
            dirty["paths"].add(path)

        keepalive_due = env.now + CONTROLLER_LEASE_TTL_S / 3
        try:
            while True:
                if not dirty["paths"]:
                    wake[0] = env.event()
                    timeout = max(0.1, keepalive_due - env.now)
                    yield env.any_of([wake[0], env.timeout(timeout)])
                if env.now >= keepalive_due:
                    yield etcd.keepalive(lease.lease_id)
                    keepalive_due = env.now + CONTROLLER_LEASE_TTL_S / 3
                if not dirty["paths"]:
                    continue
                # React within the poll interval.
                yield env.timeout(CONTROLLER_POLL_S)
                paths, dirty["paths"] = dirty["paths"], set()
                for path in sorted(paths):
                    yield from _relay(path)
        except Interrupt:
            raise

        return 0

    def _relay(path: str):
        parts = path.split("/")
        if len(parts) != 3 or parts[0] != "learners":
            return
        index = int(parts[1])
        kind = parts[2]
        content = volume.read(path)
        if content is None:
            return
        if kind == "status":
            state.statuses[index] = content
            state.updates_written += 1
            yield etcd.put(learner_status_key(job_id, index), content,
                           lease_id=state.lease_id)
        elif kind == "exit":
            state.exits[index] = content
            state.updates_written += 1
            yield etcd.put(learner_exit_key(job_id, index), content,
                           lease_id=state.lease_id)

    return workload


def make_log_collector_workload(env: Environment, job_id: str,
                                volume: NFSVolume, log_sink):
    """Log-collector container: tails learner logs into the log service."""

    def workload(container):
        shipped: Dict[str, int] = {}
        wake = [env.event()]
        pending = {"dirty": set()}

        def on_change(path: str) -> None:
            if path.endswith("/log"):
                pending["dirty"].add(path)
                if not wake[0].triggered:
                    wake[0].succeed()

        volume.subscribe(on_change)
        while True:
            if not pending["dirty"]:
                wake[0] = env.event()
                yield wake[0]
            yield env.timeout(1.0)  # shipping batch latency
            paths, pending["dirty"] = pending["dirty"], set()
            for path in sorted(paths):
                content = volume.read(path) or ""
                start = shipped.get(path, 0)
                for line in content[start:].splitlines():
                    log_sink.ingest(job_id, path, line, env.now)
                shipped[path] = len(content)

    return workload


def make_idle_sidecar_workload(env: Environment):
    """load-data / store-results containers: on-demand transfer sidecars.

    In this reproduction the learners drive their own mounts, so these
    sidecars idle; they exist so the helper pod has the paper's container
    inventory and so their crash/restart behaviour can be exercised.
    """

    def workload(container):
        yield env.event()  # sleep forever (until killed)

    return workload
