"""Runtime record of one training job inside the platform."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.helper import ControllerState
from repro.core.learner import LearnerState
from repro.core.manifest import JobManifest
from repro.core.statuses import StatusHistory
from repro.nfs.volume import NFSVolume

_job_counter = itertools.count(1)


def new_job_id(prefix: str = "job") -> str:
    return f"{prefix}-{next(_job_counter):06d}"


@dataclass
class TrainingJob:
    """All platform-side state for one submitted job."""

    job_id: str
    manifest: JobManifest
    submitted_at: float
    status: StatusHistory = field(default_factory=StatusHistory)
    #: Kubernetes object names owned by this job.
    statefulset_name: str = ""
    ps_set_name: str = ""
    helper_name: str = ""
    netpol_name: str = ""
    pvc_name: str = ""
    guardian_job_name: str = ""
    #: Runtime handles.
    volume: Optional[NFSVolume] = None
    learner_states: List[LearnerState] = field(default_factory=list)
    controller_state: ControllerState = field(
        default_factory=ControllerState)
    guardian_attempts: int = 0
    deploy_completed_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Set when admission control preempts the job.
    preempted: bool = False

    def __post_init__(self) -> None:
        self.statefulset_name = self.statefulset_name or \
            f"{self.job_id}-learner"
        self.ps_set_name = self.ps_set_name or f"{self.job_id}-ps"
        self.helper_name = self.helper_name or f"{self.job_id}-helper"
        self.netpol_name = self.netpol_name or f"{self.job_id}-netpol"
        self.pvc_name = self.pvc_name or f"{self.job_id}-nfs"
        self.guardian_job_name = self.guardian_job_name or \
            f"{self.job_id}-guardian"
        if not self.learner_states:
            self.learner_states = [LearnerState(i)
                                   for i in range(self.manifest.learners)]

    @property
    def total_iterations_done(self) -> int:
        return sum(s.iterations_done for s in self.learner_states)

    @property
    def runtime_s(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def queue_time_s(self) -> Optional[float]:
        """Time from submission to the start of real execution."""
        from repro.core.statuses import DOWNLOADING
        start = self.status.time_of(DOWNLOADING)
        if start is None:
            return None
        return start - self.submitted_at
