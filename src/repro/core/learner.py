"""The learner: FfDL's unit of training execution.

Each learner runs in its own container (one per StatefulSet ordinal) and:

1. reports DOWNLOADING and streams its dataset shard through the object
   storage mount driver (cache-aware, bandwidth-contended),
2. reports PROCESSING and iterates: compute time comes from the calibrated
   performance model degraded by the platform overhead components; training
   data for each chunk is re-read through the mount (cache hits after the
   first epoch),
3. checkpoints to the results bucket every N iterations,
4. on (re)start, searches the bucket for the latest checkpoint and resumes
   from it — losing only the work since that checkpoint,
5. reports STORING, uploads the final model, and writes its process exit
   code to the shared NFS volume, where the helper controller reads it.

The learner never talks to etcd or MongoDB directly — exactly as in the
paper, coordination flows learner -> NFS -> controller -> etcd ->
Guardian -> MongoDB.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.core.manifest import JobManifest
from repro.core.statuses import DOWNLOADING, PROCESSING, STORING
from repro.nfs.volume import NFSVolume
from repro.objectstore.mount import BucketMount
from repro.perfmodel.models import model_spec
from repro.perfmodel.overhead import DEFAULT_OVERHEADS, OverheadComponents
from repro.perfmodel.throughput import (
    DISTRIBUTED_EFFICIENCY,
    iteration_time_s,
)
from repro.sim.core import Environment, Interrupt

#: Iterations processed between bookkeeping points (checkpoint checks, data
#: chunk fetches, halt-flag checks).  Coarser chunks keep event counts low
#: on month-scale simulations without changing aggregate timing.
CHUNK_ITERATIONS = 50

#: Fraction of data-fetch time hidden behind GPU compute by the input
#: pipeline.  Real frameworks prefetch, but decode/copy work still steals
#: host cycles, so overlap is imperfect; 0.8 reproduces the graded
#: heavy-load degradation of Figure 5 (K80 barely affected, V100 hit
#: hardest) given the paper's shared-bandwidth saturation.
FETCH_OVERLAP = 0.8


@dataclass
class LearnerState:
    """Cross-restart state of one learner, visible to tests and benches."""

    index: int
    iterations_done: int = 0
    checkpoints_written: int = 0
    checkpoints_loaded: int = 0
    restarts: int = 0
    epochs_completed: int = 0
    halted: bool = False


@dataclass
class LearnerContext:
    """Everything a learner container needs from its environment."""

    env: Environment
    manifest: JobManifest
    job_id: str
    volume: NFSVolume
    data_mount: BucketMount
    result_mount: BucketMount
    overheads: OverheadComponents = field(default_factory=lambda:
                                          DEFAULT_OVERHEADS)
    #: Called to check a user-driven HALT request (reads the etcd flag).
    halt_requested = staticmethod(lambda: False)
    #: Throughput degradation multiplier hook (heavy-load contention etc.).
    compute_slowdown: float = 1.0

    def status_path(self, index: int) -> str:
        return f"learners/{index}/status"

    def exit_path(self, index: int) -> str:
        return f"learners/{index}/exit"

    def progress_path(self, index: int) -> str:
        return f"learners/{index}/iterations"

    def log_path(self, index: int) -> str:
        return f"learners/{index}/log"


def checkpoint_key(job_id: str, learner_index: int, iteration: int) -> str:
    return f"checkpoints/{job_id}/learner-{learner_index}/" \
           f"iter-{iteration:010d}"


def find_latest_checkpoint(ctx: LearnerContext,
                           learner_index: int) -> Optional[int]:
    """Scan the results bucket for this learner's newest checkpoint.

    This is the FfDL component that, "after the training pod is restarted,
    searches the object store bucket for the latest checkpoint and uses
    that to resume training" (Section 3.8).
    """
    prefix = f"checkpoints/{ctx.job_id}/learner-{learner_index}/"
    objects = ctx.result_mount.listdir(prefix)
    if not objects:
        return None
    latest = max(obj.key for obj in objects)
    return int(latest.rsplit("iter-", 1)[1])


def make_learner_workload(ctx: LearnerContext, state: LearnerState):
    """Build the container workload generator for one learner."""

    def workload(container):
        env = ctx.env
        manifest = ctx.manifest
        index = state.index
        spec = model_spec(manifest.model, manifest.framework)
        batch = manifest.batch_size or spec.default_batch_size
        overhead = ctx.overheads.total(manifest.learners,
                                       max(1, manifest.gpus_per_learner))
        iter_s = iteration_time_s(
            spec, manifest.gpu_type, manifest.effective_cpus(),
            max(1, manifest.gpus_per_learner), batch)
        # Synchronous data-parallel training: every learner pays the
        # gradient-exchange barrier, so per-learner speed drops with the
        # number of peers (the same efficiency the throughput model uses).
        iter_s /= DISTRIBUTED_EFFICIENCY ** (manifest.learners - 1)
        iter_s *= ctx.compute_slowdown / (1.0 - overhead)

        def report(status):
            ctx.volume.write(ctx.status_path(index), status)
            ctx.volume.append(ctx.log_path(index),
                              f"[{env.now:.1f}] {status}\n")

        try:
            state.restarts += bool(state.iterations_done or
                                   state.checkpoints_loaded)
            # -- recover state -------------------------------------------
            # With parameter servers, a restarted learner "rejoin[s] other
            # learners and get[s] the latest neural net parameters from a
            # parameter server" (Section 3.8): progress survives without a
            # checkpoint load.  Otherwise, resume from the newest
            # checkpoint in the results bucket (or start over).
            ps_progress = None
            if manifest.parameter_servers > 0:
                recorded = ctx.volume.read(ctx.progress_path(index))
                if recorded is not None:
                    ps_progress = int(recorded)
            if ps_progress:
                yield env.timeout(2.0)  # rejoin + parameter pull
                state.iterations_done = ps_progress
                container.log(f"rejoined via parameter server at "
                              f"iter={ps_progress}")
            else:
                resume_at = find_latest_checkpoint(ctx, index)
                if resume_at is not None and resume_at > 0:
                    obj_key = checkpoint_key(ctx.job_id, index, resume_at)
                    yield ctx.result_mount.read(obj_key)
                    state.checkpoints_loaded += 1
                    state.iterations_done = resume_at
                    container.log(
                        f"resumed from checkpoint iter={resume_at}")
                else:
                    state.iterations_done = 0

            # -- DOWNLOADING: prime the input pipeline -------------------
            # With a mounted object store the dataset is streamed on
            # demand during training; DOWNLOADING covers binding the mount
            # and prefetching the initial window, not staging the full
            # dataset (Section 3.7).
            report(DOWNLOADING)
            prefetch = min(4, manifest.dataset_objects)
            for obj_index in range(prefetch):
                yield ctx.data_mount.read(
                    f"dataset/part-{obj_index:05d}")

            # -- PROCESSING ----------------------------------------------
            report(PROCESSING)
            samples_per_object = max(
                1.0, manifest.dataset_object_bytes / spec.sample_bytes)
            iters_per_object = max(1, int(samples_per_object / batch))
            # Shuffled sharding: each learner walks the dataset from its
            # own offset, so co-located jobs do not read in lockstep.
            # (zlib.crc32 rather than hash(): the latter is salted per
            # process and would break run-to-run determinism.)
            shard_offset = zlib.crc32(
                f"{ctx.job_id}-{index}".encode()) % \
                manifest.dataset_objects
            while state.iterations_done < manifest.iterations:
                if ctx.halt_requested():
                    # User-driven HALT: checkpoint current progress so
                    # RESUME continues from here, then stop cleanly.
                    if manifest.checkpoint_interval_iterations and \
                            state.iterations_done:
                        key = checkpoint_key(ctx.job_id, index,
                                             state.iterations_done)
                        yield ctx.result_mount.write(
                            key, manifest.checkpoint_bytes)
                        state.checkpoints_written += 1
                    state.halted = True
                    report("HALTED")
                    ctx.volume.write(ctx.exit_path(index), "halted")
                    return 0
                chunk = min(CHUNK_ITERATIONS,
                            manifest.iterations - state.iterations_done)
                # Fetch the data for this chunk (cache-aware re-reads).
                obj_index = (shard_offset +
                             state.iterations_done // iters_per_object) \
                    % manifest.dataset_objects
                if state.iterations_done // iters_per_object >= \
                        manifest.dataset_objects:
                    state.epochs_completed = (
                        state.iterations_done //
                        (iters_per_object * manifest.dataset_objects))
                fetch_started = env.now
                # Read every object the chunk's iterations consume (a
                # chunk can span multiple small objects).
                first_obj = obj_index
                last_obj = (shard_offset +
                            (state.iterations_done + chunk - 1) //
                            iters_per_object) % manifest.dataset_objects
                span = (last_obj - first_obj) % manifest.dataset_objects
                for step in range(span + 1):
                    part = (first_obj + step) % manifest.dataset_objects
                    yield ctx.data_mount.read(
                        f"dataset/part-{part:05d}")
                fetch_s = env.now - fetch_started
                # Imperfect input-pipeline overlap: most of the fetch hides
                # behind compute, the rest extends the chunk.
                compute_s = chunk * iter_s
                yield env.timeout(
                    max(0.0, compute_s - FETCH_OVERLAP * fetch_s))
                state.iterations_done += chunk
                ctx.volume.write(ctx.progress_path(index),
                                 str(state.iterations_done))
                # -- periodic checkpoint ------------------------------
                interval = manifest.checkpoint_interval_iterations
                if interval and state.iterations_done % interval < \
                        CHUNK_ITERATIONS and state.iterations_done >= \
                        interval:
                    ckpt_iter = (state.iterations_done // interval) \
                        * interval
                    key = checkpoint_key(ctx.job_id, index, ckpt_iter)
                    yield ctx.result_mount.write(
                        key, manifest.checkpoint_bytes)
                    state.checkpoints_written += 1

            # -- STORING: upload the trained model ------------------------
            report(STORING)
            yield ctx.result_mount.write(
                f"models/{ctx.job_id}/learner-{index}/model.bin",
                manifest.checkpoint_bytes)
            ctx.volume.write(ctx.exit_path(index), "0")
            report("COMPLETED")
            return 0
        except Interrupt:
            # Killed (crash injection / node failure): the exit status file
            # is *not* written — that is how the controller tells a crash
            # from completion.
            raise
        except Exception as err:  # noqa: BLE001 - surface as exit code
            container.log(f"training error: {err!r}")
            ctx.volume.write(ctx.exit_path(index), "1")
            return 1

    return workload
