"""ElasticSearch-like log index.

"[The Training Metrics Service] also helps in streaming training logs from
jobs to be indexed and stored in ElasticSearch/Kibana for easy debugging"
(Section 3.2).  Reliable log streaming "irrespective of the stage [the job]
is in, even if it crashes/fails" is one of the platform requirements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class LogEntry:
    time: float
    job_id: str
    source: str  # e.g. learners/0/log
    line: str


class LogIndex:
    """Append-only indexed log store with simple search."""

    def __init__(self):
        self._by_job: Dict[str, List[LogEntry]] = {}
        self.total_entries = 0

    def ingest(self, job_id: str, source: str, line: str,
               time: float) -> None:
        entry = LogEntry(time, job_id, source, line)
        self._by_job.setdefault(job_id, []).append(entry)
        self.total_entries += 1

    def logs_for(self, job_id: str,
                 source: Optional[str] = None) -> List[LogEntry]:
        entries = self._by_job.get(job_id, [])
        if source is not None:
            entries = [e for e in entries if e.source == source]
        return list(entries)

    def search(self, job_id: str, needle: str) -> List[LogEntry]:
        return [e for e in self._by_job.get(job_id, [])
                if needle in e.line]

    def job_ids(self) -> List[str]:
        return sorted(self._by_job)
