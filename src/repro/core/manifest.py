"""DL job manifests.

"FfDL simply requires data scientists to provide their existing code,
command to execute said code, location of data, credentials to access said
data and store results, number of learners, and the resources (GPU, CPU &
RAM) needed per learner.  These items are described in a manifest file"
(Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.tshirt import TSHIRT_SIZES, recommend
from repro.errors import ValidationError
from repro.perfmodel.gpus import GPU_TYPES
from repro.perfmodel.models import FRAMEWORKS, MODEL_SPECS


@dataclass
class JobManifest:
    """Everything FfDL needs to run one training job."""

    name: str
    user: str
    framework: str
    model: str
    command: str = "python train.py"
    #: Data and results locations (object storage bucket names).
    data_bucket: str = "training-data"
    result_bucket: str = "training-results"
    credentials_token: Optional[str] = None
    #: Topology.  "A distributed job may also include one or more parameter
    #: servers if the framework/user includes them; parameter servers are
    #: also containerized" (Section 3.1).  PS pods are CPU-only members of
    #: the job's scheduling gang.
    learners: int = 1
    parameter_servers: int = 0
    cpus_per_parameter_server: float = 4.0
    gpus_per_learner: int = 1
    gpu_type: str = "K80"
    cpus_per_learner: Optional[float] = None  # None -> t-shirt size
    memory_gb_per_learner: Optional[float] = None
    #: Training shape.
    iterations: int = 1000
    batch_size: int = 0  # 0 -> model default
    dataset_objects: int = 16
    dataset_object_bytes: float = 64e6
    #: Fault tolerance.
    checkpoint_interval_iterations: int = 0  # 0 -> no checkpoints
    checkpoint_bytes: float = 5e8

    def validate(self) -> "JobManifest":
        if not self.name:
            raise ValidationError("job name is required")
        if not self.user:
            raise ValidationError("user is required")
        if self.framework not in FRAMEWORKS:
            raise ValidationError(
                f"unsupported framework {self.framework!r}; "
                f"supported: {', '.join(FRAMEWORKS)}")
        if (self.model, self.framework) not in MODEL_SPECS:
            raise ValidationError(
                f"no performance profile for model {self.model!r} on "
                f"{self.framework!r}")
        if self.learners < 1:
            raise ValidationError("learners must be >= 1")
        if self.parameter_servers < 0:
            raise ValidationError("parameter_servers must be >= 0")
        if self.gpus_per_learner < 0:
            raise ValidationError("gpus_per_learner must be >= 0")
        if self.gpu_type not in GPU_TYPES:
            raise ValidationError(f"unknown gpu type {self.gpu_type!r}")
        if self.gpus_per_learner > 0 and \
                (self.gpu_type, self.gpus_per_learner) not in TSHIRT_SIZES \
                and self.cpus_per_learner is None:
            raise ValidationError(
                f"no t-shirt size for {self.gpus_per_learner}x"
                f"{self.gpu_type}; specify cpus_per_learner explicitly")
        if self.iterations < 1:
            raise ValidationError("iterations must be >= 1")
        if self.checkpoint_interval_iterations < 0:
            raise ValidationError("checkpoint interval must be >= 0")
        return self

    @property
    def total_gpus(self) -> int:
        return self.learners * self.gpus_per_learner

    def effective_cpus(self) -> float:
        if self.cpus_per_learner is not None:
            return self.cpus_per_learner
        if self.gpus_per_learner == 0:
            return 4.0
        return float(recommend(self.gpu_type, self.gpus_per_learner).cpus)

    def effective_memory_gb(self) -> float:
        if self.memory_gb_per_learner is not None:
            return self.memory_gb_per_learner
        if self.gpus_per_learner == 0:
            return 8.0
        return float(
            recommend(self.gpu_type, self.gpus_per_learner).memory_gb)
