"""Training Metrics Service.

"The Training Metrics Service is responsible for collecting metrics about
both the training jobs and FfDL microservices.  This includes things like
memory and network usage, number of times microservices fail and recover,
and frequency of connectivity issues" (Section 3.2).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.logging_service import LogIndex
from repro.sim.core import Environment


@dataclass
class MetricPoint:
    time: float
    name: str
    value: float
    labels: Tuple[Tuple[str, str], ...] = ()


class TrainingMetricsService:
    """Time-series sink plus counters for component failures/recoveries."""

    def __init__(self, env: Environment):
        self.env = env
        self.log_index = LogIndex()
        self._series: Dict[str, List[MetricPoint]] = defaultdict(list)
        self.component_failures: Dict[str, int] = defaultdict(int)
        self.component_recoveries: Dict[str, int] = defaultdict(int)

    # -- metrics -------------------------------------------------------------

    def emit(self, name: str, value: float, **labels) -> None:
        point = MetricPoint(self.env.now, name, float(value),
                            tuple(sorted(labels.items())))
        self._series[name].append(point)

    def series(self, name: str) -> List[MetricPoint]:
        return list(self._series[name])

    def latest(self, name: str) -> float:
        points = self._series.get(name)
        if not points:
            raise KeyError(f"no metric {name!r}")
        return points[-1].value

    def sum(self, name: str) -> float:
        return sum(p.value for p in self._series.get(name, []))

    # -- component health ----------------------------------------------------------

    def record_failure(self, component: str) -> None:
        self.component_failures[component] += 1

    def record_recovery(self, component: str) -> None:
        self.component_recoveries[component] += 1
