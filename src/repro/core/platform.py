"""FfDL platform facade: the public entry point of this library.

Wires the full stack from the paper's Figure 1/2 together:

* Platform layer — simulated Kubernetes cluster, etcd (optionally
  Raft-replicated), MongoDB (optionally a replica set), object storage,
  NFS provisioning, Docker registry.
* Core services — API service, Lifecycle Manager, Training Metrics
  Service, each a replicated :class:`Microservice`.
* Helpers — per-job Guardian (K8S Job), helper pod (controller,
  load-data, store-results, log-collector) and learner StatefulSets.

Typical use::

    platform = FfDLPlatform(env, RngRegistry(0))
    platform.add_gpu_nodes(4, gpus_per_node=4, gpu_type="K80")
    job_id = env.run_until_complete(platform.submit_job(manifest))
    env.run_until_complete(platform.wait_for_terminal(job_id))
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core import statuses as st
from repro.core.admission import AdmissionController
from repro.core.guardian import make_guardian_workload
from repro.core.helper import (
    halt_key,
    job_prefix,
    make_controller_workload,
    make_idle_sidecar_workload,
    make_log_collector_workload,
)
from repro.core.job import TrainingJob
from repro.core.learner import LearnerContext, make_learner_workload
from repro.core.manifest import JobManifest
from repro.core.metrics import TrainingMetricsService
from repro.core.services import Microservice
from repro.docker import Image
from repro.errors import JobNotFoundError, QuotaExceededError
from repro.etcd.client import EtcdClient
from repro.etcd.kv import EtcdStore
from repro.etcd.replicated import ReplicatedEtcd
from repro.kube.cluster import Cluster
from repro.kube.objects import (
    ContainerSpec,
    KubeJob,
    ObjectMeta,
    PodTemplate,
    RESTART_NEVER,
    RESTART_ON_FAILURE,
    StatefulSet,
)
from repro.kube.resources import NodeCapacity, ResourceRequest
from repro.kube.scheduling.framework import SchedulerConfig
from repro.mongo.client import MongoClient
from repro.mongo.database import MongoDatabase, MongoReplicaSet
from repro.nfs.provisioner import NFSProvisioner, VolumePool
from repro.objectstore.mount import BucketMount, MountCache
from repro.objectstore.service import ObjectStorageService
from repro.resilience import BufferedJobWriter, CircuitBreaker, RetryPolicy
from repro.sim.core import Environment, Event, Interrupt
from repro.sim.rng import RngRegistry


@dataclass
class PlatformConfig:
    """Deployment-level knobs of an FfDL installation."""

    scheduler_policy: str = "pack"
    gang_scheduling: bool = True
    etcd_replicas: int = 0  # 0 -> standalone in-process store (fast path)
    mongo_secondaries: int = 0
    oss_bandwidth_bps: float = 1.25e9
    mount_cache_bytes: float = 200e9
    use_volume_pool: bool = False
    guardian_backoff_limit: int = 3
    api_replicas: int = 2
    lcm_replicas: int = 2
    metrics_replicas: int = 2
    #: Component recovery calibration (Table 3).
    api_recovery_s: tuple = (3.0, 5.0)
    lcm_recovery_s: tuple = (4.0, 6.0)
    guardian_pod_setup_s: float = 0.3
    helper_pod_setup_s: float = 2.0
    learner_pod_setup_s: tuple = (8.0, 16.0)
    node_detection_latency_s: float = 40.0
    pod_eviction_timeout_s: float = 60.0
    #: Slowdown multiplier hook applied to all learners (load modelling).
    compute_slowdown: float = 1.0
    #: -- resilience layer (see repro.resilience) ------------------------
    #: Retry policies for the backend clients; None restores the legacy
    #: single-shot behaviour for that client.
    etcd_retry: Optional[RetryPolicy] = field(default_factory=RetryPolicy)
    mongo_retry: Optional[RetryPolicy] = field(default_factory=RetryPolicy)
    #: Retries for learner data/result mounts (object-store brownouts).
    mount_retry: Optional[RetryPolicy] = None
    #: Guard the etcd/mongo clients with circuit breakers.
    client_breakers: bool = False
    #: Guard the API/LCM microservice call paths with circuit breakers
    #: (deadline misses against a fully-crashed replica set trip them;
    #: the federation health probes read the same breakers).
    service_breakers: bool = False
    breaker_failure_threshold: int = 5
    breaker_reset_timeout_s: float = 10.0
    #: How long the status writer waits after exhausting a write's
    #: retries before re-probing the store (graceful degradation).
    status_flush_cooldown_s: float = 1.0
    #: Primary-less window after a Mongo primary crash (0 = instant
    #: failover, the legacy behaviour).
    mongo_election_delay_s: float = 0.0


FRAMEWORK_IMAGES = {
    "tensorflow": Image("tensorflow", "1.5", framework="tensorflow",
                        size_bytes=2.5e9),
    "caffe": Image("caffe", "1.0", framework="caffe", size_bytes=1.8e9),
    "pytorch": Image("pytorch", "0.4", framework="pytorch",
                     size_bytes=2.2e9),
}
HELPER_IMAGE = Image("ffdl-helper", framework=None, size_bytes=4e8)
GUARDIAN_IMAGE = Image("ffdl-guardian", framework=None, size_bytes=2e8)


class FfDLPlatform:
    """One FfDL installation on one simulated cluster."""

    def __init__(self, env: Environment, rng: RngRegistry,
                 config: Optional[PlatformConfig] = None):
        self.env = env
        self.rng = rng
        self.config = config or PlatformConfig()
        cfg = self.config

        # -- platform layer -------------------------------------------------
        self.cluster = Cluster(
            env, rng,
            SchedulerConfig(policy=cfg.scheduler_policy,
                            gang=cfg.gang_scheduling),
            node_detection_latency_s=cfg.node_detection_latency_s,
            pod_eviction_timeout_s=cfg.pod_eviction_timeout_s)
        for image in (*FRAMEWORK_IMAGES.values(), HELPER_IMAGE,
                      GUARDIAN_IMAGE):
            self.cluster.push_image(image)
        self.oss = ObjectStorageService(env,
                                        bandwidth_bps=cfg.oss_bandwidth_bps)
        #: Shared mount cache; a zero capacity disables caching entirely
        #: (the realistic regime for shuffled reads of datasets that do
        #: not fit local disks — see the paper's storage lessons).
        self.mount_cache = MountCache(cfg.mount_cache_bytes) \
            if cfg.mount_cache_bytes > 0 else None
        self.nfs = NFSProvisioner(env, rng)
        self.volume_pool = VolumePool(env, self.nfs) \
            if cfg.use_volume_pool else None
        if cfg.etcd_replicas > 0:
            self.etcd: Union[EtcdStore, ReplicatedEtcd] = \
                ReplicatedEtcd(env, rng, size=cfg.etcd_replicas)
        else:
            self.etcd = EtcdStore(env)
        self.etcd_breaker = CircuitBreaker(
            env, failure_threshold=cfg.breaker_failure_threshold,
            reset_timeout_s=cfg.breaker_reset_timeout_s,
            name="etcd") if cfg.client_breakers else None
        self.etcd_client = EtcdClient(env, self.etcd, rng=rng,
                                      retry=cfg.etcd_retry,
                                      breaker=self.etcd_breaker)
        if cfg.mongo_secondaries > 0:
            self.mongo: Union[MongoDatabase, MongoReplicaSet] = \
                MongoReplicaSet(env, secondaries=cfg.mongo_secondaries,
                                election_delay_s=cfg.mongo_election_delay_s)
        else:
            self.mongo = MongoDatabase()
        self.mongo_breaker = CircuitBreaker(
            env, failure_threshold=cfg.breaker_failure_threshold,
            reset_timeout_s=cfg.breaker_reset_timeout_s,
            name="mongo") if cfg.client_breakers else None
        self.mongo_client = MongoClient(env, self.mongo, rng=rng,
                                        retry=cfg.mongo_retry,
                                        breaker=self.mongo_breaker)
        #: Write-behind queue for job records: while MongoDB is degraded
        #: the platform buffers status updates and queued submissions in
        #: memory, then flushes on recovery with no lost records.
        self.status_writer = BufferedJobWriter(
            env, self.mongo_client,
            stream=rng.stream("resilience:status-writer"),
            cooldown_s=cfg.status_flush_cooldown_s)

        # -- core services -----------------------------------------------------
        self.metrics = TrainingMetricsService(env)

        def service_breaker(name: str) -> Optional[CircuitBreaker]:
            if not cfg.service_breakers:
                return None
            return CircuitBreaker(
                env, failure_threshold=cfg.breaker_failure_threshold,
                reset_timeout_s=cfg.breaker_reset_timeout_s, name=name)

        self.api_service = Microservice(env, rng, "api",
                                        replicas=cfg.api_replicas,
                                        recovery_range_s=cfg.api_recovery_s,
                                        metrics=self.metrics,
                                        breaker=service_breaker("api"))
        self.lcm = Microservice(env, rng, "lcm", replicas=cfg.lcm_replicas,
                                recovery_range_s=cfg.lcm_recovery_s,
                                metrics=self.metrics,
                                breaker=service_breaker("lcm"))
        self.metrics_service = Microservice(env, rng, "training-metrics",
                                            replicas=cfg.metrics_replicas,
                                            metrics=self.metrics)
        self.admission = AdmissionController()
        self.jobs: Dict[str, TrainingJob] = {}
        #: Per-platform id sequence (a process-global counter would make
        #: repeated scenarios diverge via name-derived shard offsets).
        self._job_seq = itertools.count(1)
        self._terminal_waiters: Dict[str, List[Event]] = {}
        #: Test hook: crash the Guardian after deployment step N (0 = off).
        self.crash_guardian_after_step = 0
        #: When False, nobody reclaims a job's objects after its Guardian
        #: permanently dies — the zombie-resource failure mode the
        #: Guardian design exists to prevent (ablation hook).
        self.enable_failure_cleanup = True
        self.cluster.api.subscribe("pods", self._on_pod_change)

    # -- topology helpers ---------------------------------------------------------

    def add_gpu_nodes(self, count: int, gpus_per_node: int = 4,
                      gpu_type: str = "K80", cpus: float = 64,
                      memory_gb: float = 512) -> None:
        self.cluster.add_nodes(count, NodeCapacity(
            cpus=cpus, memory_gb=memory_gb, gpus=gpus_per_node,
            gpu_type=gpu_type))

    def add_cpu_nodes(self, count: int, cpus: float = 32,
                      memory_gb: float = 128) -> None:
        self.cluster.add_nodes(count, NodeCapacity(cpus=cpus,
                                                   memory_gb=memory_gb))

    def ensure_dataset(self, manifest: JobManifest) -> None:
        """Create the training-data bucket/objects if absent (stands in for
        the user having uploaded their dataset)."""
        bucket = self.oss.create_bucket(manifest.data_bucket)
        for index in range(manifest.dataset_objects):
            key = f"dataset/part-{index:05d}"
            if key not in bucket:
                bucket.put(key, manifest.dataset_object_bytes)
        self.oss.create_bucket(manifest.result_bucket)

    # -- public API (the FfDL REST/gRPC surface) --------------------------------------

    def submit_job(self, manifest: JobManifest) -> Event:
        """Submit a job; resolves with its job id once metadata is durable.

        Mirrors Section 3.2: "When a job deployment request arrives, the
        API layer stores all the metadata in MongoDB before acknowledging
        the request."
        """
        return self.api_service.call(lambda: self.env.process(
            self._submit(manifest), name="api-submit"))

    def _submit(self, manifest: JobManifest):
        manifest.validate()
        self.ensure_dataset(manifest)
        job = TrainingJob(f"job-{next(self._job_seq):06d}", manifest,
                          self.env.now)
        self.jobs[job.job_id] = job
        job.status.transition(st.QUEUED, self.env.now)
        write = self.status_writer.insert("jobs", {
            "_id": job.job_id,
            "user": manifest.user,
            "framework": manifest.framework,
            "model": manifest.model,
            "learners": manifest.learners,
            "gpus_per_learner": manifest.gpus_per_learner,
            "gpu_type": manifest.gpu_type,
            "status": st.QUEUED,
            "status_history": [{"status": st.QUEUED,
                                "time": self.env.now}],
            "submitted_at": self.env.now,
        })
        # Healthy path: acknowledge only once the record is durable in
        # MongoDB (Section 3.2).  Degraded path: the record is queued in
        # memory (never dropped) and the submission is acknowledged so an
        # outage does not reject jobs — the documented graceful-degradation
        # deviation; the writer flushes the queue on recovery.
        yield self.env.any_of([write, self.status_writer.degraded_event()])
        decision = self.admission.admit(job)
        if not decision.admitted:
            self.record_status(job, st.FAILED, decision.reason)
            raise QuotaExceededError(decision.reason)
        yield self.lcm.call(lambda: self._deploy_guardian(job))
        return job.job_id

    def job(self, job_id: str) -> TrainingJob:
        job = self.jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def job_status(self, job_id: str) -> Event:
        """Read the durable job status from MongoDB through the API."""
        return self.api_service.call(
            lambda: self.mongo_client.find_one("jobs", {"_id": job_id}))

    def halt_job(self, job_id: str) -> Event:
        """User-driven HALT: learners checkpoint and stop (Section 3.8)."""
        job = self.job(job_id)
        return self.api_service.call(
            lambda: self.etcd_client.put(halt_key(job.job_id), "halt"))

    def resume_job(self, job_id: str) -> Event:
        """Resume a HALTED job from its checkpoints."""
        job = self.job(job_id)

        def do_resume():
            if job.status.current != st.HALTED:
                raise JobNotFoundError(
                    f"job {job_id} is {job.status.current}, not HALTED")
            self.record_status(job, st.RESUMED)
            self.etcd_store().delete(halt_key(job.job_id))
            job.finished_at = None
            return self.lcm.call(lambda: self._deploy_guardian(job))

        return self.api_service.call(do_resume)

    def cancel_job(self, job_id: str) -> Event:
        """User-driven cancel: tear the job down immediately.

        Unlike :meth:`halt_job` (which checkpoints and waits for learners
        to stop cleanly), cancel reclaims resources right away; the job
        lands in HALTED and can be resumed from its last checkpoint.
        """
        job = self.job(job_id)

        def do_cancel():
            if not job.status.is_terminal:
                self.preempt_job(job_id, reason="user cancelled")
            return job.status.current

        return self.api_service.call(do_cancel)

    def list_jobs(self, user: Optional[str] = None) -> List[TrainingJob]:
        """All known jobs, optionally filtered by owner."""
        jobs = list(self.jobs.values())
        if user is not None:
            jobs = [j for j in jobs if j.manifest.user == user]
        return sorted(jobs, key=lambda j: j.submitted_at)

    def wait_for_terminal(self, job_id: str) -> Event:
        """Event firing when the job reaches COMPLETED/FAILED/HALTED."""
        job = self.job(job_id)
        done = self.env.event()
        if job.status.current in (st.COMPLETED, st.FAILED, st.HALTED):
            done.succeed(job.status.current)
            return done
        self._terminal_waiters.setdefault(job_id, []).append(done)
        return done

    def stream_logs(self, job_id: str, source: Optional[str] = None):
        return self.metrics.log_index.logs_for(job_id, source)

    # -- status plumbing --------------------------------------------------------------

    def record_status(self, job: TrainingJob, status: str,
                      message: str = "") -> None:
        """Record a (tolerated) status transition locally, in MongoDB and
        in the metrics service."""
        current = job.status.current
        if current == status:
            return
        if not st.is_valid_transition(current, status):
            return  # stale update racing a terminal transition
        job.status.transition(status, self.env.now, message)
        self.metrics.emit("job_status_change", 1.0, job=job.job_id,
                          status=status)
        if status in (st.COMPLETED, st.FAILED, st.HALTED):
            job.finished_at = self.env.now
            self.admission.release(job.job_id)
            for waiter in self._terminal_waiters.pop(job.job_id, []):
                if not waiter.triggered:
                    waiter.succeed(status)

        # Write-behind: the update is queued (and applied in order after
        # the job's insert); during a store outage it is buffered rather
        # than lost.
        self.status_writer.update(
            "jobs", {"_id": job.job_id},
            {"$set": {"status": status},
             "$push": {"status_history": {"status": status,
                                          "time": self.env.now,
                                          "message": message}}})

    def etcd_store(self) -> EtcdStore:
        if isinstance(self.etcd, ReplicatedEtcd):
            return self.etcd.hub
        return self.etcd

    # -- deployment internals (called by the Guardian) -----------------------------------

    def _deploy_guardian(self, job: TrainingJob) -> Event:
        """LCM action: create the Guardian as a K8S Job ("its creation is a
        very quick single step process")."""
        attempt_suffix = "" if job.guardian_attempts == 0 \
            else f"-r{job.guardian_attempts}"
        name = f"{job.guardian_job_name}{attempt_suffix}"
        template = PodTemplate(
            containers=[ContainerSpec(
                "guardian", GUARDIAN_IMAGE.reference,
                make_guardian_workload(self, job))],
            # "Guardians consume only a fraction of a CPU and need little
            # RAM" (Section 3.7).
            resources=ResourceRequest(cpus=0.1, memory_gb=0.25),
            restart_policy=RESTART_NEVER,
            labels={"type": "jobmonitor", "job": job.job_id})
        template.node_selector = {}
        kube_job = KubeJob(
            meta=ObjectMeta(name=name, labels={"job": job.job_id}),
            template=template,
            backoff_limit=self.config.guardian_backoff_limit)
        kube_job.template.labels["guardian-for"] = job.job_id
        self.cluster.api.create_job(kube_job)
        done = self.env.event()
        done.succeed(name)
        return done

    def provision_volume(self, job: TrainingJob) -> Event:
        if self.volume_pool is not None:
            return self.volume_pool.acquire()
        return self.nfs.provision(job.pvc_name)

    def _mount_stream(self):
        if self.config.mount_retry is None:
            return None
        return self.rng.stream("resilience:bucket-mount")

    def _data_mount(self, manifest: JobManifest) -> BucketMount:
        return BucketMount(self.env, self.oss, manifest.data_bucket,
                           cache=self.mount_cache,
                           token=manifest.credentials_token,
                           retry=self.config.mount_retry,
                           retry_stream=self._mount_stream())

    def _result_mount(self, manifest: JobManifest) -> BucketMount:
        return BucketMount(self.env, self.oss, manifest.result_bucket,
                           cache=None, token=manifest.credentials_token,
                           retry=self.config.mount_retry,
                           retry_stream=self._mount_stream())

    def _lazy_volume_workload(self, job: TrainingJob, factory):
        """Wrap a (volume -> workload) factory so the NFS volume is
        resolved when the container starts — by which time the PVC has
        bound (the scheduler gates the pod on it)."""

        def workload(container):
            inner = factory(job.volume)
            inner_proc = self.env.process(
                inner(container), name=f"lazyvol:{container.name}")
            try:
                result = yield inner_proc
                return result
            except Interrupt:
                # The container was killed: take the inner process down
                # with us, or it would keep running orphaned.
                if inner_proc.is_alive:
                    inner_proc.interrupt("killed")
                raise

        return workload

    def create_helper(self, job: TrainingJob) -> None:
        from repro.kube.objects import Deployment

        manifest = job.manifest
        controller = self._lazy_volume_workload(
            job, lambda volume: make_controller_workload(
                self.env, manifest, job.job_id, volume, self.etcd_client,
                job.controller_state))
        log_collector = self._lazy_volume_workload(
            job, lambda volume: make_log_collector_workload(
                self.env, job.job_id, volume, self.metrics.log_index))
        template = PodTemplate(
            containers=[
                ContainerSpec("controller", HELPER_IMAGE.reference,
                              controller),
                ContainerSpec("load-data", HELPER_IMAGE.reference,
                              make_idle_sidecar_workload(self.env)),
                ContainerSpec("store-results", HELPER_IMAGE.reference,
                              make_idle_sidecar_workload(self.env)),
                ContainerSpec("log-collector", HELPER_IMAGE.reference,
                              log_collector),
            ],
            resources=ResourceRequest(cpus=0.5, memory_gb=1.0),
            restart_policy=RESTART_ON_FAILURE,
            labels={"type": "lhelper", "job": job.job_id})
        template.volume_claims = [job.pvc_name]
        deployment = Deployment(
            meta=ObjectMeta(name=job.helper_name,
                            labels={"job": job.job_id}),
            replicas=1, template=template)
        deployment.template.labels["helper-for"] = job.job_id
        # Helper pods bind the shared NFS volume at startup.
        template.node_selector = {}
        self.cluster.api.create_deployment(deployment)

    def create_learners(self, job: TrainingJob) -> None:
        manifest = job.manifest
        ctx = LearnerContext(
            env=self.env, manifest=manifest, job_id=job.job_id,
            volume=None,  # bound by the time any learner starts
            data_mount=self._data_mount(manifest),
            result_mount=self._result_mount(manifest),
            compute_slowdown=self.config.compute_slowdown)
        ctx.halt_requested = (lambda: self.etcd_store().get(
            halt_key(job.job_id)) is not None)
        states = job.learner_states

        def dispatching_workload(container):
            # One template serves every ordinal: recover the learner index
            # from the pod name ("<job>-learner-<i>/<container>").
            ctx.volume = job.volume
            pod_name = container.name.split("/")[0]
            index = int(pod_name.rsplit("-", 1)[1])
            inner = make_learner_workload(ctx, states[index])
            inner_proc = self.env.process(
                inner(container), name=f"learner:{pod_name}")
            try:
                result = yield inner_proc
                return result
            except Interrupt:
                # Container killed: the training process dies with it.
                if inner_proc.is_alive:
                    inner_proc.interrupt("killed")
                raise

        image = FRAMEWORK_IMAGES[manifest.framework]
        lo, hi = self.config.learner_pod_setup_s
        setup = lo + (hi - lo) * self.rng.stream("learner-setup").random()
        template = PodTemplate(
            containers=[ContainerSpec("learner", image.reference,
                                      dispatching_workload)],
            resources=ResourceRequest(
                cpus=manifest.effective_cpus(),
                memory_gb=manifest.effective_memory_gb(),
                gpus=manifest.gpus_per_learner,
                gpu_type=manifest.gpu_type
                if manifest.gpus_per_learner else None),
            restart_policy=RESTART_ON_FAILURE,
            labels={"type": "learner", "job": job.job_id})
        template.volume_claims = [job.pvc_name]
        gang_size = manifest.learners + manifest.parameter_servers
        statefulset = StatefulSet(
            meta=ObjectMeta(name=job.statefulset_name,
                            labels={"job": job.job_id}),
            replicas=manifest.learners, template=template,
            gang=self.config.gang_scheduling,
            gang_name=job.statefulset_name, gang_size=gang_size)
        # Learners take longest to restart: "binding to the Object Storage
        # Service and persistent NFS volumes takes longer" (Table 3).
        template.labels["pod-setup"] = str(setup)
        self.cluster.api.create_statefulset(statefulset)
        if manifest.parameter_servers > 0:
            self._create_parameter_servers(job, gang_size)
        # Pod annotations carry setup latency; PodTemplate has no
        # annotation field, so patch pods as they are created instead.

    def _create_parameter_servers(self, job: TrainingJob,
                                  gang_size: int) -> None:
        """Containerized parameter servers join the job's gang (CPU-only)."""
        manifest = job.manifest

        def ps_workload(container):
            # Serves parameters until the Guardian tears the job down.
            yield self.env.event()

        image = FRAMEWORK_IMAGES[manifest.framework]
        template = PodTemplate(
            containers=[ContainerSpec("ps", image.reference, ps_workload)],
            resources=ResourceRequest(
                cpus=manifest.cpus_per_parameter_server, memory_gb=8.0),
            restart_policy=RESTART_ON_FAILURE,
            labels={"type": "ps", "job": job.job_id})
        template.volume_claims = [job.pvc_name]
        ps_set = StatefulSet(
            meta=ObjectMeta(name=job.ps_set_name,
                            labels={"job": job.job_id}),
            replicas=manifest.parameter_servers, template=template,
            gang=self.config.gang_scheduling,
            gang_name=job.statefulset_name, gang_size=gang_size)
        self.cluster.api.create_statefulset(ps_set)

    def _on_pod_change(self, verb: str, pod) -> None:
        # Stamp setup latencies onto FfDL pods at creation time.
        if verb == "ADDED" and "pod-setup-seconds" not in pod.meta.annotations:
            pod_type = pod.meta.labels.get("type")
            if pod_type == "learner":
                setup = pod.meta.labels.get("pod-setup") or \
                    pod.spec.node_selector.get("pod-setup", "")
                setup = setup or str(sum(
                    self.config.learner_pod_setup_s) / 2)
                pod.meta.annotations["pod-setup-seconds"] = setup
            elif pod_type == "lhelper":
                pod.meta.annotations["pod-setup-seconds"] = str(
                    self.config.helper_pod_setup_s)
            elif pod_type == "jobmonitor":
                pod.meta.annotations["pod-setup-seconds"] = str(
                    self.config.guardian_pod_setup_s)
        # Detect Guardians whose K8S Job exhausted its retries.  A guardian
        # pod can end as Failed (crash) or simply vanish (node eviction).
        if (verb == "MODIFIED" and pod.phase == "Failed") or \
                verb == "DELETED":
            job_id = pod.meta.labels.get("job")
            if job_id is None or pod.meta.labels.get("type") != \
                    "jobmonitor":
                return
            job = self.jobs.get(job_id)
            if job is None:
                return
            kube_job = next(
                (kj for kj in self.cluster.api._list("jobs")
                 if kj.meta.uid == pod.meta.owner), None)
            if kube_job is None:
                return
            if kube_job.succeeded == 0 and \
                    kube_job.failed_attempts > kube_job.backoff_limit:
                self.record_status(job, st.FAILED,
                                   "guardian exhausted retries")
                # Nobody is left to garbage-collect the job: reclaim its
                # objects here or they would hold GPUs forever.
                if self.enable_failure_cleanup:
                    self._cleanup_job_objects(job)

    def _cleanup_job_objects(self, job: TrainingJob) -> None:
        """Best-effort teardown of a job's Kubernetes objects (used when
        the Guardian can no longer do it)."""
        api = self.cluster.api
        for set_name in (job.statefulset_name, job.ps_set_name):
            if api.exists("statefulsets", set_name):
                api.delete_statefulset(set_name)
        if api.exists("deployments", job.helper_name):
            api.delete_deployment(job.helper_name)
        if api.exists("networkpolicies", job.netpol_name):
            api.delete_network_policy(job.netpol_name)
        if api.exists("pvcs", job.pvc_name):
            pvc = api.get_pvc(job.pvc_name)
            if pvc.volume is not None:
                pvc.volume.release()
            api.delete_pvc(job.pvc_name)
        self.etcd_store().delete_prefix(job_prefix(job.job_id))

    # -- preemption (driven by the admission-control layer) ----------------------------

    def preempt_job(self, job_id: str, reason: str = "preempted") -> None:
        """Tear a running job down, to be resumed later (Section 3.6).

        Teardown mirrors the production ordering: the Guardian stops, the
        volume claim is reclaimed, and the workload sets are deleted a
        moment later — so queued pods can briefly reference a deleted PVC
        (the 'persistentvolumeclaim not found' scheduler events of
        Table 8).
        """
        job = self.job(job_id)
        job.preempted = True
        api = self.cluster.api
        # Stop the Guardian first so it does not observe the teardown as a
        # failure.
        for name in (job.guardian_job_name,
                     *(f"{job.guardian_job_name}-r{i}"
                       for i in range(1, job.guardian_attempts + 1))):
            if api.exists("jobs", name):
                api.delete_job(name)
        if api.exists("pvcs", job.pvc_name):
            pvc = api.get_pvc(job.pvc_name)
            if pvc.volume is not None:
                pvc.volume.release()
            api.delete_pvc(job.pvc_name)

        def teardown_sets():
            # PVC reclaim settles before the workload sets are deleted
            # (the production teardown pace); queued pods can observe the
            # missing claim in between.
            yield self.env.timeout(5.0)
            for set_name in (job.statefulset_name, job.ps_set_name):
                if api.exists("statefulsets", set_name):
                    api.delete_statefulset(set_name)
            if api.exists("deployments", job.helper_name):
                api.delete_deployment(job.helper_name)
            if api.exists("networkpolicies", job.netpol_name):
                api.delete_network_policy(job.netpol_name)

        self.env.process(teardown_sets(), name=f"preempt:{job.job_id}")
        self.etcd_store().delete_prefix(job_prefix(job.job_id))
        self.admission.note_preempted(job.job_id)
        self.record_status(job, st.HALTED, reason)

    # -- fault-injection surface (benches and tests) -------------------------------------

    def start_utilization_sampler(self, interval_s: float = 60.0):
        """Periodically record cluster GPU utilization into the metrics
        service ("FfDL also monitors the usage of the cluster in terms of
        the percentage of GPUs currently allotted to jobs", Section 3.7).
        Returns the sampler process (interrupt it to stop)."""

        def sampler():
            while True:
                self.metrics.emit("cluster_gpu_utilization",
                                  self.cluster.gpu_utilization())
                self.metrics.emit("cluster_allocated_gpus",
                                  float(self.cluster.allocated_gpus()))
                yield self.env.timeout(interval_s)

        return self.env.process(sampler(), name="gpu-sampler")

    def crash_api_replica(self) -> float:
        return self.api_service.crash_replica()

    def crash_lcm_replica(self) -> float:
        return self.lcm.crash_replica()

    def guardian_pod(self, job_id: str):
        """The currently live Guardian pod for a job, if any."""
        for pod in self.cluster.api.list_pods():
            if pod.meta.labels.get("job") == job_id and \
                    pod.meta.labels.get("type") == "jobmonitor" and \
                    not pod.is_terminal:
                return pod
        return None

    def learner_pods(self, job_id: str):
        return [pod for pod in self.cluster.api.list_pods()
                if pod.meta.labels.get("job") == job_id
                and pod.meta.labels.get("type") == "learner"]

    def helper_pod(self, job_id: str):
        for pod in self.cluster.api.list_pods():
            if pod.meta.labels.get("job") == job_id and \
                    pod.meta.labels.get("type") == "lhelper" and \
                    not pod.is_terminal:
                return pod
        return None

    def kill_pod_containers(self, pod_name: str) -> None:
        """Crash every container in a pod (kubectl-style fault)."""
        pod = self.cluster.api.get_pod(pod_name)
        kubelet = self.cluster.kubelets[pod.node_name]
        for container in kubelet.containers_for(pod_name):
            container.kill()
