"""Priority management (the paper's "ongoing work", Section 3.6).

"More advanced priority management (PM) based on demand-driven pricing for
external users, and exponentially decreasing priorities for heavy internal
users are part of ongoing work."

This module implements both policies as an extension:

* Internal users: effective priority decays exponentially with their
  recent GPU-hours, so heavy users yield to light ones.
* External users: a demand-driven price multiplier rises with cluster
  utilization; a job's priority is what its owner is willing to pay
  relative to the current price.

The :class:`PriorityManager` produces a dispatch order for queued jobs; it
is deliberately separate from FfDL itself ("AC and PM policies ... are
logically external to FfDL").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

INTERNAL = "internal"
EXTERNAL = "external"


@dataclass
class UsageRecord:
    """Decayed GPU-hours accounting for one user."""

    gpu_hours: float = 0.0
    last_update_s: float = 0.0


@dataclass
class PricedBid:
    """An external user's willingness to pay (multiplier over base price)."""

    user: str
    bid_multiplier: float = 1.0


class PriorityManager:
    """Computes dispatch priorities for queued jobs."""

    def __init__(self, half_life_hours: float = 24.0,
                 base_priority: float = 100.0,
                 price_sensitivity: float = 2.0):
        if half_life_hours <= 0:
            raise ValueError("half life must be positive")
        self.half_life_hours = half_life_hours
        self.base_priority = base_priority
        self.price_sensitivity = price_sensitivity
        self._usage: Dict[str, UsageRecord] = {}
        self._kind: Dict[str, str] = {}
        self._bids: Dict[str, float] = {}

    # -- registration --------------------------------------------------------

    def register_internal(self, user: str) -> None:
        self._kind[user] = INTERNAL
        self._usage.setdefault(user, UsageRecord())

    def register_external(self, user: str,
                          bid_multiplier: float = 1.0) -> None:
        if bid_multiplier <= 0:
            raise ValueError("bid multiplier must be positive")
        self._kind[user] = EXTERNAL
        self._bids[user] = bid_multiplier

    def user_kind(self, user: str) -> Optional[str]:
        return self._kind.get(user)

    # -- usage accounting ------------------------------------------------------

    def _decay(self, record: UsageRecord, now_s: float) -> None:
        elapsed_hours = max(0.0, (now_s - record.last_update_s) / 3600.0)
        record.gpu_hours *= 0.5 ** (elapsed_hours / self.half_life_hours)
        record.last_update_s = now_s

    def charge(self, user: str, gpus: int, duration_s: float,
               now_s: float) -> None:
        """Record GPU consumption (called when a job finishes a slice)."""
        record = self._usage.setdefault(user, UsageRecord())
        self._decay(record, now_s)
        record.gpu_hours += gpus * duration_s / 3600.0

    def decayed_usage(self, user: str, now_s: float) -> float:
        record = self._usage.get(user)
        if record is None:
            return 0.0
        self._decay(record, now_s)
        return record.gpu_hours

    # -- pricing -----------------------------------------------------------------

    def current_price(self, cluster_utilization: float) -> float:
        """Demand-driven price multiplier: 1.0 when idle, rising steeply
        as the cluster saturates."""
        utilization = min(1.0, max(0.0, cluster_utilization))
        return 1.0 + self.price_sensitivity * utilization ** 2

    # -- priorities ----------------------------------------------------------------

    def priority(self, user: str, now_s: float,
                 cluster_utilization: float = 0.0) -> float:
        kind = self._kind.get(user, INTERNAL)
        if kind == EXTERNAL:
            price = self.current_price(cluster_utilization)
            bid = self._bids.get(user, 1.0)
            # Users bidding at or above the going rate keep full priority;
            # underbidders fall off proportionally.
            return self.base_priority * min(1.5, bid / price)
        usage = self.decayed_usage(user, now_s)
        # Exponentially decreasing priority for heavy internal users: each
        # "half-life worth" of recent consumption halves the priority.
        return self.base_priority * math.exp(-usage /
                                             (self.half_life_hours * 4))

    def dispatch_order(self, queued: Sequence[tuple], now_s: float,
                       cluster_utilization: float = 0.0) -> List[str]:
        """Order queued jobs.

        ``queued`` is a sequence of (job_id, user, submit_time_s).  Jobs
        sort by descending priority, then FCFS within equal priority.
        """
        scored = []
        for job_id, user, submit_time in queued:
            score = self.priority(user, now_s, cluster_utilization)
            scored.append((-score, submit_time, job_id))
        scored.sort()
        return [job_id for _s, _t, job_id in scored]
