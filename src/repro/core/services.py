"""Replicated FfDL microservices and their crash/recovery behaviour.

"Each microservice is replicated, with the number of replicas chosen based
on the size of the cluster ... gRPC requests to them are automatically
load balanced by K8S among the available replicas" (Section 3.7).  The
Table 3 benchmark crashes replicas and measures time-to-recovery; requests
issued while every replica is down wait for the first recovery, which is
how the "stateless microservices restart fastest" property shows up.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.metrics import TrainingMetricsService
from repro.errors import DeadlineExceededError
from repro.resilience import Deadline
from repro.sim.core import Environment, Event
from repro.sim.rng import RngRegistry


class Microservice:
    """A load-balanced replica set of one FfDL core service."""

    def __init__(self, env: Environment, rng: RngRegistry, name: str,
                 replicas: int = 2,
                 recovery_range_s: Tuple[float, float] = (3.0, 5.0),
                 request_latency_s: float = 0.003,
                 metrics: Optional[TrainingMetricsService] = None):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.env = env
        self.rng = rng.stream(f"microservice:{name}")
        self.name = name
        self.replicas = replicas
        self.replicas_up = replicas
        self.recovery_range_s = recovery_range_s
        self.request_latency_s = request_latency_s
        self.metrics = metrics
        self._recovered = env.event()
        self.crash_count = 0
        self.requests_served = 0
        self.recovery_log: List[Tuple[float, float]] = []  # (down, up)

    @property
    def available(self) -> bool:
        return self.replicas_up > 0

    def crash_replica(self) -> float:
        """Kill one replica; returns the sampled recovery duration."""
        if self.replicas_up <= 0:
            return 0.0
        self.replicas_up -= 1
        self.crash_count += 1
        if self.metrics is not None:
            self.metrics.record_failure(self.name)
        lo, hi = self.recovery_range_s
        recovery = lo + (hi - lo) * self.rng.random()
        down_at = self.env.now
        self.env.process(self._recover(recovery, down_at),
                         name=f"recover:{self.name}")
        return recovery

    def _recover(self, after_s: float, down_at: float):
        yield self.env.timeout(after_s)
        self.replicas_up += 1
        self.recovery_log.append((down_at, self.env.now))
        if self.metrics is not None:
            self.metrics.record_recovery(self.name)
        if not self._recovered.triggered:
            self._recovered.succeed()

    def call(self, action: Callable[[], object],
             deadline_s: Optional[float] = None) -> Event:
        """Invoke ``action`` through the service: waits for availability,
        pays the request latency, resolves with the result (awaiting any
        Event the action returns).

        With ``deadline_s``, the wait for an available replica is raced
        against the deadline — a request to a fully-crashed replica set
        fails with :class:`DeadlineExceededError` instead of hanging for
        the whole recovery.
        """
        deadline = Deadline(self.env, deadline_s) \
            if deadline_s is not None else None

        def request():
            while not self.available:
                if deadline is not None and deadline.expired:
                    raise DeadlineExceededError(
                        f"{self.name} unavailable past the "
                        f"{deadline.timeout_s}s deadline")
                self._recovered = self.env.event() \
                    if self._recovered.triggered else self._recovered
                if deadline is None:
                    yield self._recovered
                else:
                    yield self.env.any_of([
                        self._recovered,
                        self.env.timeout(deadline.remaining_s)])
            yield self.env.timeout(self.request_latency_s)
            self.requests_served += 1
            result = action()
            if isinstance(result, Event):
                result = yield result
            return result

        return self.env.process(request(), name=f"rpc:{self.name}")
