"""Replicated FfDL microservices and their crash/recovery behaviour.

"Each microservice is replicated, with the number of replicas chosen based
on the size of the cluster ... gRPC requests to them are automatically
load balanced by K8S among the available replicas" (Section 3.7).  The
Table 3 benchmark crashes replicas and measures time-to-recovery; requests
issued while every replica is down wait for the first recovery, which is
how the "stateless microservices restart fastest" property shows up.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.metrics import TrainingMetricsService
from repro.errors import CircuitOpenError, DeadlineExceededError
from repro.resilience import CircuitBreaker, Deadline
from repro.sim.core import Environment, Event
from repro.sim.rng import RngRegistry


class Microservice:
    """A load-balanced replica set of one FfDL core service.

    An optional :class:`~repro.resilience.CircuitBreaker` guards the
    call path: deadline misses against a fully-crashed replica set count
    as failures, an OPEN breaker fails calls fast with
    :class:`~repro.errors.CircuitOpenError` (instead of burning each
    caller's deadline against the same dead backend), and the HALF_OPEN
    probe after the reset window rides an ordinary request.
    """

    def __init__(self, env: Environment, rng: RngRegistry, name: str,
                 replicas: int = 2,
                 recovery_range_s: Tuple[float, float] = (3.0, 5.0),
                 request_latency_s: float = 0.003,
                 metrics: Optional[TrainingMetricsService] = None,
                 breaker: Optional[CircuitBreaker] = None):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.env = env
        self.rng = rng.stream(f"microservice:{name}")
        self.name = name
        self.replicas = replicas
        self.replicas_up = replicas
        self.recovery_range_s = recovery_range_s
        self.request_latency_s = request_latency_s
        self.metrics = metrics
        self.breaker = breaker
        self._recovered = env.event()
        #: True while a whole-cell blackout holds every replica down;
        #: pending per-replica recoveries are ignored until restore().
        self._held_down = False
        self.crash_count = 0
        self.requests_served = 0
        self.recovery_log: List[Tuple[float, float]] = []  # (down, up)

    @property
    def available(self) -> bool:
        return self.replicas_up > 0

    def crash_replica(self) -> float:
        """Kill one replica; returns the sampled recovery duration."""
        if self.replicas_up <= 0:
            return 0.0
        self.replicas_up -= 1
        self.crash_count += 1
        if self.metrics is not None:
            self.metrics.record_failure(self.name)
        lo, hi = self.recovery_range_s
        recovery = lo + (hi - lo) * self.rng.random()
        down_at = self.env.now
        self.env.process(self._recover(recovery, down_at),
                         name=f"recover:{self.name}")
        return recovery

    def take_down(self) -> None:
        """Hold the whole replica set down (whole-cell blackout): no
        replica restarts until :meth:`restore`."""
        self.crash_count += self.replicas_up
        self.replicas_up = 0
        self._held_down = True
        if self.metrics is not None:
            self.metrics.record_failure(self.name)

    def restore(self) -> None:
        """End a blackout: every replica comes back at once."""
        if not self._held_down:
            return
        self._held_down = False
        self.replicas_up = self.replicas
        self.recovery_log.append((self.env.now, self.env.now))
        if self.metrics is not None:
            self.metrics.record_recovery(self.name)
        if not self._recovered.triggered:
            self._recovered.succeed()

    def _recover(self, after_s: float, down_at: float):
        yield self.env.timeout(after_s)
        if self._held_down or self.replicas_up >= self.replicas:
            # A blackout swallowed this restart, or restore() already
            # brought the full set back while it was pending.
            return
        self.replicas_up += 1
        self.recovery_log.append((down_at, self.env.now))
        if self.metrics is not None:
            self.metrics.record_recovery(self.name)
        if not self._recovered.triggered:
            self._recovered.succeed()

    def call(self, action: Callable[[], object],
             deadline_s: Optional[float] = None) -> Event:
        """Invoke ``action`` through the service: waits for availability,
        pays the request latency, resolves with the result (awaiting any
        Event the action returns).

        With ``deadline_s``, the wait for an available replica is raced
        against the deadline — a request to a fully-crashed replica set
        consumes its deadline against recovery time and fails with
        :class:`DeadlineExceededError` instead of hanging for the whole
        recovery.  With a breaker attached, an OPEN circuit rejects the
        call immediately with :class:`CircuitOpenError`.
        """
        deadline = Deadline(self.env, deadline_s) \
            if deadline_s is not None else None
        breaker = self.breaker

        def request():
            if breaker is not None and not breaker.allow():
                raise CircuitOpenError(
                    f"circuit {breaker.name!r} is {breaker.state}")
            try:
                while not self.available:
                    if deadline is not None and deadline.expired:
                        raise DeadlineExceededError(
                            f"{self.name} unavailable past the "
                            f"{deadline.timeout_s}s deadline")
                    self._recovered = self.env.event() \
                        if self._recovered.triggered else self._recovered
                    if deadline is None:
                        yield self._recovered
                    else:
                        yield self.env.any_of([
                            self._recovered,
                            self.env.timeout(deadline.remaining_s)])
                yield self.env.timeout(self.request_latency_s)
            except DeadlineExceededError:
                if breaker is not None:
                    breaker.record_failure()
                raise
            self.requests_served += 1
            # A served request proves the replica set is reachable; a
            # semantic error from the action is not an availability
            # signal, so the breaker closes here (half-open probes
            # included), before the action runs.
            if breaker is not None:
                breaker.record_success()
            result = action()
            if isinstance(result, Event):
                result = yield result
            return result

        return self.env.process(request(), name=f"rpc:{self.name}")
