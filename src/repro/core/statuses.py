"""DL job status state machine.

The paper motivates FfDL partly by the need for "DL-specific job statuses
(e.g., DOWNLOADING, PROCESSING, STORING, HALTED, RESUMED etc.)" beyond the
generic cluster-manager ones, with dependable timestamps ("users use
associated timestamps for job profiling and debugging", Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import PlatformError

QUEUED = "QUEUED"
DEPLOYING = "DEPLOYING"
DOWNLOADING = "DOWNLOADING"
PROCESSING = "PROCESSING"
STORING = "STORING"
COMPLETED = "COMPLETED"
FAILED = "FAILED"
HALTED = "HALTED"
RESUMED = "RESUMED"

ALL_STATUSES = (QUEUED, DEPLOYING, DOWNLOADING, PROCESSING, STORING,
                COMPLETED, FAILED, HALTED, RESUMED)

TERMINAL_STATUSES = (COMPLETED, FAILED)

#: Legal transitions.  RESUMED re-enters the active pipeline; a restart
#: after failure re-deploys.
_TRANSITIONS = {
    QUEUED: {DEPLOYING, FAILED, HALTED},
    DEPLOYING: {DOWNLOADING, PROCESSING, STORING, COMPLETED, FAILED,
                HALTED, QUEUED},
    # Watch coalescing can skip intermediate statuses; restarts go back to
    # DOWNLOADING.
    DOWNLOADING: {PROCESSING, STORING, COMPLETED, FAILED, HALTED,
                  DOWNLOADING},
    PROCESSING: {STORING, COMPLETED, FAILED, HALTED, DOWNLOADING,
                 PROCESSING},
    STORING: {COMPLETED, FAILED, HALTED, DOWNLOADING, STORING},
    HALTED: {RESUMED, FAILED},
    RESUMED: {DEPLOYING, DOWNLOADING, PROCESSING, FAILED},
    COMPLETED: set(),
    FAILED: {QUEUED},  # operator-driven full restart
}


@dataclass
class StatusRecord:
    status: str
    time: float
    message: str = ""


@dataclass
class StatusHistory:
    """Current status plus the full timestamped history."""

    records: List[StatusRecord] = field(default_factory=list)

    @property
    def current(self) -> Optional[str]:
        return self.records[-1].status if self.records else None

    def transition(self, status: str, time: float,
                   message: str = "") -> StatusRecord:
        if status not in ALL_STATUSES:
            raise PlatformError(f"unknown status {status!r}")
        current = self.current
        if current is not None and status not in _TRANSITIONS[current]:
            raise PlatformError(
                f"illegal status transition {current} -> {status}")
        record = StatusRecord(status, time, message)
        self.records.append(record)
        return record

    def duration_in(self, status: str) -> float:
        """Total time spent in ``status`` (open interval if current)."""
        total = 0.0
        for i, record in enumerate(self.records):
            if record.status != status:
                continue
            if i + 1 < len(self.records):
                total += self.records[i + 1].time - record.time
        return total

    def time_of(self, status: str) -> Optional[float]:
        """Timestamp of the first entry into ``status``."""
        for record in self.records:
            if record.status == status:
                return record.time
        return None

    def timeline(self) -> List[Tuple[str, float]]:
        return [(r.status, r.time) for r in self.records]

    @property
    def is_terminal(self) -> bool:
        return self.current in TERMINAL_STATUSES


def is_valid_transition(src: Optional[str], dst: str) -> bool:
    if src is None:
        return True
    return dst in _TRANSITIONS.get(src, set())
