"""T-shirt resource sizing for learner pods (Table 5).

"FfDL provides guidelines to users on resource sizing for learner pods
based on their GPU type.  The goal is to dimension the CPU threads per
learner to achieve close to 100% utilization of the GPUs" (Section 5.4).
Sizes are framework-agnostic by design ("for simplicity") and deliberately
over-provision CPU/RAM since GPUs are the scarce, expensive resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ValidationError
from repro.perfmodel.gpus import K80, P100, V100
from repro.perfmodel.models import MODEL_SPECS
from repro.perfmodel.throughput import saturation_threads


@dataclass(frozen=True)
class TShirtSize:
    """Recommended learner resources for one GPU configuration."""

    gpu_type: str
    gpus: int
    cpus: int
    memory_gb: int


#: Table 5 of the paper, verbatim.
TSHIRT_SIZES: Dict[Tuple[str, int], TShirtSize] = {
    (K80, 1): TShirtSize(K80, 1, 4, 24),
    (K80, 2): TShirtSize(K80, 2, 8, 48),
    (K80, 4): TShirtSize(K80, 4, 16, 96),
    (P100, 1): TShirtSize(P100, 1, 8, 24),
    (P100, 2): TShirtSize(P100, 2, 16, 48),
    (V100, 1): TShirtSize(V100, 1, 26, 24),
    (V100, 2): TShirtSize(V100, 2, 42, 48),
}

#: Observed learner memory need (Section 5.4: "learner pod memory of
#: around 9GB is sufficient for most of the jobs").
SUFFICIENT_MEMORY_GB = 9.0


def recommend(gpu_type: str, gpus: int) -> TShirtSize:
    """Look up the published recommendation for a GPU configuration."""
    try:
        return TSHIRT_SIZES[(gpu_type, gpus)]
    except KeyError:
        raise ValidationError(
            f"no t-shirt size for {gpus}x{gpu_type}") from None


def derive_cpus(gpu_type: str, gpus: int,
                target_fraction: float = 0.96) -> int:
    """Derive a CPU recommendation from the throughput model.

    Takes the worst-case (most CPU-hungry) calibrated model and finds the
    thread count that saturates it, scaled by GPU speed (faster GPUs need
    proportionally more feeding) and GPU count.  This is the procedure
    Section 5.4 describes; Table 5 is its (conservatively rounded) output.
    The 96% target matches the paper's observed plateau — Table 6 shows
    GPU utilization topping out around 90-98%, not a hard 100%.
    """
    from repro.perfmodel.gpus import gpu_spec

    hungriest = max(MODEL_SPECS.values(), key=lambda m: m.cpu_half_k)
    base = saturation_threads(hungriest, target_fraction)
    speed = gpu_spec(gpu_type).relative_speed
    v100_speed = gpu_spec(V100).relative_speed
    per_gpu = max(2, round(base * speed / v100_speed))
    return per_gpu * gpus


def memory_gb(gpus: int) -> int:
    """Memory recommendation: 24 GB per GPU slot (framework-agnostic,
    deliberately over SUFFICIENT_MEMORY_GB)."""
    return 24 * gpus
