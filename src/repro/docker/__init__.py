"""Container runtime substrate: images, a registry, and containers."""

from repro.docker.runtime import (
    CREATED,
    Container,
    EXITED,
    Image,
    RUNNING,
    Registry,
)

__all__ = ["CREATED", "Container", "EXITED", "Image", "Registry", "RUNNING"]
