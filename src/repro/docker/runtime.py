"""Docker-like container runtime.

FfDL only depends on the lifecycle semantics of containers — create, start,
observe exit code, kill — plus image pulls with node-local caching.  The
workload inside a container is an arbitrary simulation process supplied by
the creator (a learner training loop, a helper sidecar, an FfDL
microservice).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import ContainerError, ImageNotFoundError
from repro.sim.core import Environment, Event, Interrupt, Process

CREATED = "created"
RUNNING = "running"
EXITED = "exited"

#: Exit code recorded when a container is killed.
SIGKILL_EXIT_CODE = 137


@dataclass(frozen=True)
class Image:
    """A container image; framework images carry the DL stack."""

    name: str
    tag: str = "latest"
    framework: Optional[str] = None
    size_bytes: float = 2e9

    @property
    def reference(self) -> str:
        return f"{self.name}:{self.tag}"


class Registry:
    """An image registry with per-node pull caching."""

    def __init__(self, env: Environment, pull_bandwidth_bps: float = 2.5e8):
        self.env = env
        self.pull_bandwidth_bps = pull_bandwidth_bps
        self._images: Dict[str, Image] = {}
        self._node_caches: Dict[str, set] = {}
        self.pulls = 0
        self.cache_hits = 0

    def push(self, image: Image) -> None:
        self._images[image.reference] = image

    def get(self, reference: str) -> Image:
        image = self._images.get(reference)
        if image is None:
            raise ImageNotFoundError(reference)
        return image

    def pull(self, node_name: str, reference: str) -> Event:
        """Pull an image onto a node; near-instant when already cached."""
        image = self.get(reference)
        cache = self._node_caches.setdefault(node_name, set())
        self.pulls += 1

        def fetch():
            if reference in cache:
                self.cache_hits += 1
                yield self.env.timeout(0.1)  # docker inspect overhead
            else:
                yield self.env.timeout(image.size_bytes /
                                       self.pull_bandwidth_bps)
                cache.add(reference)
            return image

        return self.env.process(fetch(), name=f"pull:{reference}")


class Container:
    """One container instance executing a workload process."""

    _ids = itertools.count(1)

    def __init__(self, env: Environment, image: Image, name: str,
                 workload: Optional[Callable[["Container"],
                                             Generator]] = None):
        self.env = env
        self.image = image
        self.name = name
        self.container_id = f"c{next(Container._ids):08d}"
        self.state = CREATED
        self.exit_code: Optional[int] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.logs: List[Tuple[float, str]] = []
        self._workload = workload
        self._process: Optional[Process] = None
        self._workload_process: Optional[Process] = None
        self._exit_event: Event = env.event()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self.state != CREATED:
            raise ContainerError(
                f"container {self.name!r} already {self.state}")
        self.state = RUNNING
        self.started_at = self.env.now
        if self._workload is None:
            # An idle container (e.g. a sidecar waiting for kill).
            return
        self._workload_process = self.env.process(
            self._workload(self), name=f"workload:{self.name}")
        self._process = self.env.process(self._run(),
                                         name=f"container:{self.name}")

    def _run(self):
        try:
            result = yield self._workload_process
        except Interrupt:
            # Crash injection against the container itself: record the
            # kill and re-raise — the Interrupt must stay observable.
            self._finish(SIGKILL_EXIT_CODE)
            raise
        except Exception as err:  # noqa: BLE001 - user workload crash
            self.log(f"workload crashed: {err!r}")
            self._finish(1)
            return
        if self.state == EXITED:
            return  # killed while the workload was winding down
        code = result if isinstance(result, int) else 0
        self._finish(code)

    def _finish(self, code: int) -> None:
        if self.state == EXITED:
            return
        self.state = EXITED
        self.exit_code = code
        self.finished_at = self.env.now
        if not self._exit_event.triggered:
            self._exit_event.succeed(code)

    def kill(self) -> None:
        """SIGKILL the container (node crash, eviction, user stop)."""
        if self.state != RUNNING:
            return
        self._finish(SIGKILL_EXIT_CODE)
        if self._workload_process is not None \
                and self._workload_process.is_alive:
            self._workload_process.interrupt("killed")

    def wait(self) -> Event:
        """Event resolving with the exit code once the container exits."""
        if self.state == EXITED:
            done = self.env.event()
            done.succeed(self.exit_code)
            return done
        return self._exit_event

    # -- introspection -----------------------------------------------------------

    def log(self, line: str) -> None:
        self.logs.append((self.env.now, line))

    @property
    def is_running(self) -> bool:
        return self.state == RUNNING

    @property
    def runtime_s(self) -> Optional[float]:
        if self.started_at is None:
            return None
        end = self.finished_at if self.finished_at is not None \
            else self.env.now
        return end - self.started_at

    def __repr__(self) -> str:
        return (f"Container({self.name!r}, image={self.image.reference!r}, "
                f"state={self.state!r}, exit_code={self.exit_code})")
