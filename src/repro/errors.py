"""Exception hierarchy shared across the FfDL reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish platform faults from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised when the discrete-event kernel is misused."""


class InvariantViolation(ReproError):
    """A runtime invariant checker observed a safety violation."""


class ConsensusError(ReproError):
    """Raised by the Raft implementation on protocol violations."""


class NotLeaderError(ConsensusError):
    """A write was submitted to a Raft node that is not the leader."""

    def __init__(self, node_id: str, leader_hint: str | None = None):
        super().__init__(f"node {node_id} is not the leader")
        self.node_id = node_id
        self.leader_hint = leader_hint


class ResilienceError(ReproError):
    """Raised by the client-side resilience layer (:mod:`repro.resilience`)."""


class RetryExhaustedError(ResilienceError):
    """A retried call failed on every attempt the policy allowed."""


class CircuitOpenError(ResilienceError):
    """A call was rejected because its circuit breaker is open."""


class DeadlineExceededError(ResilienceError):
    """A call (or its retries) outlived its deadline."""


class StoreError(ReproError):
    """Raised by the etcd / MongoDB substrates."""


class StoreUnavailableError(StoreError):
    """The store is temporarily unreachable (outage, failover in progress).

    This is the *transient* store failure: retry policies treat it as
    retryable, unlike its :class:`StoreError` siblings which signal
    semantic errors (missing keys, failed compares) that a retry cannot
    fix."""


class KeyNotFoundError(StoreError):
    """A key or document was not found."""


class CompareFailedError(StoreError):
    """An etcd transaction's compare guard failed."""


class LeaseExpiredError(StoreError):
    """An operation referenced a lease that has already expired."""


class DuplicateKeyError(StoreError):
    """A unique index would be violated by an insert."""


class ObjectStorageError(ReproError):
    """Raised by the object storage service."""


class ObjectStorageUnavailableError(ObjectStorageError):
    """The object store is inside an injected outage window (transient)."""


class NoSuchBucketError(ObjectStorageError):
    """The referenced bucket does not exist."""


class NoSuchObjectError(ObjectStorageError):
    """The referenced object key does not exist."""


class AccessDeniedError(ObjectStorageError):
    """Credentials do not grant access to the bucket."""


class NFSError(ReproError):
    """Raised by the simulated NFS substrate."""


class ProvisioningError(NFSError):
    """Dynamic volume provisioning failed (e.g. under heavy load)."""


class ContainerError(ReproError):
    """Raised by the container runtime."""


class ImageNotFoundError(ContainerError):
    """The requested image is not present in the registry."""


class KubeError(ReproError):
    """Raised by the simulated orchestrator."""


class ObjectNotFoundError(KubeError):
    """A named API object does not exist."""


class ConflictError(KubeError):
    """An API write conflicted (already exists / stale resource version)."""


class UnschedulableError(KubeError):
    """The scheduler could not place a pod."""


class PlatformError(ReproError):
    """Raised by the FfDL core services."""


class ValidationError(PlatformError):
    """A job manifest failed validation."""


class JobNotFoundError(PlatformError):
    """The referenced training job does not exist."""


class QuotaExceededError(PlatformError):
    """Admission control rejected a job because the tenant is over quota."""


class DeploymentFailedError(PlatformError):
    """The Guardian exhausted its deployment retries."""


class FederationError(ReproError):
    """Raised by the multi-cell federation layer."""


class CellUnavailableError(FederationError):
    """The targeted cell is blacked out or unreachable over the bus."""


class IntentConflictError(FederationError):
    """An intent-log transition raced a newer generation (stale retry)."""
