"""etcd substrate: KV store with revisions, watches, leases; Raft-replicated."""

from repro.etcd.client import DEFAULT_ETCD_LATENCY_S, EtcdClient
from repro.etcd.kv import (
    Compare,
    DELETE,
    EtcdStore,
    KeyValue,
    Lease,
    Op,
    PUT,
    WatchEvent,
    Watcher,
)
from repro.etcd.replicated import ReplicatedEtcd

__all__ = [
    "Compare",
    "DEFAULT_ETCD_LATENCY_S",
    "DELETE",
    "EtcdClient",
    "EtcdStore",
    "KeyValue",
    "Lease",
    "Op",
    "PUT",
    "ReplicatedEtcd",
    "Watcher",
    "WatchEvent",
]
