"""Client facade over standalone or replicated etcd.

FfDL components (Guardian, controller, LCM) talk to etcd through this
client.  Every call returns a sim :class:`Event` that fires after the
configured request latency — the paper's rationale for choosing etcd over
MongoDB for coordination ("much faster", streaming watches) is reproduced by
giving the two stores their measured latency profiles (see the
``ablation_status_store`` benchmark).
"""

from __future__ import annotations

from typing import Any, List, Optional, Union

from repro.errors import ConsensusError, StoreUnavailableError
from repro.etcd.kv import Compare, EtcdStore, Op, Watcher
from repro.etcd.replicated import ReplicatedEtcd
from repro.resilience import CircuitBreaker, Deadline, RetryPolicy, retry_call
from repro.sim.core import Environment, Event
from repro.sim.rng import RngRegistry

#: Request latency of a lightly loaded etcd (single-digit milliseconds).
DEFAULT_ETCD_LATENCY_S = 0.002

#: etcd failures worth retrying: injected outages and Raft proposals that
#: could not commit (leader loss, partition) — never semantic errors.
RETRYABLE_ETCD_ERRORS = (StoreUnavailableError, ConsensusError)

Backend = Union[EtcdStore, ReplicatedEtcd]


class EtcdClient:
    """Issue etcd operations as simulation processes.

    With ``retry`` set, every operation runs under the policy's bounded
    exponential backoff (jitter drawn from the registry's
    ``resilience:etcd-client`` stream), optionally guarded by a
    ``breaker`` and a per-call deadline (``deadline_s``, checked between
    attempts).  The defaults keep the legacy single-shot behaviour.
    """

    def __init__(self, env: Environment, backend: Backend,
                 latency_s: float = DEFAULT_ETCD_LATENCY_S,
                 rng: Optional[RngRegistry] = None,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 deadline_s: Optional[float] = None):
        self.env = env
        self.backend = backend
        self.latency_s = latency_s
        self.retry = retry
        self.breaker = breaker
        self.default_deadline_s = deadline_s
        self._retry_stream = rng.stream("resilience:etcd-client") \
            if rng is not None else None
        self.ops_issued = 0
        self.retries = 0
        #: Chaos hook: while False every request fails with
        #: StoreUnavailableError after the request latency (a dead
        #: standalone etcd; replicated outages go through Raft faults).
        self.available = True

    def set_available(self, available: bool) -> None:
        self.available = available

    @property
    def _replicated(self) -> bool:
        return isinstance(self.backend, ReplicatedEtcd)

    def _read_store(self) -> EtcdStore:
        if self._replicated:
            return self.backend.hub
        return self.backend

    def _call(self, action) -> Event:
        """Run ``action`` after the request latency; resolve with its result."""
        self.ops_issued += 1

        def attempt() -> Event:
            def op():
                yield self.env.timeout(self.latency_s)
                if not self.available:
                    raise StoreUnavailableError("etcd is unavailable")
                result = action()
                if isinstance(result, Event):
                    result = yield result
                return result

            return self.env.process(op(), name="etcd-op")

        if self.retry is None and self.breaker is None \
                and self.default_deadline_s is None:
            return attempt()

        def count_retry(_attempt: int, _err: BaseException) -> None:
            self.retries += 1

        deadline = Deadline(self.env, self.default_deadline_s) \
            if self.default_deadline_s is not None else None
        return self.env.process(
            retry_call(self.env, self._retry_stream, attempt,
                       self.retry or RetryPolicy(max_attempts=1),
                       retry_on=RETRYABLE_ETCD_ERRORS,
                       breaker=self.breaker, deadline=deadline,
                       on_retry=count_retry),
            name="etcd-op")

    # -- writes ----------------------------------------------------------------

    def put(self, key: str, value: Any,
            lease_id: Optional[int] = None) -> Event:
        if self._replicated:
            return self._call(lambda: self.backend.put(key, value, lease_id))
        return self._call(lambda: self.backend.put(key, value, lease_id))

    def delete(self, key: str) -> Event:
        return self._call(lambda: self.backend.delete(key))

    def delete_prefix(self, prefix: str) -> Event:
        return self._call(lambda: self.backend.delete_prefix(prefix))

    def txn(self, compares: List[Compare], on_success: List[Op],
            on_failure: List[Op] = ()) -> Event:
        return self._call(
            lambda: self.backend.txn(compares, on_success, on_failure))

    # -- reads ------------------------------------------------------------------

    def get(self, key: str) -> Event:
        return self._call(lambda: self._read_store().get(key))

    def get_value(self, key: str) -> Event:
        """Like :meth:`get` but resolves with the bare value (or None)."""

        def read():
            kv = self._read_store().get(key)
            return kv.value if kv is not None else None

        return self._call(read)

    def range(self, prefix: str) -> Event:
        return self._call(lambda: self._read_store().range(prefix))

    # -- watches -----------------------------------------------------------------

    def watch(self, key: str) -> Watcher:
        return self._read_store().watch(key)

    def watch_prefix(self, prefix: str) -> Watcher:
        return self._read_store().watch_prefix(prefix)

    # -- leases -------------------------------------------------------------------

    def grant_lease(self, ttl_s: float) -> Event:
        if self._replicated:
            return self._call(lambda: self.backend.grant_lease(ttl_s))
        return self._call(lambda: self.backend.grant_lease(ttl_s))

    def keepalive(self, lease_id: int) -> Event:
        return self._call(lambda: self._keepalive(lease_id))

    def _keepalive(self, lease_id: int) -> bool:
        if self._replicated:
            return self.backend.keepalive(lease_id)
        return self.backend.keepalive(lease_id)

    def revoke(self, lease_id: int) -> Event:
        if self._replicated:
            return self._call(lambda: self.backend.hub.revoke(lease_id))
        return self._call(lambda: self.backend.revoke(lease_id))

    def lease_alive(self, lease_id: int) -> bool:
        if self._replicated:
            return self.backend.lease_alive(lease_id)
        return self.backend.lease_alive(lease_id)
