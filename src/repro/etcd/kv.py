"""The etcd key-value core: revisions, ranges, transactions, watches, leases.

:class:`EtcdStore` is a faithful single-node model of the etcd v3 data
model subset that FfDL relies on (Section 3.2 of the paper): small values,
per-key *streaming watches*, leases with TTL, and compare-and-swap
transactions.  Replication is layered on separately
(:mod:`repro.etcd.replicated`) via Raft.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import CompareFailedError, LeaseExpiredError, StoreError
from repro.perf.flags import optimizations_enabled
from repro.sim.core import Environment
from repro.sim.race import note_read, note_write
from repro.sim.resources import Store as EventQueue

PUT = "PUT"
DELETE = "DELETE"


@dataclass
class KeyValue:
    """One stored key-value pair with etcd-style revision bookkeeping."""

    key: str
    value: Any
    create_revision: int
    mod_revision: int
    version: int = 1
    lease_id: Optional[int] = None


@dataclass
class WatchEvent:
    """A change notification delivered to watchers."""

    type: str  # PUT or DELETE
    key: str
    value: Any
    revision: int
    prev_value: Any = None


@dataclass
class Compare:
    """A transaction guard: compare a key's field against a target value.

    ``field`` is one of ``value``, ``version``, ``mod_revision``,
    ``create_revision``; ``op`` is one of ``==``, ``!=``, ``<``, ``>``.
    A ``version`` of 0 means "key does not exist", matching etcd semantics.
    """

    key: str
    field: str = "value"
    op: str = "=="
    target: Any = None


@dataclass
class Op:
    """A transaction operation: ('put', key, value) or ('delete', key)."""

    kind: str
    key: str
    value: Any = None
    lease_id: Optional[int] = None


@dataclass
class Lease:
    """A TTL lease; keys attached to it are deleted when it expires."""

    lease_id: int
    ttl_s: float
    deadline: float
    keys: set = field(default_factory=set)
    revoked: bool = False


class Watcher:
    """A streaming watch on a key or prefix.

    Events arrive in commit order on :attr:`queue`; consume them with
    ``event = yield watcher.get()``.  Watchers are usable as context
    managers, which is the recommended idiom for scoped watches::

        with store.watch_prefix("/jobs/") as watcher:
            event = yield watcher.get()

    :meth:`close` (or leaving the ``with`` block) deregisters the
    watcher from the store's fanout index, so abandoned watchers cost
    nothing — they are not merely skipped on every subsequent write.
    """

    def __init__(self, env: Environment, key: str, is_prefix: bool):
        self.key = key
        self.is_prefix = is_prefix
        self.queue = EventQueue(env)
        self.cancelled = False
        #: Registration order within the owning store; fanout delivers
        #: to matching watchers in this order regardless of how the
        #: index found them.
        self._seq = 0
        self._store: Optional["EtcdStore"] = None

    def matches(self, key: str) -> bool:
        if self.is_prefix:
            return key.startswith(self.key)
        return key == self.key

    def get(self):
        """Return a sim event firing with the next :class:`WatchEvent`."""
        return self.queue.get()

    def pending(self) -> int:
        return len(self.queue)

    def close(self) -> None:
        """Stop the stream and deregister from the store index."""
        self.cancelled = True
        store, self._store = self._store, None
        if store is not None:
            store._remove_watcher(self)

    def cancel(self) -> None:
        """Historical name; identical to :meth:`close`."""
        self.close()

    def __enter__(self) -> "Watcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _PrefixTrieNode:
    """One character of the prefix-watch trie."""

    __slots__ = ("children", "watchers")

    def __init__(self) -> None:
        self.children: Dict[str, "_PrefixTrieNode"] = {}
        self.watchers: List[Watcher] = []


class EtcdStore:
    """Single-node etcd: the state machine replicated by Raft."""

    def __init__(self, env: Environment):
        self.env = env
        self._race_label = env.register_shared_store("etcd", self)
        self.revision = 0
        self._data: Dict[str, KeyValue] = {}
        #: All live watchers in registration order (the linear fallback
        #: scans this; the index preserves its order for fanout).
        self._watchers: List[Watcher] = []
        #: Fanout index: exact-key watchers by key, prefix watchers in a
        #: character trie.  ``None`` under REPRO_PERF_DISABLE.
        self._exact_watch: Optional[Dict[str, List[Watcher]]] = None
        self._prefix_trie: Optional[_PrefixTrieNode] = None
        if optimizations_enabled():
            self._exact_watch = {}
            self._prefix_trie = _PrefixTrieNode()
        self._watch_seq = 0
        #: Watchers *touched* by :meth:`_notify` fanout so far — the
        #: quantity BENCH_etcd.json tracks.  The linear scan touches
        #: every live watcher per write; the index touches only the
        #: matching ones.
        self.watcher_visits = 0
        self.notify_calls = 0
        self._leases: Dict[int, Lease] = {}
        self._next_lease_id = 1
        #: Optional hook invoked when a lease expires, before its keys are
        #: deleted.  The replicated store uses this to route expiry deletes
        #: through consensus.
        self.on_lease_expired: Optional[Callable[[Lease], None]] = None

    # -- reads -------------------------------------------------------------

    def get(self, key: str) -> Optional[KeyValue]:
        if self.env.race_detector is not None:
            note_read(self.env, self._race_label, key, "EtcdStore.get")
        return self._data.get(key)

    def range(self, prefix: str) -> List[KeyValue]:
        """All live keys with the given prefix, sorted by key."""
        found = [self._data[k] for k in sorted(self._data)
                 if k.startswith(prefix)]
        if self.env.race_detector is not None:
            for kv in found:
                note_read(self.env, self._race_label, kv.key,
                          "EtcdStore.range")
        return found

    def keys(self) -> List[str]:
        return sorted(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # -- writes ------------------------------------------------------------

    def put(self, key: str, value: Any,
            lease_id: Optional[int] = None) -> KeyValue:
        if self.env.race_detector is not None:
            note_write(self.env, self._race_label, key, "EtcdStore.put")
        if lease_id is not None:
            lease = self._leases.get(lease_id)
            if lease is None or lease.revoked:
                raise LeaseExpiredError(f"lease {lease_id} not alive")
            lease.keys.add(key)
        self.revision += 1
        existing = self._data.get(key)
        if existing is None:
            kv = KeyValue(key, value, self.revision, self.revision, 1,
                          lease_id)
        else:
            kv = KeyValue(key, value, existing.create_revision,
                          self.revision, existing.version + 1,
                          lease_id if lease_id is not None
                          else existing.lease_id)
        prev = existing.value if existing else None
        self._data[key] = kv
        self._notify(WatchEvent(PUT, key, value, self.revision, prev))
        return kv

    def delete(self, key: str) -> int:
        """Delete one key; returns the number of keys removed (0 or 1)."""
        if self.env.race_detector is not None:
            note_write(self.env, self._race_label, key,
                       "EtcdStore.delete")
        existing = self._data.pop(key, None)
        if existing is None:
            return 0
        self.revision += 1
        if existing.lease_id is not None:
            lease = self._leases.get(existing.lease_id)
            if lease is not None:
                lease.keys.discard(key)
        self._notify(WatchEvent(DELETE, key, None, self.revision,
                                existing.value))
        return 1

    def delete_prefix(self, prefix: str) -> int:
        count = 0
        for key in [k for k in self._data if k.startswith(prefix)]:
            count += self.delete(key)
        return count

    # -- transactions --------------------------------------------------------

    def check(self, compare: Compare) -> bool:
        if self.env.race_detector is not None:
            note_read(self.env, self._race_label, compare.key,
                      "EtcdStore.check")
        kv = self._data.get(compare.key)
        if compare.field == "value":
            actual = kv.value if kv else None
        elif compare.field == "version":
            actual = kv.version if kv else 0
        elif compare.field == "mod_revision":
            actual = kv.mod_revision if kv else 0
        elif compare.field == "create_revision":
            actual = kv.create_revision if kv else 0
        else:
            raise StoreError(f"unknown compare field {compare.field!r}")
        if compare.op == "==":
            return actual == compare.target
        if compare.op == "!=":
            return actual != compare.target
        if compare.op == "<":
            return actual < compare.target
        if compare.op == ">":
            return actual > compare.target
        raise StoreError(f"unknown compare op {compare.op!r}")

    def txn(self, compares: Iterable[Compare],
            on_success: Iterable[Op],
            on_failure: Iterable[Op] = ()) -> Tuple[bool, List[Any]]:
        """Atomically: if all compares hold, apply on_success, else on_failure.

        Returns ``(succeeded, results)``.
        """
        succeeded = all(self.check(c) for c in compares)
        ops = on_success if succeeded else on_failure
        results = []
        for op in ops:
            if op.kind == "put":
                results.append(self.put(op.key, op.value, op.lease_id))
            elif op.kind == "delete":
                results.append(self.delete(op.key))
            else:
                raise StoreError(f"unknown txn op {op.kind!r}")
        return succeeded, results

    def cas(self, key: str, expected_value: Any, new_value: Any) -> KeyValue:
        """Compare-and-swap convenience; raises on mismatch."""
        ok, results = self.txn(
            [Compare(key, "value", "==", expected_value)],
            [Op("put", key, new_value)])
        if not ok:
            raise CompareFailedError(
                f"cas on {key!r}: value != {expected_value!r}")
        return results[0]

    # -- watches --------------------------------------------------------------

    def watch(self, key: str) -> Watcher:
        return self._add_watcher(Watcher(self.env, key, is_prefix=False))

    def watch_prefix(self, prefix: str) -> Watcher:
        return self._add_watcher(Watcher(self.env, prefix, is_prefix=True))

    def _add_watcher(self, watcher: Watcher) -> Watcher:
        self._watch_seq += 1
        watcher._seq = self._watch_seq
        watcher._store = self
        self._watchers.append(watcher)
        if self._exact_watch is not None:
            if watcher.is_prefix:
                node = self._prefix_trie
                for char in watcher.key:
                    child = node.children.get(char)
                    if child is None:
                        child = node.children[char] = _PrefixTrieNode()
                    node = child
                node.watchers.append(watcher)
            else:
                self._exact_watch.setdefault(watcher.key, []) \
                    .append(watcher)
        return watcher

    def _remove_watcher(self, watcher: Watcher) -> None:
        """Deregister one watcher from the list and the fanout index."""
        try:
            self._watchers.remove(watcher)
        except ValueError:
            return  # already removed (double close is a no-op)
        if self._exact_watch is None:
            return
        if not watcher.is_prefix:
            bucket = self._exact_watch.get(watcher.key)
            if bucket is not None:
                bucket.remove(watcher)
                if not bucket:
                    del self._exact_watch[watcher.key]
            return
        # Walk the trie to the prefix node, then prune empty branches.
        path = [self._prefix_trie]
        for char in watcher.key:
            node = path[-1].children.get(char)
            if node is None:
                return
            path.append(node)
        path[-1].watchers.remove(watcher)
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            if node.watchers or node.children:
                break
            del path[depth - 1].children[watcher.key[depth - 1]]

    def _matching_watchers(self, key: str) -> List[Watcher]:
        """Watchers whose key/prefix matches ``key``, in registration
        order — byte-identical fanout order to the linear scan."""
        matched = self._exact_watch.get(key, [])[:]
        node = self._prefix_trie
        matched.extend(node.watchers)  # watch_prefix("") sits at the root
        for char in key:
            node = node.children.get(char)
            if node is None:
                break
            matched.extend(node.watchers)
        matched.sort(key=lambda watcher: watcher._seq)
        return matched

    def _notify(self, event: WatchEvent) -> None:
        self.notify_calls += 1
        if self._exact_watch is not None:
            matched = self._matching_watchers(event.key)
            self.watcher_visits += len(matched)
            for watcher in matched:
                watcher.queue.put(event)
            return
        # Reference implementation (REPRO_PERF_DISABLE): visit every
        # live watcher on every write.
        live = []
        for watcher in self._watchers:  # staticcheck: ignore[PERF001] flag-gated linear fallback; the indexed fanout above is the default path
            if watcher.cancelled:
                continue
            live.append(watcher)
            self.watcher_visits += 1
            if watcher.matches(event.key):
                watcher.queue.put(event)
        self._watchers = live

    # -- leases ----------------------------------------------------------------

    def grant_lease(self, ttl_s: float) -> Lease:
        """Grant a lease; an expiry process deletes its keys at the deadline."""
        if ttl_s <= 0:
            raise StoreError("lease ttl must be positive")
        lease = Lease(self._next_lease_id, ttl_s, self.env.now + ttl_s)
        self._next_lease_id += 1
        self._leases[lease.lease_id] = lease
        self.env.process(self._expiry_watchdog(lease),
                         name=f"lease:{lease.lease_id}")
        return lease

    def keepalive(self, lease_id: int) -> bool:
        """Extend a lease by its TTL; False if it is already gone."""
        lease = self._leases.get(lease_id)
        if lease is None or lease.revoked:
            return False
        if self.env.race_detector is not None:
            note_write(self.env, self._race_label, f"lease/{lease_id}",
                       "EtcdStore.keepalive")
        lease.deadline = self.env.now + lease.ttl_s
        return True

    def revoke(self, lease_id: int) -> bool:
        """Revoke a lease, deleting all attached keys."""
        lease = self._leases.pop(lease_id, None)
        if lease is None or lease.revoked:
            return False
        if self.env.race_detector is not None:
            note_write(self.env, self._race_label, f"lease/{lease_id}",
                       "EtcdStore.revoke")
        lease.revoked = True
        for key in list(lease.keys):
            self.delete(key)
        return True

    def lease_alive(self, lease_id: int) -> bool:
        lease = self._leases.get(lease_id)
        return lease is not None and not lease.revoked

    def _expiry_watchdog(self, lease: Lease):
        while not lease.revoked:
            remaining = lease.deadline - self.env.now
            if remaining <= 0:
                if self.on_lease_expired is not None:
                    self.on_lease_expired(lease)
                    if lease.revoked:
                        return
                self.revoke(lease.lease_id)
                return
            yield self.env.timeout(remaining)
