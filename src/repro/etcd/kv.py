"""The etcd key-value core: revisions, ranges, transactions, watches, leases.

:class:`EtcdStore` is a faithful single-node model of the etcd v3 data
model subset that FfDL relies on (Section 3.2 of the paper): small values,
per-key *streaming watches*, leases with TTL, and compare-and-swap
transactions.  Replication is layered on separately
(:mod:`repro.etcd.replicated`) via Raft.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import CompareFailedError, LeaseExpiredError, StoreError
from repro.sim.core import Environment
from repro.sim.race import note_read, note_write
from repro.sim.resources import Store as EventQueue

PUT = "PUT"
DELETE = "DELETE"


@dataclass
class KeyValue:
    """One stored key-value pair with etcd-style revision bookkeeping."""

    key: str
    value: Any
    create_revision: int
    mod_revision: int
    version: int = 1
    lease_id: Optional[int] = None


@dataclass
class WatchEvent:
    """A change notification delivered to watchers."""

    type: str  # PUT or DELETE
    key: str
    value: Any
    revision: int
    prev_value: Any = None


@dataclass
class Compare:
    """A transaction guard: compare a key's field against a target value.

    ``field`` is one of ``value``, ``version``, ``mod_revision``,
    ``create_revision``; ``op`` is one of ``==``, ``!=``, ``<``, ``>``.
    A ``version`` of 0 means "key does not exist", matching etcd semantics.
    """

    key: str
    field: str = "value"
    op: str = "=="
    target: Any = None


@dataclass
class Op:
    """A transaction operation: ('put', key, value) or ('delete', key)."""

    kind: str
    key: str
    value: Any = None
    lease_id: Optional[int] = None


@dataclass
class Lease:
    """A TTL lease; keys attached to it are deleted when it expires."""

    lease_id: int
    ttl_s: float
    deadline: float
    keys: set = field(default_factory=set)
    revoked: bool = False


class Watcher:
    """A streaming watch on a key or prefix.

    Events arrive in commit order on :attr:`queue`; consume them with
    ``event = yield watcher.get()``.
    """

    def __init__(self, env: Environment, key: str, is_prefix: bool):
        self.key = key
        self.is_prefix = is_prefix
        self.queue = EventQueue(env)
        self.cancelled = False

    def matches(self, key: str) -> bool:
        if self.is_prefix:
            return key.startswith(self.key)
        return key == self.key

    def get(self):
        """Return a sim event firing with the next :class:`WatchEvent`."""
        return self.queue.get()

    def pending(self) -> int:
        return len(self.queue)

    def cancel(self) -> None:
        self.cancelled = True


class EtcdStore:
    """Single-node etcd: the state machine replicated by Raft."""

    def __init__(self, env: Environment):
        self.env = env
        self._race_label = env.register_shared_store("etcd", self)
        self.revision = 0
        self._data: Dict[str, KeyValue] = {}
        self._watchers: List[Watcher] = []
        self._leases: Dict[int, Lease] = {}
        self._next_lease_id = 1
        #: Optional hook invoked when a lease expires, before its keys are
        #: deleted.  The replicated store uses this to route expiry deletes
        #: through consensus.
        self.on_lease_expired: Optional[Callable[[Lease], None]] = None

    # -- reads -------------------------------------------------------------

    def get(self, key: str) -> Optional[KeyValue]:
        note_read(self.env, self._race_label, key, "EtcdStore.get")
        return self._data.get(key)

    def range(self, prefix: str) -> List[KeyValue]:
        """All live keys with the given prefix, sorted by key."""
        found = [self._data[k] for k in sorted(self._data)
                 if k.startswith(prefix)]
        for kv in found:
            note_read(self.env, self._race_label, kv.key,
                      "EtcdStore.range")
        return found

    def keys(self) -> List[str]:
        return sorted(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # -- writes ------------------------------------------------------------

    def put(self, key: str, value: Any,
            lease_id: Optional[int] = None) -> KeyValue:
        note_write(self.env, self._race_label, key, "EtcdStore.put")
        if lease_id is not None:
            lease = self._leases.get(lease_id)
            if lease is None or lease.revoked:
                raise LeaseExpiredError(f"lease {lease_id} not alive")
            lease.keys.add(key)
        self.revision += 1
        existing = self._data.get(key)
        if existing is None:
            kv = KeyValue(key, value, self.revision, self.revision, 1,
                          lease_id)
        else:
            kv = KeyValue(key, value, existing.create_revision,
                          self.revision, existing.version + 1,
                          lease_id if lease_id is not None
                          else existing.lease_id)
        prev = existing.value if existing else None
        self._data[key] = kv
        self._notify(WatchEvent(PUT, key, value, self.revision, prev))
        return kv

    def delete(self, key: str) -> int:
        """Delete one key; returns the number of keys removed (0 or 1)."""
        note_write(self.env, self._race_label, key, "EtcdStore.delete")
        existing = self._data.pop(key, None)
        if existing is None:
            return 0
        self.revision += 1
        if existing.lease_id is not None:
            lease = self._leases.get(existing.lease_id)
            if lease is not None:
                lease.keys.discard(key)
        self._notify(WatchEvent(DELETE, key, None, self.revision,
                                existing.value))
        return 1

    def delete_prefix(self, prefix: str) -> int:
        count = 0
        for key in [k for k in self._data if k.startswith(prefix)]:
            count += self.delete(key)
        return count

    # -- transactions --------------------------------------------------------

    def check(self, compare: Compare) -> bool:
        note_read(self.env, self._race_label, compare.key,
                  "EtcdStore.check")
        kv = self._data.get(compare.key)
        if compare.field == "value":
            actual = kv.value if kv else None
        elif compare.field == "version":
            actual = kv.version if kv else 0
        elif compare.field == "mod_revision":
            actual = kv.mod_revision if kv else 0
        elif compare.field == "create_revision":
            actual = kv.create_revision if kv else 0
        else:
            raise StoreError(f"unknown compare field {compare.field!r}")
        if compare.op == "==":
            return actual == compare.target
        if compare.op == "!=":
            return actual != compare.target
        if compare.op == "<":
            return actual < compare.target
        if compare.op == ">":
            return actual > compare.target
        raise StoreError(f"unknown compare op {compare.op!r}")

    def txn(self, compares: Iterable[Compare],
            on_success: Iterable[Op],
            on_failure: Iterable[Op] = ()) -> Tuple[bool, List[Any]]:
        """Atomically: if all compares hold, apply on_success, else on_failure.

        Returns ``(succeeded, results)``.
        """
        succeeded = all(self.check(c) for c in compares)
        ops = on_success if succeeded else on_failure
        results = []
        for op in ops:
            if op.kind == "put":
                results.append(self.put(op.key, op.value, op.lease_id))
            elif op.kind == "delete":
                results.append(self.delete(op.key))
            else:
                raise StoreError(f"unknown txn op {op.kind!r}")
        return succeeded, results

    def cas(self, key: str, expected_value: Any, new_value: Any) -> KeyValue:
        """Compare-and-swap convenience; raises on mismatch."""
        ok, results = self.txn(
            [Compare(key, "value", "==", expected_value)],
            [Op("put", key, new_value)])
        if not ok:
            raise CompareFailedError(
                f"cas on {key!r}: value != {expected_value!r}")
        return results[0]

    # -- watches --------------------------------------------------------------

    def watch(self, key: str) -> Watcher:
        return self._add_watcher(Watcher(self.env, key, is_prefix=False))

    def watch_prefix(self, prefix: str) -> Watcher:
        return self._add_watcher(Watcher(self.env, prefix, is_prefix=True))

    def _add_watcher(self, watcher: Watcher) -> Watcher:
        self._watchers.append(watcher)
        return watcher

    def _notify(self, event: WatchEvent) -> None:
        live = []
        for watcher in self._watchers:
            if watcher.cancelled:
                continue
            live.append(watcher)
            if watcher.matches(event.key):
                watcher.queue.put(event)
        self._watchers = live

    # -- leases ----------------------------------------------------------------

    def grant_lease(self, ttl_s: float) -> Lease:
        """Grant a lease; an expiry process deletes its keys at the deadline."""
        if ttl_s <= 0:
            raise StoreError("lease ttl must be positive")
        lease = Lease(self._next_lease_id, ttl_s, self.env.now + ttl_s)
        self._next_lease_id += 1
        self._leases[lease.lease_id] = lease
        self.env.process(self._expiry_watchdog(lease),
                         name=f"lease:{lease.lease_id}")
        return lease

    def keepalive(self, lease_id: int) -> bool:
        """Extend a lease by its TTL; False if it is already gone."""
        lease = self._leases.get(lease_id)
        if lease is None or lease.revoked:
            return False
        note_write(self.env, self._race_label, f"lease/{lease_id}",
                   "EtcdStore.keepalive")
        lease.deadline = self.env.now + lease.ttl_s
        return True

    def revoke(self, lease_id: int) -> bool:
        """Revoke a lease, deleting all attached keys."""
        lease = self._leases.pop(lease_id, None)
        if lease is None or lease.revoked:
            return False
        note_write(self.env, self._race_label, f"lease/{lease_id}",
                   "EtcdStore.revoke")
        lease.revoked = True
        for key in list(lease.keys):
            self.delete(key)
        return True

    def lease_alive(self, lease_id: int) -> bool:
        lease = self._leases.get(lease_id)
        return lease is not None and not lease.revoked

    def _expiry_watchdog(self, lease: Lease):
        while not lease.revoked:
            remaining = lease.deadline - self.env.now
            if remaining <= 0:
                if self.on_lease_expired is not None:
                    self.on_lease_expired(lease)
                    if lease.revoked:
                        return
                self.revoke(lease.lease_id)
                return
            yield self.env.timeout(remaining)
