"""Raft-replicated etcd.

Three (by default) :class:`~repro.raft.node.RaftNode` replicas each apply the
committed command stream to their own :class:`EtcdStore`.  A *hub* store —
the linearized, first-apply-wins view of the committed sequence — serves
reads, watches and leases, mirroring how the real etcd leader serves
linearizable reads and owns the lessor.

Lease expiry routes the deletions of attached keys back through consensus so
the replicas stay byte-identical to the hub.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import StoreError
from repro.etcd.kv import Compare, EtcdStore, Lease, Op, Watcher
from repro.raft import RaftCluster, StateMachine
from repro.sim.core import Environment, Event
from repro.sim.rng import RngRegistry


def apply_command(store: EtcdStore, command: dict,
                  honor_leases: bool) -> Any:
    """Apply one committed command dict to an :class:`EtcdStore`."""
    op = command["op"]
    if op == "put":
        lease_id = command.get("lease_id") if honor_leases else None
        if lease_id is not None and not store.lease_alive(lease_id):
            lease_id = None  # lease died between submit and apply
        return store.put(command["key"], command["value"], lease_id)
    if op == "delete":
        return store.delete(command["key"])
    if op == "delete_prefix":
        return store.delete_prefix(command["prefix"])
    if op == "txn":
        return store.txn(command["compares"], command["on_success"],
                         command.get("on_failure", ()))
    raise StoreError(f"unknown etcd command {op!r}")


class _ReplicaStateMachine(StateMachine):
    """Per-node state machine: a local EtcdStore replica + hub forwarding."""

    def __init__(self, owner: "ReplicatedEtcd", node_id: str,
                 env: Environment):
        self.owner = owner
        self.node_id = node_id
        self.store = EtcdStore(env)

    def apply(self, index: int, command: Any) -> Any:
        result = apply_command(self.store, command, honor_leases=False)
        self.owner._forward_to_hub(index, command)
        return result

    def reset(self) -> None:
        self.store = EtcdStore(self.store.env)


class ReplicatedEtcd:
    """An etcd service replicated over a from-scratch Raft group."""

    def __init__(self, env: Environment, rng: RngRegistry, size: int = 3,
                 name: str = "etcd"):
        self.env = env
        self.hub = EtcdStore(env)
        self.hub.on_lease_expired = self._on_lease_expired
        self._hub_applied_index = 0
        self.replicas: Dict[str, _ReplicaStateMachine] = {}

        def factory(node_id: str) -> StateMachine:
            sm = _ReplicaStateMachine(self, node_id, env)
            self.replicas[node_id] = sm
            return sm

        self.cluster = RaftCluster(env, rng, factory, size=size, name=name)

    # -- consensus plumbing -------------------------------------------------

    def _forward_to_hub(self, index: int, command: dict) -> None:
        if index <= self._hub_applied_index:
            return  # another replica already delivered this index
        if index != self._hub_applied_index + 1:
            # Should not happen: per-node applies are gapless and in order,
            # and the hub takes the first replica to reach each index.
            raise StoreError(
                f"hub apply gap: expected {self._hub_applied_index + 1}, "
                f"got {index}")
        self._hub_applied_index = index
        apply_command(self.hub, command, honor_leases=True)

    def _on_lease_expired(self, lease: Lease) -> None:
        """Route expiry deletions through consensus; revoke hub-side record."""
        for key in list(lease.keys):
            self.cluster.propose({"op": "delete", "key": key})
        lease.revoked = True
        self.hub._leases.pop(lease.lease_id, None)

    # -- write path ------------------------------------------------------------

    def submit(self, command: dict) -> Event:
        """Submit a write command; returns the process event of the proposal."""
        return self.cluster.propose(command)

    def put(self, key: str, value: Any,
            lease_id: Optional[int] = None) -> Event:
        cmd = {"op": "put", "key": key, "value": value}
        if lease_id is not None:
            cmd["lease_id"] = lease_id
        return self.submit(cmd)

    def delete(self, key: str) -> Event:
        return self.submit({"op": "delete", "key": key})

    def delete_prefix(self, prefix: str) -> Event:
        return self.submit({"op": "delete_prefix", "prefix": prefix})

    def txn(self, compares: List[Compare], on_success: List[Op],
            on_failure: List[Op] = ()) -> Event:
        return self.submit({"op": "txn", "compares": compares,
                            "on_success": on_success,
                            "on_failure": list(on_failure)})

    # -- read / watch / lease path (hub-served) -----------------------------------

    def get(self, key: str):
        return self.hub.get(key)

    def range(self, prefix: str):
        return self.hub.range(prefix)

    def watch(self, key: str) -> Watcher:
        return self.hub.watch(key)

    def watch_prefix(self, prefix: str) -> Watcher:
        return self.hub.watch_prefix(prefix)

    def grant_lease(self, ttl_s: float) -> Lease:
        return self.hub.grant_lease(ttl_s)

    def keepalive(self, lease_id: int) -> bool:
        return self.hub.keepalive(lease_id)

    def lease_alive(self, lease_id: int) -> bool:
        return self.hub.lease_alive(lease_id)

    # -- fault hooks ----------------------------------------------------------------

    def crash_replica(self, node_id: str) -> None:
        self.cluster.crash(node_id)

    def restart_replica(self, node_id: str) -> None:
        self.cluster.restart(node_id)

    def crash_leader(self) -> Optional[str]:
        return self.cluster.crash_leader()
