"""Multi-cell federation: N independent FfDL cells under one dispatcher.

Each :class:`~repro.federation.cell.Cell` is a full FfDL installation
(its own etcd, Kubernetes cluster, MongoDB, object store, scheduler and
lifecycle manager) built from the existing
:class:`~repro.core.platform.FfDLPlatform`; the
:class:`~repro.federation.dispatcher.FederationDispatcher` above them
does per-tenant quota accounting, locality-aware cell selection,
cross-cell spillover, and brownout/blackout-driven migration with a
durable intent log.  All cross-cell traffic rides the
:class:`~repro.federation.bus.FederationBus`, whose per-destination
deterministic merge keeps the whole federation byte-reproducible.
"""

from repro.federation.bus import FederationBus
from repro.federation.cell import Cell, CellSpec
from repro.federation.dispatcher import (
    FederationDispatcher,
    Intent,
    INTENT_QUEUED,
    INTENT_DISPATCHING,
    INTENT_DISPATCHED,
)
from repro.federation.health import (
    BLACKOUT,
    BROWNOUT,
    HEALTHY,
    CellHealthMonitor,
    HealthConfig,
)

__all__ = [
    "BLACKOUT",
    "BROWNOUT",
    "Cell",
    "CellHealthMonitor",
    "CellSpec",
    "FederationBus",
    "FederationDispatcher",
    "HEALTHY",
    "HealthConfig",
    "Intent",
    "INTENT_DISPATCHED",
    "INTENT_DISPATCHING",
    "INTENT_QUEUED",
]
