"""The federation message bus: latency, FIFO links, deterministic merge.

Cross-cell traffic (dispatch RPCs, health probes, completion
notifications) rides this bus instead of touching peer objects
directly.  Three properties make the federation byte-reproducible:

* **Strictly positive link latency.**  The race detector's vector
  clocks are epoch-scoped per simulated instant, so a send and its
  delivery never share an epoch and cross-cell causality can never be
  misread as a data race.  Latencies are derived from per-link named
  RNG streams (``federation:bus:<src>-><dst>``), not from draw order,
  so they are identical no matter which link happens to be exercised
  first.

* **Canonical same-instant merge.**  Deliveries land in the
  destination's :class:`~repro.sim.mailbox.Mailbox` keyed by
  ``(sender, per-sender seq)``; messages from different senders that
  arrive in the same instant are ordered by that key, not by kernel
  scheduling order, so ``--perturb`` cannot reorder them.

* **Serialized execution per destination.**  Each destination drains
  its mailbox one message at a time (an API ingress queue); handlers
  for two messages never interleave, which removes the last source of
  schedule sensitivity.  Handlers must therefore be short-lived —
  long-running work (watching a job to completion) is spawned as a
  cell-local process and reports back with a separate :meth:`send`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError, SimulationError
from repro.sim.core import Environment, Event
from repro.sim.mailbox import Mailbox
from repro.sim.rng import RngRegistry


@dataclass
class _Message:
    sender: str
    seq: int
    action: Callable[[], Any]
    reply: Optional[Event]  # None for one-way sends


@dataclass
class BusStats:
    messages: int = 0
    replies: int = 0
    failures: int = 0
    by_link: Dict[Tuple[str, str], int] = field(default_factory=dict)


class FederationBus:
    """Point-to-point RPC and one-way sends between federation members."""

    def __init__(self, env: Environment, rng: RngRegistry,
                 base_latency_s: float = 0.004,
                 jitter_s: float = 0.004):
        if base_latency_s <= 0.0:
            raise ValueError("bus latency must be strictly positive "
                             "(race epochs must not collapse)")
        self.env = env
        self._rng = rng
        self.base_latency_s = base_latency_s
        self.jitter_s = jitter_s
        self._mailboxes: Dict[str, Mailbox] = {}
        self._send_seq: Dict[str, int] = {}
        self._latencies: Dict[Tuple[str, str], float] = {}
        self.stats = BusStats()

    def register(self, name: str) -> None:
        """Attach a member; its inbound messages drain in merge order."""
        if name in self._mailboxes:
            raise SimulationError(f"bus member {name!r} already registered")
        mailbox = Mailbox(self.env, name=f"bus:{name}")
        self._mailboxes[name] = mailbox
        self.env.process(self._drain(name, mailbox), name=f"bus-drain:{name}")

    def members(self) -> List[str]:
        return sorted(self._mailboxes)

    def link_latency_s(self, src: str, dst: str) -> float:
        """One-way latency of the (src, dst) link; fixed per link and
        derived from the link's name so first-use order is irrelevant."""
        key = (src, dst)
        if key not in self._latencies:
            stream = self._rng.stream(f"federation:bus:{src}->{dst}")
            self._latencies[key] = (self.base_latency_s
                                    + self.jitter_s * stream.random())
        return self._latencies[key]

    def call(self, src: str, dst: str,
             action: Callable[[], Any]) -> Event:
        """RPC: run ``action`` at ``dst``, resolve with its result.

        The request pays the (src, dst) latency, the reply pays the
        (dst, src) latency.  If the action raises (or the Event it
        returns fails), the reply event fails with the same error.
        """
        return self._post(src, dst, action, want_reply=True)

    def send(self, src: str, dst: str, action: Callable[[], Any]) -> None:
        """One-way message: run ``action`` at ``dst``, no reply leg."""
        self._post(src, dst, action, want_reply=False)

    def _post(self, src: str, dst: str, action: Callable[[], Any],
              want_reply: bool) -> Optional[Event]:
        if dst not in self._mailboxes:
            raise SimulationError(f"bus has no member {dst!r}")
        mailbox = self._mailboxes[dst]
        seq = self._send_seq.get(src, 0)
        self._send_seq[src] = seq + 1
        reply = self.env.event() if want_reply else None
        message = _Message(sender=src, seq=seq, action=action, reply=reply)
        self.stats.messages += 1
        link = (src, dst)
        self.stats.by_link[link] = self.stats.by_link.get(link, 0) + 1

        def deliver(_event: Event) -> None:
            mailbox.put(message, key=(message.sender, message.seq))

        transit = self.env.timeout(self.link_latency_s(src, dst))
        transit.callbacks.append(deliver)
        return reply

    def _drain(self, name: str, mailbox: Mailbox):
        while True:
            message = yield mailbox.get()
            result: Any = None
            error: Optional[BaseException] = None
            try:
                result = message.action()
                if isinstance(result, Event):
                    result = yield result
            except ReproError as err:
                error = err
            if message.reply is None:
                if error is not None:
                    self.stats.failures += 1
                continue
            # Reply leg pays the return-path latency.
            yield self.env.timeout(self.link_latency_s(name, message.sender))
            if message.reply.triggered:
                continue  # caller gave up (deadline); drop the late reply
            if error is None:
                self.stats.replies += 1
                message.reply.succeed(result)
            else:
                self.stats.failures += 1
                message.reply.fail(error)
