"""One federation cell: a full FfDL installation plus its failure modes.

A cell wraps an :class:`~repro.core.platform.FfDLPlatform` (its own
etcd, Kubernetes cluster, MongoDB, object store, scheduler, LCM) and
adds the two whole-cell failure modes the federation reacts to:

* **Blackout** — the cell goes dark: every core-service replica is held
  down, every node dies, MongoDB becomes unreachable.  Ingress raises
  :class:`~repro.errors.CellUnavailableError` immediately.  The cell's
  :class:`~repro.resilience.BufferedJobWriter` keeps buffering status
  records through the outage and flushes them on recovery, so no
  per-cell job record is ever lost.

* **Brownout** — the cell is alive but degraded: API/LCM request
  latency is inflated by a factor, which the federation's health probes
  observe as elevated latency and classify without any explicit signal
  from the cell.

Each cell forks its own child RNG registry (``cell:<name>``) so cells
are statistically independent and adding a cell never perturbs the
draws of another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core import statuses as st
from repro.core.manifest import JobManifest
from repro.core.platform import FfDLPlatform, PlatformConfig
from repro.errors import CellUnavailableError, ReproError
from repro.resilience import CircuitBreaker
from repro.sim.core import Environment, Event, OBSERVER
from repro.sim.rng import RngRegistry

#: Effectively-unlimited per-cell quota: global quota accounting lives
#: in the dispatcher; cells must never reject on local quota grounds.
_CELL_LOCAL_QUOTA = 10 ** 9


def default_cell_config() -> PlatformConfig:
    """Platform knobs tuned for federation members: service breakers on
    (the health probes trip and read them) and node-failure detection
    fast enough that a post-blackout cell converges within the
    federation's fencing window."""
    return PlatformConfig(
        service_breakers=True,
        node_detection_latency_s=10.0,
        pod_eviction_timeout_s=10.0,
    )


@dataclass
class CellSpec:
    """Declarative shape of one cell."""

    name: str
    zone: str = "zone-a"
    gpu_nodes: int = 4
    gpus_per_node: int = 4
    gpu_type: str = "K80"
    #: None -> sized so CPU never starves the GPUs (t-shirt sizing puts
    #: up to 26 CPUs behind one V100).
    cpus_per_node: Optional[float] = None
    memory_gb_per_node: Optional[float] = None
    config: Optional[PlatformConfig] = None
    tags: Dict[str, str] = field(default_factory=dict)

    @property
    def effective_cpus_per_node(self) -> float:
        if self.cpus_per_node is not None:
            return self.cpus_per_node
        return max(64.0, 28.0 * self.gpus_per_node)

    @property
    def effective_memory_gb_per_node(self) -> float:
        if self.memory_gb_per_node is not None:
            return self.memory_gb_per_node
        return max(512.0, 48.0 * self.gpus_per_node)


class Cell:
    """A federation member and its ingress surface.

    Everything the dispatcher invokes on a cell goes through the small
    ingress API below (``submit_and_watch``, ``preempt``, ``probe``,
    ``job_status``) — always via the
    :class:`~repro.federation.bus.FederationBus`, never by reaching
    into the platform directly.
    """

    def __init__(self, env: Environment, rng: RngRegistry, spec: CellSpec,
                 breaker_failure_threshold: int = 3,
                 breaker_reset_timeout_s: float = 20.0):
        self.env = env
        self.spec = spec
        self.name = spec.name
        self.zone = spec.zone
        self.rng = rng.fork(f"cell:{spec.name}")
        self.platform = FfDLPlatform(env, self.rng,
                                     spec.config or default_cell_config())
        self.platform.add_gpu_nodes(
            spec.gpu_nodes, spec.gpus_per_node, spec.gpu_type,
            cpus=spec.effective_cpus_per_node,
            memory_gb=spec.effective_memory_gb_per_node)
        #: Per-cell breaker, fed by the federation health probes; the
        #: dispatcher reads its state (never allow(), which mutates).
        self.breaker = CircuitBreaker(
            env, failure_threshold=breaker_failure_threshold,
            reset_timeout_s=breaker_reset_timeout_s,
            name=f"cell:{spec.name}")
        self.blacked_out = False
        self.browned_out = False
        self.blackouts = 0
        self.brownouts = 0
        self._base_latency: Dict[str, float] = {}
        #: One-way completion notifications to post over the bus; wired
        #: by the dispatcher (cell -> dispatcher direction).
        self.notify: Optional[Callable[[str, int, str, str], None]] = None

    # -- capacity ----------------------------------------------------------

    @property
    def total_gpus(self) -> int:
        return self.platform.cluster.total_gpus()

    @property
    def allocated_gpus(self) -> int:
        return self.platform.cluster.allocated_gpus()

    @property
    def free_gpus(self) -> int:
        return self.total_gpus - self.allocated_gpus

    def register_tenant(self, user: str) -> None:
        """Cells never enforce quota locally (the dispatcher does)."""
        self.platform.admission.register(user, gpu_quota=_CELL_LOCAL_QUOTA)

    # -- ingress (dispatcher-facing, always via the bus) -------------------

    def _check_reachable(self) -> None:
        if self.blacked_out:
            raise CellUnavailableError(f"cell {self.name!r} is blacked out")

    def probe(self, deadline_s: float) -> Event:
        """Health probe: a no-op API request under a deadline.  During a
        blackout it fails fast; during a brownout it pays the inflated
        request latency the monitor is looking for."""
        self._check_reachable()
        return self.platform.api_service.call(lambda: "ok",
                                              deadline_s=deadline_s)

    def submit_and_watch(self, manifest: JobManifest, intent_id: str,
                         generation: int) -> Event:
        """Submit a job and register the terminal watch that reports the
        outcome back over the bus; resolves with the cell-local job id."""
        self._check_reachable()
        done = self.env.event()

        def run():
            try:
                job_id = yield self.platform.submit_job(manifest)
            except ReproError as err:
                # Propagate instead of wedging the cell's serialized
                # inbox behind an event that never fires.
                done.fail(err)
                return
            self.env.process(self._watch(job_id, intent_id, generation),
                             name=f"cell-watch:{self.name}:{job_id}")
            done.succeed(job_id)

        self.env.process(run(), name=f"cell-submit:{self.name}:{intent_id}")
        return done

    def _watch(self, job_id: str, intent_id: str, generation: int):
        status = yield self.platform.wait_for_terminal(job_id)
        # A dark cell cannot speak: hold the notification until the
        # blackout lifts (by then the dispatcher has migrated the intent
        # and the stale generation makes this a no-op on arrival).
        while self.blacked_out:
            yield self.env.timeout(1.0, priority=OBSERVER)
        if self.notify is not None:
            self.notify(intent_id, generation, job_id, status)

    def preempt(self, job_id: str, reason: str = "preempted") -> None:
        """Tear a cell job down (migration fencing); no-op if the job is
        already terminal or unknown."""
        self._check_reachable()
        job = self.platform.jobs.get(job_id)
        if job is None:
            return
        if job.status.current in (st.COMPLETED, st.FAILED, st.HALTED):
            return
        self.platform.preempt_job(job_id, reason=reason)

    def job_status(self, job_id: str) -> Optional[str]:
        self._check_reachable()
        job = self.platform.jobs.get(job_id)
        return None if job is None else job.status.current

    # -- whole-cell failure modes ------------------------------------------

    def begin_blackout(self) -> None:
        """The entire cell goes dark: services held down, nodes dead,
        MongoDB unreachable (status records buffer in the writer)."""
        if self.blacked_out:
            return
        self.blacked_out = True
        self.blackouts += 1
        for service in (self.platform.api_service, self.platform.lcm,
                        self.platform.metrics_service):
            service.take_down()
        for node_name in sorted(self.platform.cluster.allocations):
            self.platform.cluster.fail_node(node_name)
        self.platform.mongo_client.set_available(False)

    def end_blackout(self) -> None:
        """Power restored: nodes and services come back, MongoDB becomes
        reachable and the buffered writer flushes — zero lost records."""
        if not self.blacked_out:
            return
        self.blacked_out = False
        self.platform.mongo_client.set_available(True)
        for node_name in sorted(self.platform.cluster.allocations):
            self.platform.cluster.recover_node(node_name)
        for service in (self.platform.api_service, self.platform.lcm,
                        self.platform.metrics_service):
            service.restore()

    def begin_brownout(self, latency_factor: float = 100.0) -> None:
        """Degrade, don't die: API/LCM latency inflates by ``factor``."""
        if self.browned_out:
            return
        self.browned_out = True
        self.brownouts += 1
        for service in (self.platform.api_service, self.platform.lcm):
            self._base_latency[service.name] = service.request_latency_s
            service.request_latency_s *= latency_factor

    def end_brownout(self) -> None:
        if not self.browned_out:
            return
        self.browned_out = False
        for service in (self.platform.api_service, self.platform.lcm):
            service.request_latency_s = self._base_latency.pop(
                service.name, service.request_latency_s)

    # -- introspection -----------------------------------------------------

    def running_job_ids(self) -> List[str]:
        return sorted(
            job_id for job_id, job in self.platform.jobs.items()
            if job.status.current not in (st.COMPLETED, st.FAILED, st.HALTED))

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "zone": self.zone,
            "gpu_type": self.spec.gpu_type,
            "total_gpus": self.total_gpus,
            "allocated_gpus": self.allocated_gpus,
            "blacked_out": self.blacked_out,
            "browned_out": self.browned_out,
            "breaker": self.breaker.state,
        }
