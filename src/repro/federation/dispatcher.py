"""The global federation dispatcher.

One dispatcher fronts N cells.  It owns:

* **The durable intent log** — every accepted submission becomes an
  *intent* (``fed-%06d``) written through a
  :class:`~repro.resilience.BufferedJobWriter` to the dispatcher's own
  MongoDB before the caller is acknowledged, mirroring the per-cell
  FfDL contract ("store all the metadata ... before acknowledging").
  Intents survive cell loss: the per-cell job is disposable, the
  intent is not.

* **Per-tenant federation-wide quota accounting.**  Cells run with
  effectively-unlimited local quotas; the only quota gate is here.

* **Cell selection** — filter to live cells (breaker not OPEN, monitor
  HEALTHY, GPU type matches, uncommitted capacity fits), prefer the
  tenant's zone, then most free GPUs, then cell name.  Choosing a cell
  outside the preferred zone is *spillover*.

* **Migration** — on a BROWNOUT or BLACKOUT transition every
  non-terminal intent leaves the cell: its generation is bumped (so
  in-flight completions from the old cell arrive stale and are
  ignored), the old cell job is preempted if the cell is reachable, or
  queued for *fencing* at recovery if not, and the intent re-enters
  dispatch on the surviving cells.

* **Idempotent re-submission.**  Every side effect is guarded by the
  intent's generation, recorded durably *before* the cell submit: a
  dispatcher retry or a racing migration observes a stale generation
  and fences the orphan cell job instead of letting it count.  A job is
  never *executed* twice — a stale-generation COMPLETED is tracked as a
  ``double_executions`` violation, which the chaos hypotheses pin at 0.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import statuses as st
from repro.core.manifest import JobManifest
from repro.errors import QuotaExceededError, ReproError
from repro.federation.bus import FederationBus
from repro.federation.cell import Cell
from repro.federation.health import (
    BLACKOUT,
    BROWNOUT,
    CellHealthMonitor,
    HEALTHY,
    HealthConfig,
)
from repro.mongo.client import MongoClient
from repro.mongo.database import MongoDatabase
from repro.resilience import BufferedJobWriter
from repro.sim.core import Environment, Event, OBSERVER
from repro.sim.rng import RngRegistry

INTENT_QUEUED = "QUEUED"
INTENT_DISPATCHING = "DISPATCHING"
INTENT_DISPATCHED = "DISPATCHED"

_TERMINAL = (st.COMPLETED, st.FAILED, st.HALTED)


@dataclass
class Intent:
    """One durable unit of federated work (the job *as the user sees
    it*, independent of which cell happens to run it)."""

    intent_id: str
    manifest: JobManifest
    preferred_zone: Optional[str]
    submitted_at: float
    state: str = INTENT_QUEUED
    #: Bumped before every (re-)dispatch; the fencing token.  Cell-side
    #: outcomes carry the generation they were submitted under and are
    #: ignored when stale.
    generation: int = 0
    cell: Optional[str] = None
    cell_job: Optional[str] = None
    migrations: int = 0
    completions: int = 0
    history: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def demand(self) -> int:
        return self.manifest.total_gpus

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL


class FederationDispatcher:
    """Global dispatch, quota, migration and fencing over N cells."""

    #: Give up on a cell submit RPC after this long (a wedged cell must
    #: not wedge the control loop); generous next to the bus round trip.
    SUBMIT_TIMEOUT_S = 60.0

    def __init__(self, env: Environment, rng: RngRegistry,
                 bus: FederationBus, cells: List[Cell],
                 health_config: Optional[HealthConfig] = None,
                 reconcile_interval_s: float = 10.0,
                 audit: Optional[Callable[[str], None]] = None):
        self.env = env
        self.bus = bus
        self.name = "dispatcher"
        self.cells: Dict[str, Cell] = {c.name: c for c in cells}
        self.audit = audit
        self.reconcile_interval_s = reconcile_interval_s

        # Durable intent log: the dispatcher's own control-plane store,
        # buffered so a store outage degrades instead of rejecting.
        self.mongo = MongoDatabase()
        self.mongo_client = MongoClient(env, self.mongo, rng=rng)
        self.intent_log = BufferedJobWriter(
            env, self.mongo_client,
            stream=rng.stream("federation:intent-log"))

        self._intents: Dict[str, Intent] = {}
        self._intent_seq = itertools.count(1)
        self._quotas: Dict[str, int] = {}
        #: GPUs committed per cell by non-terminal intents; dispatch
        #: accounting, deliberately independent of the cells' own lagging
        #: allocation view.
        self._committed: Dict[str, int] = {c.name: 0 for c in cells}
        #: (cell_name, cell_job_id) orphans awaiting fencing once their
        #: blacked-out cell returns.
        self._fence_queue: List[Tuple[str, str]] = []
        #: Pending control work — ("dispatch", intent_id, "", "") and
        #: ("fence", cell, job, reason) items.  A single control loop
        #: drains the set in sorted order, so every dispatcher-originated
        #: bus message is issued by one process in one canonical order no
        #: matter which schedule permutation queued the work.
        self._work: set = set()
        self._wakeup = env.event()

        self.counters = {
            "submitted": 0,
            "rejected_quota": 0,
            "dispatched": 0,
            "spillovers": 0,
            "migrations": 0,
            "fenced": 0,
            "stale_notifications": 0,
            "double_executions": 0,
            "completed": 0,
            "failed": 0,
        }

        bus.register(self.name)
        self.monitors: Dict[str, CellHealthMonitor] = {}
        for cell in cells:
            bus.register(cell.name)
            cell.notify = self._make_notifier(cell)
            # Each monitor sends under its own bus identity: same-instant
            # sends from two processes sharing a sender would race for
            # sequence numbers, and the mailbox merge key is
            # (sender, seq).
            self.monitors[cell.name] = CellHealthMonitor(
                env, bus, cell, config=health_config,
                on_transition=self._on_health_transition,
                monitor_name=f"monitor:{cell.name}")
        env.process(self._control_loop(), name="fed-control")
        env.process(self._reconcile_loop(), name="fed-reconcile")

    # -- plumbing ----------------------------------------------------------

    def _log(self, text: str) -> None:
        if self.audit is not None:
            self.audit(text)

    def _make_notifier(self, cell: Cell):
        def notify(intent_id: str, generation: int, cell_job: str,
                   status: str) -> None:
            # Runs cell-side when a cell job reaches a terminal status:
            # report back over the bus (one-way, merged at the
            # dispatcher's mailbox).
            self.bus.send(cell.name, self.name,
                          lambda: self._on_cell_terminal(
                              cell.name, intent_id, generation, cell_job,
                              status))
        return notify

    def _write_intent(self, intent: Intent, event: str) -> None:
        """Append the intent's current state durably (never awaited on
        the hot path except at submit; the buffered writer orders and
        retries)."""
        intent.history.append((self.env.now, event))
        self.intent_log.update(
            "intents", {"_id": intent.intent_id},
            {"state": intent.state, "generation": intent.generation,
             "cell": intent.cell, "cell_job": intent.cell_job,
             "event": event, "updated_at": self.env.now})

    # -- tenancy -----------------------------------------------------------

    def register_tenant(self, user: str, gpu_quota: int) -> None:
        self._quotas[user] = gpu_quota
        for cell in self.cells.values():
            cell.register_tenant(user)

    def quota_usage(self, user: str) -> int:
        return sum(i.demand for i in self._intents.values()
                   if i.manifest.user == user and not i.terminal)

    # -- submission --------------------------------------------------------

    def submit(self, manifest: JobManifest,
               preferred_zone: Optional[str] = None) -> Event:
        """Accept a federated job; resolves with the intent id once the
        intent is durable (or the log is in degraded buffering mode)."""
        return self.env.process(self._submit(manifest, preferred_zone),
                                name="fed-submit")

    def _submit(self, manifest: JobManifest,
                preferred_zone: Optional[str]):
        manifest.validate()
        user = manifest.user
        if user not in self._quotas:
            raise QuotaExceededError(f"unknown federation tenant {user!r}")
        if self.quota_usage(user) + manifest.total_gpus \
                > self._quotas[user]:
            self.counters["rejected_quota"] += 1
            raise QuotaExceededError(
                f"user {user!r} federation quota "
                f"{self._quotas[user]} GPUs exceeded")
        intent_id = f"fed-{next(self._intent_seq):06d}"
        intent = Intent(intent_id, manifest, preferred_zone, self.env.now)
        self._intents[intent_id] = intent
        self.counters["submitted"] += 1
        write = self.intent_log.insert("intents", {
            "_id": intent_id,
            "user": user,
            "name": manifest.name,
            "gpus": manifest.total_gpus,
            "gpu_type": manifest.gpu_type,
            "preferred_zone": preferred_zone,
            "state": INTENT_QUEUED,
            "generation": 0,
            "cell": None,
            "cell_job": None,
            "submitted_at": self.env.now,
        })
        # Ack once durable — or once the log is degraded (buffered in
        # order, flushed on recovery: the graceful-degradation contract).
        yield self.env.any_of([write, self.intent_log.degraded_event()])
        self._log(f"accepted {intent_id} user={user} "
                  f"gpus={manifest.total_gpus} zone={preferred_zone}")
        self._kick_dispatch(intent_id)
        return intent_id

    # -- cell selection ----------------------------------------------------

    def _selectable(self, cell: Cell) -> bool:
        return (not cell.blacked_out
                and cell.breaker.state != "OPEN"
                and self.monitors[cell.name].state == HEALTHY)

    def _select_cell(self, intent: Intent) -> Optional[Cell]:
        candidates = []
        for name in sorted(self.cells):
            cell = self.cells[name]
            if not self._selectable(cell):
                continue
            if cell.spec.gpu_type != intent.manifest.gpu_type:
                continue
            free = cell.total_gpus - self._committed[name]
            if free < intent.demand:
                continue
            in_zone = (intent.preferred_zone is not None
                       and cell.zone == intent.preferred_zone)
            candidates.append((0 if in_zone else 1, -free, name, cell))
        if not candidates:
            return None
        candidates.sort(key=lambda entry: entry[:3])
        return candidates[0][3]

    # -- the control loop --------------------------------------------------

    def _kick_dispatch(self, intent_id: str) -> None:
        self._work.add(("dispatch", intent_id, "", ""))
        self._trigger()

    def _kick_fence(self, cell_name: str, cell_job: str,
                    reason: str = "fenced") -> None:
        if self.cells[cell_name].blacked_out:
            # Cannot reach the cell to kill the orphan now; fence it the
            # moment the cell comes back.
            self._fence_queue.append((cell_name, cell_job))
            return
        self._work.add(("fence", cell_name, cell_job, reason))
        self._trigger()

    def _trigger(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _control_loop(self):
        """The single process that issues every dispatcher-side bus
        message (cell submits and fencing preempts).  Work queued by any
        number of concurrently scheduled handlers drains here in sorted
        order, so sequence numbers — and with them the cells' mailbox
        merge order — are identical under every tie-break permutation."""
        while True:
            if not self._work:
                self._wakeup = self.env.event()
                yield self._wakeup
            # Settle the instant: collect every same-tick kick before
            # choosing an order.
            yield self.env.timeout(0.0, priority=OBSERVER)
            batch = sorted(self._work)
            self._work.clear()
            for kind, first, second, third in batch:
                if kind == "dispatch":
                    intent = self._intents.get(first)
                    if intent is not None \
                            and intent.state == INTENT_QUEUED:
                        yield from self._dispatch(intent)
                else:
                    yield from self._preempt_remote(first, second, third)

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, intent: Intent):
        cell = self._select_cell(intent)
        if cell is None:
            return  # stays QUEUED; the reconcile loop retries
        generation = intent.generation + 1
        intent.generation = generation
        intent.state = INTENT_DISPATCHING
        intent.cell = cell.name
        intent.cell_job = None
        self._committed[cell.name] += intent.demand
        if intent.preferred_zone is not None \
                and cell.zone != intent.preferred_zone:
            self.counters["spillovers"] += 1
            self._log(f"spillover {intent.intent_id} -> {cell.name} "
                      f"(zone {cell.zone} != {intent.preferred_zone})")
        # The assignment is durable *before* the cell hears about it: a
        # dispatcher retry after this point knows which cell may hold an
        # orphan for this generation and can fence it.
        self._write_intent(intent, f"dispatching:{cell.name}:g{generation}")
        manifest = intent.manifest
        intent_id = intent.intent_id
        reply = self.bus.call(
            self.name, cell.name,
            lambda: cell.submit_and_watch(manifest, intent_id, generation))
        cutoff = self.env.timeout(self.SUBMIT_TIMEOUT_S, priority=OBSERVER)
        try:
            yield self.env.any_of([reply, cutoff])
        except ReproError as err:
            # Committed-GPU rule: whoever moves the intent off this
            # generation owns the release.  If the generation is still
            # ours, nobody else has — release and requeue; if it is
            # stale, the migration that bumped it already released.
            if intent.generation == generation:
                self._committed[cell.name] -= intent.demand
                intent.state = INTENT_QUEUED
                intent.cell = None
                self._write_intent(
                    intent, f"dispatch-failed:{type(err).__name__}")
                self._log(f"dispatch {intent_id} to {cell.name} failed: "
                          f"{err}; requeued")
            return
        if not reply.triggered:
            # The cell never answered inside the window; a wedged cell
            # must not wedge the control loop.  Invalidate the
            # generation so any eventual outcome arrives stale, and if
            # the submit does land late, fence the orphan it created.
            if intent.generation == generation:
                intent.generation += 1
                self._committed[cell.name] -= intent.demand
                intent.state = INTENT_QUEUED
                intent.cell = None
                self._write_intent(intent, f"dispatch-timeout:{cell.name}")
                self._log(f"dispatch {intent_id} to {cell.name} timed "
                          f"out; requeued")

            def fence_late(event) -> None:
                if event.ok:
                    self._kick_fence(cell.name, event.value)

            reply.callbacks.append(fence_late)
            return
        cell_job = reply.value
        if intent.generation != generation:
            # A migration raced the in-flight submit: the cell accepted a
            # job this intent no longer wants.  Fence it (the migration
            # already released our committed GPUs).
            self._log(f"stale dispatch {intent_id} g{generation} "
                      f"-> fencing {cell.name}/{cell_job}")
            self._kick_fence(cell.name, cell_job)
            return
        intent.state = INTENT_DISPATCHED
        intent.cell_job = cell_job
        self.counters["dispatched"] += 1
        self._write_intent(intent, f"dispatched:{cell.name}:{cell_job}")
        self._log(f"dispatched {intent_id} -> {cell.name}/{cell_job} "
                  f"g{generation}")

    def _reconcile_loop(self):
        """Periodically re-kick QUEUED intents (capacity freed, cells
        recovered, breakers closed)."""
        while True:
            yield self.env.timeout(self.reconcile_interval_s)
            for intent_id in sorted(self._intents):
                if self._intents[intent_id].state == INTENT_QUEUED:
                    self._kick_dispatch(intent_id)

    # -- cell outcomes -----------------------------------------------------

    def _on_cell_terminal(self, cell_name: str, intent_id: str,
                          generation: int, cell_job: str,
                          status: str) -> None:
        intent = self._intents.get(intent_id)
        if intent is None:
            return
        if generation != intent.generation or intent.terminal:
            # Stale outcome from a pre-migration generation (or a zombie
            # revived by a recovered cell that escaped fencing).
            self.counters["stale_notifications"] += 1
            if status == st.COMPLETED:
                intent.completions += 1
                if intent.completions > 1:
                    # The job's work ran to completion twice — exactly
                    # what fencing exists to prevent.
                    self.counters["double_executions"] += 1
                elif not intent.terminal:
                    # The old cell finished the work in the narrow
                    # window between the terminal status and the
                    # migration decision.  The work is done: accept it
                    # and cancel the re-dispatch instead of running the
                    # job a second time.
                    self._accept_stale_completion(intent, cell_name,
                                                  cell_job)
                    return
            self._log(f"stale outcome {intent_id} g{generation} "
                      f"{cell_name}/{cell_job}: {status} (now "
                      f"g{intent.generation}, {intent.state})")
            return
        self._committed[cell_name] -= intent.demand
        if status == st.COMPLETED:
            intent.completions += 1
            if intent.completions > 1:
                self.counters["double_executions"] += 1
            self._finish_completed(intent, cell_name, cell_job)
            return
        cell = self.cells[cell_name]
        if status == st.FAILED and self._selectable(cell):
            # The job itself failed on a healthy cell: a real failure,
            # not collateral of cell trouble.
            intent.state = st.FAILED
            self.counters["failed"] += 1
            self._write_intent(intent, f"failed:{cell_name}")
            self._log(f"failed {intent_id} on {cell_name}/{cell_job}")
            return
        # HALTED (in-cell preemption) or FAILED on an unhealthy cell:
        # the cell job is gone but the intent still owes the user a run.
        intent.state = INTENT_QUEUED
        intent.cell = None
        intent.cell_job = None
        self._write_intent(intent, f"requeued:{status}:{cell_name}")
        self._log(f"requeued {intent_id} after {status} on {cell_name}")
        self._kick_dispatch(intent_id)

    def _finish_completed(self, intent: Intent, cell_name: str,
                          cell_job: Optional[str]) -> None:
        intent.state = st.COMPLETED
        self.counters["completed"] += 1
        self._write_intent(intent, f"completed:{cell_name}")
        self._log(f"completed {intent.intent_id} on "
                  f"{cell_name}/{cell_job}")

    def _accept_stale_completion(self, intent: Intent, cell_name: str,
                                 cell_job: str) -> None:
        """The old cell finished the job after migration had already
        re-queued it: take the completed work, abort the re-run."""
        replacement_cell = intent.cell
        replacement_job = intent.cell_job
        if replacement_cell is not None:
            # A replacement dispatch is assigned or in flight; release
            # its committed GPUs and make its generation stale so it
            # fences itself (DISPATCHING) or gets fenced here
            # (DISPATCHED).
            self._committed[replacement_cell] -= intent.demand
            intent.generation += 1
            if replacement_job is not None:
                self._kick_fence(replacement_cell, replacement_job)
        self._log(f"accepted stale completion {intent.intent_id} from "
                  f"{cell_name}/{cell_job}")
        self._finish_completed(intent, cell_name, cell_job)

    # -- migration and fencing ---------------------------------------------

    def _on_health_transition(self, cell: Cell, old: str,
                              new: str) -> None:
        self._log(f"health {cell.name}: {old} -> {new}")
        if new in (BLACKOUT, BROWNOUT):
            self.migrate_from(cell.name, reason=new)
        if old == BLACKOUT and new != BLACKOUT:
            # Leaving BLACKOUT means probes answer again — the cell is
            # reachable, so the queued orphans can be fenced now, before
            # the revived schedulers run them to a second completion.
            self._fence_recovered(cell)

    def migrate_from(self, cell_name: str, reason: str = "manual") -> None:
        """Drain every non-terminal intent off a cell (also the manual
        drain entry point).  The bookkeeping — generation bumps, state,
        accounting — happens synchronously, so by the time this returns
        every outcome the old cell might still report is already stale;
        the preempts and re-dispatches drain through the control loop.
        Idempotent: re-running it when nothing is assigned is a no-op."""
        cell = self.cells[cell_name]
        assigned = sorted(
            intent_id for intent_id, intent in self._intents.items()
            if intent.cell == cell.name and not intent.terminal)
        if not assigned:
            return
        self._log(f"migrating {len(assigned)} intents off {cell.name} "
                  f"({reason})")
        for intent_id in assigned:
            intent = self._intents[intent_id]
            old_job = intent.cell_job
            # Invalidate the old generation FIRST: any outcome the old
            # cell reports from here on arrives stale.
            intent.generation += 1
            intent.state = INTENT_QUEUED
            intent.cell = None
            intent.cell_job = None
            intent.migrations += 1
            self._committed[cell.name] -= intent.demand
            self.counters["migrations"] += 1
            self._write_intent(intent, f"migrating:{reason}:{cell.name}")
            if old_job is not None:
                self._kick_fence(cell.name, old_job, "migrated")
            self._kick_dispatch(intent_id)

    def _fence_recovered(self, cell: Cell) -> None:
        """Kill the orphan cell jobs a blacked-out cell would otherwise
        revive and run to (a second) completion after recovery."""
        pending = sorted(set(
            (name, job) for name, job in self._fence_queue
            if name == cell.name))
        self._fence_queue = [(name, job) for name, job in self._fence_queue
                             if name != cell.name]
        for cell_name, cell_job in pending:
            self._kick_fence(cell_name, cell_job)

    def _preempt_remote(self, cell_name: str, cell_job: str,
                        reason: str):
        cell = self.cells[cell_name]
        try:
            yield self.bus.call(
                self.name, cell_name,
                lambda: cell.preempt(cell_job, reason=reason))
        except ReproError as err:
            # The cell went dark mid-preempt: fence on recovery instead.
            self._log(f"preempt {cell_name}/{cell_job} failed ({err}); "
                      f"deferred to recovery fencing")
            self._fence_queue.append((cell_name, cell_job))
            return
        self.counters["fenced"] += 1
        self._log(f"{reason} {cell_name}/{cell_job}")

    # -- shutdown / verification ------------------------------------------

    def close(self) -> Event:
        """Stop monitors and drain the intent log (nothing buffered is
        dropped — the shutdown contract the tests pin)."""
        for monitor in self.monitors.values():
            monitor.stop()
        return self.intent_log.close()

    def intents(self) -> List[Intent]:
        return [self._intents[i] for i in sorted(self._intents)]

    def lost_intents(self) -> List[str]:
        """Accepted intents that are neither durable in MongoDB nor
        buffered in the intent log — must always be empty (the zero-
        lost-records property the chaos hypotheses pin)."""
        collection = self.mongo.collection("intents")
        buffered = set(self.intent_log.pending_ids("intents"))
        return [intent_id for intent_id in sorted(self._intents)
                if collection.find_one({"_id": intent_id}) is None
                and intent_id not in buffered]

    def end_state(self) -> Dict[str, object]:
        """Deterministic end-state witness for --check-determinism."""
        return {
            "intents": [(i.intent_id, i.state, i.generation, i.cell,
                         i.cell_job, i.migrations, i.completions)
                        for i in self.intents()],
            "counters": dict(sorted(self.counters.items())),
            "committed": dict(sorted(self._committed.items())),
        }
