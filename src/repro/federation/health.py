"""Cell health classification: HEALTHY / BROWNOUT / BLACKOUT.

Per cell, a monitor fires a no-op API probe over the federation bus on
a fixed cadence and classifies the cell from nothing but probe
outcomes — the cell never self-reports:

* ``blackout_failures`` *consecutive* probe failures (deadline misses,
  open circuits, unreachable cell) → **BLACKOUT**.  A dead cell cannot
  say it is dead; only silence is observable.
* ``brownout_probes`` of the last ``window`` probes slower than
  ``brownout_latency_s`` → **BROWNOUT**.  Elevated round-trip latency
  is the crash-storm/overload signature; one slow probe is noise.
* ``recover_probes`` consecutive fast successes from a degraded state
  → back to **HEALTHY** (hysteresis, so a flapping cell does not cause
  migration storms).

Every probe outcome also feeds the cell's
:class:`~repro.resilience.CircuitBreaker`, so the dispatcher's
selection filter and the monitor's classification can never disagree
for long about a dead cell.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.errors import ReproError
from repro.federation.bus import FederationBus
from repro.federation.cell import Cell
from repro.sim.core import Environment, OBSERVER

HEALTHY = "HEALTHY"
BROWNOUT = "BROWNOUT"
BLACKOUT = "BLACKOUT"

#: on_transition(cell, old_state, new_state)
TransitionHook = Callable[[Cell, str, str], None]


@dataclass
class HealthConfig:
    probe_interval_s: float = 5.0
    probe_timeout_s: float = 3.0
    #: Rolling window of recent probe round-trips considered for
    #: brownout classification.
    window: int = 6
    brownout_latency_s: float = 0.5
    brownout_probes: int = 3
    blackout_failures: int = 3
    recover_probes: int = 3


class CellHealthMonitor:
    """Probe loop + classifier for one cell."""

    def __init__(self, env: Environment, bus: FederationBus, cell: Cell,
                 config: Optional[HealthConfig] = None,
                 on_transition: Optional[TransitionHook] = None,
                 monitor_name: str = "dispatcher"):
        self.env = env
        self.bus = bus
        self.cell = cell
        self.config = config or HealthConfig()
        self.on_transition = on_transition
        self.monitor_name = monitor_name
        self.state = HEALTHY
        self.transitions = 0
        self.probes_sent = 0
        self.probes_failed = 0
        self._consecutive_failures = 0
        self._consecutive_ok = 0
        self._latencies: Deque[float] = deque(maxlen=self.config.window)
        self._stopped = False
        self.process = env.process(self._probe_loop(),
                                   name=f"health:{cell.name}")

    def stop(self) -> None:
        self._stopped = True

    # -- probe loop --------------------------------------------------------

    def _probe_loop(self):
        while not self._stopped:
            yield self.env.timeout(self.config.probe_interval_s)
            if self._stopped:
                return
            self.probes_sent += 1
            started = self.env.now
            deadline_s = self.config.probe_timeout_s
            reply = self.bus.call(self.monitor_name, self.cell.name,
                                  lambda: self.cell.probe(
                                      deadline_s=deadline_s))
            # Race the reply against a local timeout: a wedged cell must
            # not wedge its monitor.  The OBSERVER priority lets a reply
            # landing exactly at the timeout instant win.
            cutoff = self.env.timeout(
                deadline_s + 2 * self.bus.link_latency_s(
                    self.monitor_name, self.cell.name),
                priority=OBSERVER)
            try:
                yield self.env.any_of([reply, cutoff])
            except ReproError:
                pass  # probe failed fast (dark cell, open circuit, ...)
            if reply.triggered and reply.ok:
                self._on_probe_ok(self.env.now - started)
            else:
                # Timed out (reply abandoned; a late arrival is dropped
                # by the bus) or the probe failed outright.
                self._on_probe_failure()

    def _on_probe_ok(self, latency_s: float) -> None:
        self._consecutive_failures = 0
        self._latencies.append(latency_s)
        self.cell.breaker.record_success()
        cfg = self.config
        slow = sum(1 for lat in self._latencies
                   if lat > cfg.brownout_latency_s)
        if slow >= cfg.brownout_probes:
            self._consecutive_ok = 0
            self._transition(BROWNOUT)
            return
        if latency_s <= cfg.brownout_latency_s:
            self._consecutive_ok += 1
        else:
            self._consecutive_ok = 0
        if self.state != HEALTHY \
                and self._consecutive_ok >= cfg.recover_probes:
            self._transition(HEALTHY)

    def _on_probe_failure(self) -> None:
        self.probes_failed += 1
        self._consecutive_ok = 0
        self._consecutive_failures += 1
        # Failures do not enter the latency window: brownout is a
        # *successful-but-slow* signature; outright failures drive the
        # blackout counter instead.
        self.cell.breaker.record_failure()
        if self._consecutive_failures >= self.config.blackout_failures:
            self._transition(BLACKOUT)

    def _transition(self, new_state: str) -> None:
        if new_state == self.state:
            return
        old_state, self.state = self.state, new_state
        self.transitions += 1
        if new_state == HEALTHY:
            # Forget degraded-era latencies so a recovered cell is not
            # re-classified from stale samples.
            self._latencies.clear()
        if self.on_transition is not None:
            self.on_transition(self.cell, old_state, new_state)
