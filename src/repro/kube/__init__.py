"""Simulated Kubernetes: API objects, scheduler, controllers, kubelets."""

from repro.kube.api import ADDED, DELETED, KubeAPI, MODIFIED
from repro.kube.cluster import Cluster
from repro.kube.events import EventLog, KubeEvent
from repro.kube.objects import (
    ContainerSpec,
    Deployment,
    FAILED,
    KubeJob,
    NetworkPolicy,
    Node,
    ObjectMeta,
    PENDING,
    PersistentVolumeClaim,
    Pod,
    PodSpec,
    PodTemplate,
    RESTART_ALWAYS,
    RESTART_NEVER,
    RESTART_ON_FAILURE,
    RUNNING,
    ReplicaSet,
    SUCCEEDED,
    StatefulSet,
)
from repro.kube.resources import NodeAllocation, NodeCapacity, ResourceRequest
from repro.kube.scheduling import PACK, SPREAD, Scheduler, SchedulerConfig

__all__ = [
    "ADDED",
    "Cluster",
    "ContainerSpec",
    "DELETED",
    "Deployment",
    "EventLog",
    "FAILED",
    "KubeAPI",
    "KubeEvent",
    "KubeJob",
    "MODIFIED",
    "NetworkPolicy",
    "Node",
    "NodeAllocation",
    "NodeCapacity",
    "ObjectMeta",
    "PACK",
    "PENDING",
    "PersistentVolumeClaim",
    "Pod",
    "PodSpec",
    "PodTemplate",
    "ReplicaSet",
    "RESTART_ALWAYS",
    "RESTART_NEVER",
    "RESTART_ON_FAILURE",
    "RUNNING",
    "SPREAD",
    "Scheduler",
    "SchedulerConfig",
    "StatefulSet",
    "SUCCEEDED",
]
