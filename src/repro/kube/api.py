"""The Kubernetes API server: typed object stores plus change notification.

Controllers, the scheduler and kubelets subscribe to object changes the way
real components use informers; delivery is synchronous function calls on the
sim kernel (the latency of the API server itself is folded into component
action latencies).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ConflictError, ObjectNotFoundError
from repro.kube.events import EventLog, KubeEvent
from repro.kube.objects import (
    Deployment,
    FAILED,
    KubeJob,
    NetworkPolicy,
    Node,
    PENDING,
    PersistentVolumeClaim,
    Pod,
    RUNNING,
    ReplicaSet,
    SUCCEEDED,
    StatefulSet,
)
from repro.perf.flags import optimizations_enabled
from repro.sim.core import Environment
from repro.sim.race import note_read, note_write

ADDED = "ADDED"
MODIFIED = "MODIFIED"
DELETED = "DELETED"

Listener = Callable[[str, object], None]

_KINDS = ("pods", "nodes", "replicasets", "statefulsets", "jobs",
          "deployments", "pvcs", "networkpolicies")


class KubeAPI:
    """Object storage + watch fan-out for the simulated cluster."""

    def __init__(self, env: Environment):
        self.env = env
        self._race_label = env.register_shared_store("kube", self)
        self.event_log = EventLog()
        self._stores: Dict[str, Dict[str, object]] = {
            kind: {} for kind in _KINDS}
        self._listeners: Dict[str, List[Listener]] = {
            kind: [] for kind in _KINDS}
        #: Node-indexed pod fanout (flag-gated fast path).  Kubelets
        #: only ever act on events for pods bound to their own node, so
        #: delivering every pod event to every kubelet is an O(nodes)
        #: no-op scan per mutation — the dominant fanout at cluster
        #: scale.  When optimizations are on, kubelets register here
        #: (node name -> [(seq, listener)]) and ``_notify`` delivers a
        #: pod event to the general "pods" subscribers plus the one
        #: matching node's listeners, merged by registration ``seq`` so
        #: invocation order is byte-identical to the flat list.  ``None``
        #: under REPRO_PERF_DISABLE (node listeners join the flat list
        #: and self-filter, as before).
        self._pod_node_listeners: Optional[Dict[str, list]] = \
            {} if optimizations_enabled() else None
        #: General "pods" subscribers as (seq, listener), kept in
        #: lock-step with ``_listeners["pods"]`` for the merge above.
        self._pod_general: List[tuple] = []
        self._sub_seq = 0

    # -- generic plumbing -----------------------------------------------------

    def subscribe(self, kind: str, listener: Listener) -> None:
        """Register ``listener(verb, obj)`` for changes to ``kind``."""
        self._listeners[kind].append(listener)
        if kind == "pods":
            self._sub_seq += 1
            self._pod_general.append((self._sub_seq, listener))

    def subscribe_pods_for_node(self, node_name: str,
                                listener: Listener) -> None:
        """Register a pod listener that only acts on pods of one node.

        The listener must self-filter on ``pod.node_name`` (it still
        does under REPRO_PERF_DISABLE, where this is plain
        ``subscribe``); with optimizations on it is indexed by node and
        only invoked for events whose pod is bound to ``node_name`` —
        every skipped invocation would have been a no-op, so both modes
        are observably identical.
        """
        index = self._pod_node_listeners
        if index is None:
            self.subscribe("pods", listener)
            return
        self._sub_seq += 1
        index.setdefault(node_name, []).append((self._sub_seq, listener))

    def _notify(self, kind: str, verb: str, obj: object) -> None:
        # Every mutation (create/update/delete) funnels through here.
        # The detector check comes before note_write so the label
        # f-strings are never built on the (detector-off) fast path.
        if self.env.race_detector is not None:
            note_write(self.env, self._race_label,
                       f"{kind}/{getattr(obj, 'name', obj)}",
                       f"KubeAPI.{verb.lower()}")
        if kind == "pods" and self._pod_node_listeners is not None:
            # Indexed fast path: general subscribers plus the listeners
            # of the (single) node the pod is bound to, in registration
            # order.  ``seq`` values are unique, so the sort never
            # compares the listeners themselves.
            matching = self._pod_node_listeners.get(obj.node_name)
            if matching:
                for _seq, listener in sorted(self._pod_general + matching):
                    listener(verb, obj)
            else:
                for _seq, listener in list(self._pod_general):
                    listener(verb, obj)
            return
        # Informer semantics: a change to a kind must reach every
        # subscriber of that kind, so the per-kind lists are already the
        # index and the fanout below is exact (pods additionally take
        # the node-indexed path above when optimizations are on).
        for listener in list(self._listeners[kind]):  # staticcheck: ignore[PERF001] per-kind lists are the index; fanout is exact
            listener(verb, obj)

    def _create(self, kind: str, name: str, obj: object) -> object:
        store = self._stores[kind]
        if name in store:
            raise ConflictError(f"{kind}/{name} already exists")
        store[name] = obj
        self._notify(kind, ADDED, obj)
        return obj

    def _get(self, kind: str, name: str) -> object:
        if self.env.race_detector is not None:
            note_read(self.env, self._race_label, f"{kind}/{name}",
                      "KubeAPI.get")
        obj = self._stores[kind].get(name)
        if obj is None:
            raise ObjectNotFoundError(f"{kind}/{name}")
        return obj

    def _delete(self, kind: str, name: str) -> object:
        obj = self._stores[kind].pop(name, None)
        if obj is None:
            raise ObjectNotFoundError(f"{kind}/{name}")
        self._notify(kind, DELETED, obj)
        return obj

    def _list(self, kind: str) -> list:
        return list(self._stores[kind].values())

    def exists(self, kind: str, name: str) -> bool:
        return name in self._stores[kind]

    def record_event(self, event: KubeEvent) -> None:
        self.event_log.record(event)

    # -- pods ----------------------------------------------------------------------

    def create_pod(self, pod: Pod) -> Pod:
        pod.meta.creation_time = self.env.now
        return self._create("pods", pod.name, pod)

    def get_pod(self, name: str) -> Pod:
        return self._get("pods", name)

    def try_get_pod(self, name: str) -> Optional[Pod]:
        if self.env.race_detector is not None:
            note_read(self.env, self._race_label, f"pods/{name}",
                      "KubeAPI.try_get_pod")
        return self._stores["pods"].get(name)

    def list_pods(self, owner: Optional[str] = None,
                  phase: Optional[str] = None,
                  node_name: Optional[str] = None) -> List[Pod]:
        pods: Iterable[Pod] = self._stores["pods"].values()
        if owner is not None:
            pods = [p for p in pods if p.meta.owner == owner]
        if phase is not None:
            pods = [p for p in pods if p.phase == phase]
        if node_name is not None:
            pods = [p for p in pods if p.node_name == node_name]
        return list(pods)

    def update_pod(self, pod: Pod) -> Pod:
        if pod.name not in self._stores["pods"]:
            raise ObjectNotFoundError(f"pods/{pod.name}")
        self._notify("pods", MODIFIED, pod)
        return pod

    def mark_pod_for_deletion(self, name: str) -> Optional[Pod]:
        """Graceful delete: flag first (visible to the scheduler), then
        remove once the kubelet has torn the pod down."""
        pod = self.try_get_pod(name)
        if pod is None:
            return None
        if not pod.meta.deletion_requested:
            pod.meta.deletion_requested = True
            pod.meta.deletion_requested_at = self.env.now
            self._notify("pods", MODIFIED, pod)
        return pod

    def delete_pod(self, name: str) -> Pod:
        return self._delete("pods", name)

    def bind_pod(self, pod: Pod, node_name: str) -> None:
        """Record the scheduler's placement decision."""
        if pod.meta.deletion_requested:
            raise ConflictError(f"pod {pod.name} is being deleted")
        pod.node_name = node_name
        pod.scheduled_at = self.env.now
        self._notify("pods", MODIFIED, pod)

    # -- nodes ---------------------------------------------------------------------

    def create_node(self, node: Node) -> Node:
        return self._create("nodes", node.name, node)

    def get_node(self, name: str) -> Node:
        return self._get("nodes", name)

    def list_nodes(self) -> List[Node]:
        return self._list("nodes")

    def update_node(self, node: Node) -> Node:
        self._notify("nodes", MODIFIED, node)
        return node

    # -- workload sets ----------------------------------------------------------------

    def create_replicaset(self, rs: ReplicaSet) -> ReplicaSet:
        return self._create("replicasets", rs.name, rs)

    def delete_replicaset(self, name: str) -> ReplicaSet:
        return self._delete("replicasets", name)

    def list_replicasets(self) -> List[ReplicaSet]:
        return self._list("replicasets")

    def create_statefulset(self, ss: StatefulSet) -> StatefulSet:
        return self._create("statefulsets", ss.name, ss)

    def delete_statefulset(self, name: str) -> StatefulSet:
        return self._delete("statefulsets", name)

    def list_statefulsets(self) -> List[StatefulSet]:
        return self._list("statefulsets")

    def create_job(self, job: KubeJob) -> KubeJob:
        return self._create("jobs", job.name, job)

    def get_job(self, name: str) -> KubeJob:
        return self._get("jobs", name)

    def delete_job(self, name: str) -> KubeJob:
        return self._delete("jobs", name)

    def create_deployment(self, deployment: Deployment) -> Deployment:
        return self._create("deployments", deployment.name, deployment)

    def delete_deployment(self, name: str) -> Deployment:
        return self._delete("deployments", name)

    # -- volumes and policies ----------------------------------------------------------

    def create_pvc(self, pvc: PersistentVolumeClaim) -> PersistentVolumeClaim:
        return self._create("pvcs", pvc.name, pvc)

    def get_pvc(self, name: str) -> PersistentVolumeClaim:
        return self._get("pvcs", name)

    def try_get_pvc(self, name: str) -> Optional[PersistentVolumeClaim]:
        if self.env.race_detector is not None:
            note_read(self.env, self._race_label, f"pvcs/{name}",
                      "KubeAPI.try_get_pvc")
        return self._stores["pvcs"].get(name)

    def delete_pvc(self, name: str) -> PersistentVolumeClaim:
        return self._delete("pvcs", name)

    def create_network_policy(self, policy: NetworkPolicy) -> NetworkPolicy:
        return self._create("networkpolicies", policy.name, policy)

    def delete_network_policy(self, name: str) -> NetworkPolicy:
        return self._delete("networkpolicies", name)

    def list_network_policies(self) -> List[NetworkPolicy]:
        return self._list("networkpolicies")

    # -- convenience -------------------------------------------------------------------

    def pod_phase_counts(self) -> Dict[str, int]:
        counts = {PENDING: 0, RUNNING: 0, SUCCEEDED: 0, FAILED: 0}
        for pod in self._stores["pods"].values():
            counts[pod.phase] = counts.get(pod.phase, 0) + 1
        return counts
