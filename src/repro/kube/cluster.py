"""Cluster facade: nodes, kubelets, scheduler, controllers, fault hooks.

This is the entry point substrate consumers (FfDL, the benchmarks) use to
stand up a simulated GPU cluster:

    cluster = Cluster(env, rng, SchedulerConfig(policy=PACK, gang=True))
    cluster.add_nodes(15, NodeCapacity(cpus=32, memory_gb=256, gpus=4,
                                       gpu_type="K80"))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.docker import Image, Registry
from repro.errors import KubeError
from repro.kube.api import KubeAPI
from repro.kube.controllers import NodeController, WorkloadControllers
from repro.kube.kubelet import Kubelet
from repro.kube.objects import Node, NodeCapacity, ObjectMeta, Pod
from repro.kube.resources import NodeAllocation, ResourceRequest
from repro.kube.scheduling.framework import Scheduler, SchedulerConfig
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry

#: Default grace period between a deletion request and object removal,
#: during which the scheduler can observe the 'skip schedule deleting pod'
#: condition.  (Kubernetes' default termination grace is 30s; tests use a
#: shorter default for speed.)
DELETION_GRACE_S = 1.0


class Cluster:
    """A simulated Kubernetes cluster."""

    def __init__(self, env: Environment, rng: RngRegistry,
                 scheduler_config: Optional[SchedulerConfig] = None,
                 registry: Optional[Registry] = None,
                 node_detection_latency_s: float = 40.0,
                 pod_eviction_timeout_s: float = 60.0,
                 deletion_grace_s: float = DELETION_GRACE_S,
                 terminal_pod_gc_ttl_s: float = 600.0):
        self.env = env
        self.rng = rng
        self.api = KubeAPI(env)
        self.registry = registry or Registry(env)
        self.allocations: Dict[str, NodeAllocation] = {}
        self.kubelets: Dict[str, Kubelet] = {}
        self._assignments: Dict[str, Tuple[str, ResourceRequest]] = {}
        self._dead_nodes: set = set()
        self.deletion_grace_s = deletion_grace_s
        self.scheduler = Scheduler(env, self.api, self, rng,
                                   scheduler_config)
        self.controllers = WorkloadControllers(env, self.api, self)
        self.node_controller = NodeController(
            env, self.api, self,
            detection_latency_s=node_detection_latency_s,
            eviction_timeout_s=pod_eviction_timeout_s)
        #: (time, pod_name, pod_type, cause) for every pod deletion.
        self.deletion_log: List[Tuple[float, str, Optional[str], str]] = []
        #: Terminal-pod garbage collection (kube-controller-manager's
        #: podgc): completed/failed pods are removed after a TTL instead
        #: of accumulating on nodes.  0 disables.
        self.terminal_pod_gc_ttl_s = terminal_pod_gc_ttl_s
        self.api.subscribe("pods", self._on_pod_gc)

    def _on_pod_gc(self, verb: str, pod: Pod) -> None:
        if verb != "MODIFIED" or not pod.is_terminal \
                or self.terminal_pod_gc_ttl_s <= 0:
            return
        if pod.meta.annotations.get("gc-scheduled"):
            return
        pod.meta.annotations["gc-scheduled"] = "true"

        def collect():
            yield self.env.timeout(self.terminal_pod_gc_ttl_s)
            current = self.api.try_get_pod(pod.name)
            if current is not None and current.meta.uid == pod.meta.uid \
                    and current.is_terminal:
                self.delete_pod(pod.name, cause="gc")

        self.env.process(collect(), name=f"podgc:{pod.name}")

    # -- topology ------------------------------------------------------------

    def add_node(self, name: str, capacity: NodeCapacity,
                 labels: Optional[Dict[str, str]] = None) -> Node:
        if name in self.kubelets:
            raise KubeError(f"node {name!r} already exists")
        node_labels = dict(labels or {})
        if capacity.gpu_type:
            node_labels.setdefault("gpu-type", capacity.gpu_type)
        node = Node(meta=ObjectMeta(name=name, labels=node_labels),
                    capacity=capacity)
        self.api.create_node(node)
        self.allocations[name] = NodeAllocation(capacity)
        self.kubelets[name] = Kubelet(
            self.env, self.api, node, self.registry,
            on_pod_terminal=self._on_pod_terminal)
        self.scheduler.kick()
        return node

    def add_nodes(self, count: int, capacity: NodeCapacity,
                  prefix: str = "node",
                  labels: Optional[Dict[str, str]] = None) -> List[Node]:
        suffix = capacity.gpu_type or "cpu"
        return [self.add_node(f"{prefix}-{suffix}-{i}", capacity, labels)
                for i in range(count)]

    def push_image(self, image: Image) -> None:
        self.registry.push(image)

    def allocation(self, node_name: str) -> NodeAllocation:
        return self.allocations[node_name]

    def node_is_alive(self, node_name: str) -> bool:
        return node_name not in self._dead_nodes

    # -- scheduling callbacks ------------------------------------------------------

    def reserve(self, pod: Pod, node_name: str) -> None:
        """Allocate resources for a pending binding (scheduler 'assume')."""
        allocation = self.allocations[node_name]
        allocation.allocate(pod.spec.resources)
        self.scheduler.invalidate_node(node_name)
        # Keyed by uid: StatefulSets reuse pod names, and a stale release
        # against a name would free the replacement's resources.
        self._assignments[pod.meta.uid] = (node_name, pod.spec.resources)

    def bind_reserved(self, pod: Pod, node_name: str) -> None:
        """Commit a previously reserved placement."""
        self.api.bind_pod(pod, node_name)

    def assign(self, pod: Pod, node_name: str) -> None:
        """Allocate resources and bind in one step."""
        self.reserve(pod, node_name)
        self.bind_reserved(pod, node_name)

    def release(self, pod: Pod) -> None:
        assignment = self._assignments.pop(pod.meta.uid, None)
        if assignment is None:
            return
        node_name, request = assignment
        self.allocations[node_name].release(request)
        self.scheduler.invalidate_node(node_name)
        self.scheduler.kick()

    def _on_pod_terminal(self, pod: Pod, outcome: str) -> None:
        self.release(pod)

    # -- pod deletion ------------------------------------------------------------------

    def delete_pod(self, name: str, cause: str = "user") -> None:
        """Gracefully delete a pod: flag, let the kubelet tear it down, and
        force-remove after the grace period if nothing else did."""
        pod = self.api.mark_pod_for_deletion(name)
        if pod is None:
            return
        self.deletion_log.append((self.env.now, name,
                                  pod.meta.labels.get("type"), cause))

        def finalize():
            yield self.env.timeout(self.deletion_grace_s)
            # The name may have been reused by a replacement pod by now:
            # only finalize the exact object this deletion targeted.
            current = self.api.try_get_pod(name)
            if current is not None and current.meta.uid == pod.meta.uid:
                self.release(pod)
                self.api.delete_pod(name)

        self.env.process(finalize(), name=f"pod-finalize:{name}")

    # -- fault injection -----------------------------------------------------------------

    def fail_node(self, node_name: str) -> None:
        """The machine dies: containers vanish, heartbeats stop."""
        if node_name in self._dead_nodes:
            return
        self._dead_nodes.add(node_name)
        self.kubelets[node_name].crash()
        node = self.api.get_node(node_name)
        self.node_controller.node_failed(node)

    def node_is_up(self, node_name: str) -> bool:
        """Whether the node is alive (not crashed via :meth:`fail_node`)."""
        return node_name not in self._dead_nodes

    def recover_node(self, node_name: str) -> None:
        if node_name not in self._dead_nodes:
            return
        self._dead_nodes.discard(node_name)
        self.kubelets[node_name].recover()
        node = self.api.get_node(node_name)
        self.node_controller.node_recovered(node)
        # Anything still assigned to the node was lost with its containers.
        for pod in self.api.list_pods(node_name=node_name):
            self.delete_pod(pod.name,
                            cause="gc" if pod.is_terminal
                            else "node-failure")
        self.scheduler.kick()

    def cordon(self, node_name: str) -> None:
        node = self.api.get_node(node_name)
        node.unschedulable = True
        self.api.update_node(node)

    def drain_node(self, node_name: str) -> List[str]:
        """Cordon the node and evict every pod on it (maintenance drain).

        Returns the names of the evicted pods.  The paper's operations
        story relies on this: "nodes fail or are removed for maintenance,
        and new resources added at any time"; faulty nodes found in the
        scale test "were later cordoned".
        """
        self.cordon(node_name)
        evicted = []
        for pod in self.api.list_pods(node_name=node_name):
            evicted.append(pod.name)
            self.delete_pod(pod.name, cause="drain")
        return evicted

    def uncordon(self, node_name: str) -> None:
        node = self.api.get_node(node_name)
        node.unschedulable = False
        self.api.update_node(node)
        self.scheduler.kick()

    # -- introspection -----------------------------------------------------------------------

    def total_gpus(self) -> int:
        return sum(a.capacity.gpus for a in self.allocations.values())

    def allocated_gpus(self) -> int:
        return sum(a.allocated_gpus for a in self.allocations.values())

    def gpu_utilization(self) -> float:
        total = self.total_gpus()
        return self.allocated_gpus() / total if total else 0.0

    def idle_gpus_on_running_pods(self) -> int:
        """GPUs held by Running pods whose gang is not fully running —
        the paper's 'temporarily deadlocked' learners hoarding GPUs."""
        running = self.api.list_pods(phase="Running")
        by_gang: Dict[str, List[Pod]] = {}
        for pod in running + self.api.list_pods(phase="Pending"):
            if pod.spec.gang_name:
                by_gang.setdefault(pod.spec.gang_name, []).append(pod)
        idle = 0
        for gang_name, members in by_gang.items():
            gang_size = max(p.spec.gang_size for p in members)
            running_members = [p for p in members if p.phase == "Running"]
            if len(running_members) < gang_size:
                idle += sum(p.spec.resources.gpus for p in running_members)
        return idle
