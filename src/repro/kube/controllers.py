"""Workload and node controllers.

Implements the reconciliation behaviour FfDL relies on:

* ReplicaSet / Deployment — keep N interchangeable replicas running (FfDL
  microservices and helper pods).
* StatefulSet — stable pod identities (``learner-0`` ...), recreated in
  place after failure, optionally forming a scheduling gang.
* Job — run-to-completion with bounded retries (the Guardian).
* NodeController — detects NotReady nodes and evicts their pods, which is
  the mechanism behind the paper's Figures 7 and 8.

All controllers are event-driven (no reconcile polling).
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.kube.api import ADDED, DELETED, KubeAPI, MODIFIED
from repro.kube.events import EVICTED, KubeEvent, NODE_NOT_READY_EVENT
from repro.kube.objects import (
    FAILED,
    KubeJob,
    NODE_NOT_READY,
    NODE_READY,
    Node,
    Pod,
    SUCCEEDED,
    StatefulSet,
)
from repro.sim.core import Environment

if TYPE_CHECKING:  # pragma: no cover
    from repro.kube.cluster import Cluster

#: Delay between observing a missing replica and creating its replacement.
RECONCILE_DELAY_S = 0.5


class WorkloadControllers:
    """ReplicaSet, Deployment, StatefulSet and Job reconciliation."""

    def __init__(self, env: Environment, api: KubeAPI, cluster: "Cluster"):
        self.env = env
        self.api = api
        self.cluster = cluster
        self._rs_counters: Dict[str, int] = {}
        #: Pod uids whose failure was already charged to their KubeJob
        #: (a pod can both fail and later be deleted; count it once).
        self._job_failures_counted: set = set()
        #: Owner uids with a reconcile already scheduled (workqueue
        #: dedup): N same-instant pod deletions must collapse into one
        #: reconcile pass, not race N identical passes.
        self._pending_reconciles: set = set()
        api.subscribe("replicasets", self._on_set_change)
        api.subscribe("statefulsets", self._on_set_change)
        api.subscribe("deployments", self._on_set_change)
        api.subscribe("jobs", self._on_job_change)
        api.subscribe("pods", self._on_pod_change)

    # -- set lifecycle ---------------------------------------------------------

    def _on_set_change(self, verb: str, obj) -> None:
        if verb == ADDED:
            self._reconcile(obj)
        elif verb == DELETED:
            self._delete_children(obj)

    def _on_job_change(self, verb: str, job: KubeJob) -> None:
        if verb == ADDED:
            self._spawn_job_pod(job)
        elif verb == DELETED:
            self._delete_children(job)

    def _on_pod_change(self, verb: str, pod: Pod) -> None:
        owner_uid = pod.meta.owner
        if owner_uid is None:
            return
        pod_gone = verb == DELETED
        pod_failed = verb == MODIFIED and pod.phase == FAILED
        pod_done = verb == MODIFIED and pod.phase == SUCCEEDED
        if not (pod_gone or pod_failed or pod_done):
            return
        owner = self._find_owner(owner_uid)
        if owner is None:
            return
        if isinstance(owner, KubeJob):
            self._handle_job_pod(owner, pod, pod_done, pod_failed, pod_gone)
            return
        if pod_done:
            return  # sets do not replace successfully completed pods
        self._schedule_reconcile(owner)

    # -- reconciliation -----------------------------------------------------------

    def _find_owner(self, owner_uid: str):
        for obj in (self.api.list_replicasets() +
                    self.api.list_statefulsets() +
                    self.api._list("deployments") +
                    self.api._list("jobs")):
            if obj.meta.uid == owner_uid:
                return obj
        return None

    def _schedule_reconcile(self, owner) -> None:
        if owner.meta.uid in self._pending_reconciles:
            # Workqueue semantics: the pending pass reads current state
            # when it fires, so further triggers until then are covered.
            return
        self._pending_reconciles.add(owner.meta.uid)

        def later():
            yield self.env.timeout(RECONCILE_DELAY_S)
            # Clear before reconciling: _reconcile is atomic (no yields),
            # so a trigger racing it lands after the pass and schedules a
            # fresh one instead of being lost.
            self._pending_reconciles.discard(owner.meta.uid)
            # The owner may have been deleted while we waited.
            if self._find_owner(owner.meta.uid) is not None:
                self._reconcile(owner)

        self.env.process(later(), name=f"reconcile:{owner.name}")

    def _reconcile(self, owner) -> None:
        if isinstance(owner, StatefulSet):
            self._reconcile_statefulset(owner)
        else:
            self._reconcile_replicaset_like(owner)

    def _reconcile_statefulset(self, ss: StatefulSet) -> None:
        gang_name = ss.effective_gang_name()
        for ordinal in range(ss.replicas):
            pod_name = f"{ss.name}-{ordinal}"
            existing = self.api.try_get_pod(pod_name)
            if existing is not None:
                if existing.phase == FAILED and \
                        not existing.meta.deletion_requested:
                    # Replace the failed pod under the same identity.
                    self.cluster.delete_pod(pod_name,
                                            cause="failed-replacement")
                continue
            pod = ss.template.instantiate(
                pod_name, ss.meta.uid, self.env.now,
                gang_name=gang_name,
                gang_size=ss.effective_gang_size() if ss.gang else 1)
            self.api.create_pod(pod)

    def _reconcile_replicaset_like(self, owner) -> None:
        live = [p for p in self.api.list_pods(owner=owner.meta.uid)
                if not p.is_terminal and not p.meta.deletion_requested]
        missing = owner.replicas - len(live)
        for _ in range(missing):
            counter = self._rs_counters.get(owner.meta.uid, 0) + 1
            self._rs_counters[owner.meta.uid] = counter
            pod = owner.template.instantiate(
                f"{owner.name}-{counter}", owner.meta.uid, self.env.now)
            self.api.create_pod(pod)

    def _delete_children(self, owner) -> None:
        for pod in self.api.list_pods(owner=owner.meta.uid):
            self.cluster.delete_pod(pod.name, cause="owner-deleted")

    # -- jobs ------------------------------------------------------------------------

    def _spawn_job_pod(self, job: KubeJob) -> None:
        attempt = job.failed_attempts + 1
        pod = job.template.instantiate(
            f"{job.name}-attempt{attempt}", job.meta.uid, self.env.now)
        self.api.create_pod(pod)

    def _handle_job_pod(self, job: KubeJob, pod: Pod, done: bool,
                        failed: bool, gone: bool) -> None:
        if done:
            job.succeeded += 1
            return
        if not (failed or gone):
            return
        if job.succeeded >= job.completions:
            return
        if gone and pod.phase == SUCCEEDED:
            return  # deletion of a completed pod is not a failure
        if pod.meta.uid in self._job_failures_counted:
            return
        self._job_failures_counted.add(pod.meta.uid)
        job.failed_attempts += 1
        if job.failed_attempts > job.backoff_limit:
            return  # give up; FfDL marks the DL job FAILED in MongoDB
        if gone and not self.api.exists("jobs", job.name):
            return

        def retry():
            yield self.env.timeout(RECONCILE_DELAY_S)
            if self.api.exists("jobs", job.name):
                self._spawn_job_pod(job)

        self.env.process(retry(), name=f"job-retry:{job.name}")


class NodeController:
    """Detects node failures and evicts their pods.

    The paper (Section 5.6): "when worker nodes became NotReady, the
    NodeControllerEviction component in Kubernetes would delete all pods
    running on the worker".
    """

    def __init__(self, env: Environment, api: KubeAPI, cluster: "Cluster",
                 detection_latency_s: float = 40.0,
                 eviction_timeout_s: float = 60.0):
        self.env = env
        self.api = api
        self.cluster = cluster
        self.detection_latency_s = detection_latency_s
        self.eviction_timeout_s = eviction_timeout_s
        self.evictions = 0

    def node_failed(self, node: Node) -> None:
        """Invoked by the cluster fault hooks when a node dies."""
        self.env.process(self._detect_and_evict(node),
                         name=f"nodectl:{node.name}")

    def _detect_and_evict(self, node: Node):
        yield self.env.timeout(self.detection_latency_s)
        if self.cluster.node_is_alive(node.name):
            return  # blip recovered before detection
        node.condition = NODE_NOT_READY
        self.api.update_node(node)
        self.api.record_event(KubeEvent(self.env.now, NODE_NOT_READY_EVENT,
                                        "Node", node.name))
        yield self.env.timeout(self.eviction_timeout_s)
        if self.cluster.node_is_alive(node.name):
            node.condition = NODE_READY
            self.api.update_node(node)
            return
        for pod in self.api.list_pods(node_name=node.name):
            if pod.is_terminal:
                # Already-finished pods lost nothing to the failure; they
                # are collected as ordinary garbage.
                self.cluster.delete_pod(pod.name, cause="gc")
                continue
            self.evictions += 1
            self.api.record_event(KubeEvent(
                self.env.now, EVICTED, "Pod", pod.name,
                reason="NodeLost", message=f"node {node.name} NotReady",
                pod_type=pod.meta.labels.get("type")))
            self.cluster.delete_pod(pod.name, cause="node-failure")

    def node_recovered(self, node: Node) -> None:
        node.condition = NODE_READY
        self.api.update_node(node)
