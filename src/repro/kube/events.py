"""Kubernetes event records, including the FailedScheduling taxonomy.

Table 8 of the paper classifies four months of scheduler log messages; the
constants here carry both the short reason and the exact message template so
the failure-analysis benchmarks can regenerate the same classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

FAILED_SCHEDULING = "FailedScheduling"
SCHEDULED = "Scheduled"
PULLED = "Pulled"
STARTED = "Started"
KILLED = "Killed"
EVICTED = "Evicted"
NODE_NOT_READY_EVENT = "NodeNotReady"

# FailedScheduling reasons, mirroring Table 8.
REASON_NO_NODES = "No nodes available"
REASON_BINDING_REJECTED = "Binding Rejected"
REASON_SKIP_DELETING = "skip deleting pods"
REASON_PVC_NOT_FOUND = "persistentvolumeclaim"
REASON_POD_NOT_FOUND = "pods not found"
REASON_TIMEOUT = "Timeout"
REASON_ASSUME_FAILED = "Assume Pod failed"

MESSAGE_TEMPLATES = {
    REASON_NO_NODES: ("No nodes are available that match all of the "
                      "predicates: {predicates}"),
    REASON_BINDING_REJECTED: ('Operation cannot be fulfilled on pods/binding '
                              '"{pod}": pod {pod} is being deleted, cannot '
                              'be assigned to a host'),
    REASON_SKIP_DELETING: "skip schedule deleting pod: {pod}",
    REASON_PVC_NOT_FOUND: ('persistentvolumeclaim "{claim}" not found '
                           "(repeated {n} times)"),
    REASON_POD_NOT_FOUND: 'pods "{pod}" not found',
    REASON_TIMEOUT: ("Timeout: request did not complete within allowed "
                     "duration"),
    REASON_ASSUME_FAILED: ("pod {pod} state wasn't initial but get assumed"),
}

# Common scheduling predicates referenced by REASON_NO_NODES messages.
PREDICATE_INSUFFICIENT_GPU = "Insufficient alpha.kubernetes.io/nvidia-gpu"
PREDICATE_MATCH_NODE_SELECTOR = "MatchNodeSelector"
PREDICATE_NODE_UNSCHEDULABLE = "NodeUnschedulable"
PREDICATE_INSUFFICIENT_CPU = "Insufficient cpu"
PREDICATE_INSUFFICIENT_MEMORY = "Insufficient memory"


@dataclass
class KubeEvent:
    """One recorded cluster event."""

    time: float
    kind: str  # e.g. FailedScheduling, Scheduled, Evicted
    object_kind: str  # Pod, Node, ...
    object_name: str
    reason: str = ""
    message: str = ""
    #: Pod-type label (learner, lhelper, jobmonitor, ...) for Figure 6.
    pod_type: Optional[str] = None


class EventLog:
    """Append-only event sink with simple query helpers."""

    def __init__(self):
        self.events: List[KubeEvent] = []

    def record(self, event: KubeEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[KubeEvent]:
        return [e for e in self.events if e.kind == kind]

    def failed_scheduling(self) -> List[KubeEvent]:
        return self.of_kind(FAILED_SCHEDULING)

    def __len__(self) -> int:
        return len(self.events)
