"""The node agent: runs pods' containers and reports their fate.

One :class:`Kubelet` per node.  It reacts to pod bindings (starts the pod's
containers, pulling images first), container exits (applies the restart
policy), deletion requests (tears the pod down) and node crashes (all
containers die instantly; the node controller handles the aftermath).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.docker import Container, EXITED, Registry
from repro.errors import ImageNotFoundError
from repro.kube.api import KubeAPI, MODIFIED
from repro.kube.events import KILLED, KubeEvent, STARTED
from repro.kube.objects import (
    FAILED,
    Node,
    PENDING,
    Pod,
    RESTART_ALWAYS,
    RESTART_NEVER,
    RESTART_ON_FAILURE,
    RUNNING,
    SUCCEEDED,
)
from repro.sim.core import Environment, Interrupt, Process

#: Extra startup latency components per pod (seconds): mounting volumes and
#: credentials.  Learners bind object storage + NFS, which the paper reports
#: dominates their 10-20s restart time (Table 3).
DEFAULT_POD_SETUP_S = 1.0


class Kubelet:
    """Runs pods bound to one node."""

    def __init__(self, env: Environment, api: KubeAPI, node: Node,
                 registry: Registry,
                 on_pod_terminal: Optional[Callable[[Pod, str], None]] = None,
                 restart_delay_s: float = 2.0):
        self.env = env
        self.api = api
        self.node = node
        self.registry = registry
        self.restart_delay_s = restart_delay_s
        #: Called with (pod, outcome) when a pod reaches a terminal phase or
        #: is torn down; the cluster uses it to release resources.
        self.on_pod_terminal = on_pod_terminal
        self.alive = True
        #: Containers keyed by pod uid (names are reused by
        #: StatefulSets; uids are unique).
        self._pod_containers: Dict[str, List[Container]] = {}
        #: The live lifecycle process (setup or monitor) per pod uid, so
        #: crash injection can interrupt a pod mid-image-pull.
        self._pod_processes: Dict[str, Process] = {}
        # Node-indexed subscription: this kubelet only acts on pods
        # bound to its own node (the handler below still self-filters,
        # which is the whole behavior under REPRO_PERF_DISABLE).
        api.subscribe_pods_for_node(node.name, self._on_pod_change)

    # -- watch handlers --------------------------------------------------------

    def _on_pod_change(self, verb: str, pod: Pod) -> None:
        if not self.alive or pod.node_name != self.node.name:
            return
        if verb != MODIFIED:
            return
        if pod.meta.deletion_requested and pod.meta.uid in self._pod_containers:
            self._teardown(pod, reason="deleted")
            return
        if pod.phase == PENDING and pod.meta.uid not in self._pod_containers \
                and not pod.meta.deletion_requested:
            self._pod_containers[pod.meta.uid] = []
            self._pod_processes[pod.meta.uid] = self.env.process(
                self._run_pod(pod),
                name=f"kubelet:{self.node.name}:{pod.name}")

    # -- pod lifecycle -----------------------------------------------------------

    def _run_pod(self, pod: Pod):
        try:
            yield from self._setup_pod(pod)
        except Interrupt:
            # Crash injection: mark the pod failed (it must not linger in
            # Pending) and re-raise so the injected kill stays visible to
            # the kernel instead of being swallowed.
            self._kill_pod(pod)
            self._finish_pod(pod, FAILED, "Interrupted")
            raise

    def _setup_pod(self, pod: Pod):
        setup_s = float(pod.meta.annotations.get("pod-setup-seconds",
                                                 DEFAULT_POD_SETUP_S))
        yield self.env.timeout(setup_s)
        if not self.alive or pod.meta.deletion_requested:
            return
        # Pull every container image (cached pulls are near-free).
        for cspec in pod.spec.containers:
            try:
                yield self.registry.pull(self.node.name, cspec.image)
            except ImageNotFoundError:
                self._finish_pod(pod, FAILED, "ImagePullError")
                return
            if not self.alive or pod.meta.deletion_requested:
                return
        containers = []
        for cspec in pod.spec.containers:
            image = self.registry.get(cspec.image)
            container = Container(self.env, image,
                                  f"{pod.name}/{cspec.name}", cspec.workload)
            containers.append(container)
        self._pod_containers[pod.meta.uid] = containers
        for container in containers:
            container.start()
        pod.started_at = self.env.now
        self._set_phase(pod, RUNNING)
        self.api.record_event(KubeEvent(self.env.now, STARTED, "Pod",
                                        pod.name,
                                        pod_type=pod.meta.labels.get("type")))
        self._pod_processes[pod.meta.uid] = self.env.process(
            self._monitor_pod(pod),
            name=f"podmon:{self.node.name}:{pod.name}")

    def _monitor_pod(self, pod: Pod):
        """Wait for container exits; apply the restart policy."""
        try:
            yield from self._watch_containers(pod)
        except Interrupt:
            # Crash injection against a running pod: the containers die
            # with it, the pod fails, and the Interrupt propagates.
            self._kill_pod(pod)
            self._finish_pod(pod, FAILED, "Interrupted")
            raise

    def _watch_containers(self, pod: Pod):
        while self.alive and not pod.meta.deletion_requested:
            containers = self._pod_containers.get(pod.meta.uid)
            if not containers:
                return
            waits = [c.wait() for c in containers if c.state != EXITED]
            if waits:
                yield self.env.any_of(waits)
            if not self.alive or pod.meta.deletion_requested \
                    or pod.meta.uid not in self._pod_containers:
                return
            containers = self._pod_containers.get(pod.meta.uid) or containers
            exited = [c for c in containers if c.state == EXITED]
            failed = [c for c in exited if c.exit_code != 0]
            policy = pod.spec.restart_policy
            if failed and policy in (RESTART_ALWAYS, RESTART_ON_FAILURE):
                yield self.env.timeout(self.restart_delay_s)
                if not self.alive or pod.meta.deletion_requested:
                    return
                self._restart_containers(pod, failed)
                continue
            if not failed and policy == RESTART_ALWAYS and exited:
                yield self.env.timeout(self.restart_delay_s)
                if not self.alive or pod.meta.deletion_requested:
                    return
                self._restart_containers(pod, exited)
                continue
            if len(exited) == len(containers):
                phase = FAILED if failed else SUCCEEDED
                reason = "ContainerFailed" if failed else None
                self._finish_pod(pod, phase, reason)
                return
            # Some containers still running (e.g. idle sidecars): for
            # RESTART_NEVER pods the first failure is terminal.
            if failed and policy == RESTART_NEVER:
                for container in containers:
                    container.kill()
                self._finish_pod(pod, FAILED, "ContainerFailed")
                return

    def _restart_containers(self, pod: Pod,
                            dead: List[Container]) -> None:
        containers = self._pod_containers.get(pod.meta.uid)
        if containers is None:
            return
        for old in dead:
            spec = next(c for c in pod.spec.containers
                        if f"{pod.name}/{c.name}" == old.name)
            replacement = Container(self.env, old.image, old.name,
                                    spec.workload)
            containers[containers.index(old)] = replacement
            replacement.start()
            pod.restarts += 1
        self.api.update_pod(pod)

    def _kill_pod(self, pod: Pod) -> None:
        for container in self._pod_containers.get(pod.meta.uid) or []:
            container.kill()

    def interrupt_pod(self, pod: Pod, cause: str = "crash") -> bool:
        """Inject a crash into the pod's live lifecycle process.

        Interrupts whichever process currently owns the pod (image pull /
        setup or container monitoring).  Returns ``False`` when the pod
        has no live process on this node.
        """
        process = self._pod_processes.get(pod.meta.uid)
        if process is None or not process.is_alive:
            return False
        process.interrupt(cause)
        return True

    def _finish_pod(self, pod: Pod, phase: str,
                    reason: Optional[str]) -> None:
        self._pod_containers.pop(pod.meta.uid, None)
        self._pod_processes.pop(pod.meta.uid, None)
        pod.finished_at = self.env.now
        self._set_phase(pod, phase, reason)
        if self.on_pod_terminal is not None:
            self.on_pod_terminal(pod, phase)

    def _teardown(self, pod: Pod, reason: str) -> None:
        self._pod_processes.pop(pod.meta.uid, None)
        containers = self._pod_containers.pop(pod.meta.uid, None)
        if containers:
            for container in containers:
                container.kill()
        self.api.record_event(KubeEvent(self.env.now, KILLED, "Pod",
                                        pod.name, reason=reason,
                                        pod_type=pod.meta.labels.get("type")))
        if self.on_pod_terminal is not None:
            self.on_pod_terminal(pod, "deleted")
        current = self.api.try_get_pod(pod.name)
        if current is not None and current.meta.uid == pod.meta.uid:
            self.api.delete_pod(pod.name)

    def _set_phase(self, pod: Pod, phase: str,
                   reason: Optional[str] = None) -> None:
        pod.phase = phase
        if reason:
            pod.termination_reason = reason
        current = self.api.try_get_pod(pod.name)
        if current is not None and current.meta.uid == pod.meta.uid:
            self.api.update_pod(pod)

    # -- node-level faults ------------------------------------------------------------

    def crash(self) -> None:
        """The node dies: every container on it is gone instantly."""
        self.alive = False
        for containers in self._pod_containers.values():
            for container in containers:
                container.kill()
        self._pod_containers.clear()
        self._pod_processes.clear()

    def recover(self) -> None:
        self.alive = True

    def running_pod_names(self) -> List[str]:
        names = []
        for uid in self._pod_containers:
            pod = self._find_pod_by_uid(uid)
            if pod is not None:
                names.append(pod.name)
        return sorted(names)

    def containers_for(self, pod_name: str) -> List[Container]:
        pod = self.api.try_get_pod(pod_name)
        if pod is None:
            return []
        return list(self._pod_containers.get(pod.meta.uid, []))

    def _find_pod_by_uid(self, uid: str):
        for pod in self.api.list_pods(node_name=self.node.name):
            if pod.meta.uid == uid:
                return pod
        return None
