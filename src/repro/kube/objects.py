"""Kubernetes API object model (the subset FfDL uses).

Pods, Nodes, ReplicaSets, StatefulSets, Jobs, Deployments, PVCs and
NetworkPolicies, with owner references for garbage collection and gang
annotations for the gang scheduler (the pod "owner" is how the paper's BSA
scheduler discovers gang name and size).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.kube.resources import NodeCapacity, ResourceRequest

# Pod phases.
PENDING = "Pending"
RUNNING = "Running"
SUCCEEDED = "Succeeded"
FAILED = "Failed"

# Node conditions.
NODE_READY = "Ready"
NODE_NOT_READY = "NotReady"

# Restart policies.
RESTART_ALWAYS = "Always"
RESTART_ON_FAILURE = "OnFailure"
RESTART_NEVER = "Never"

_uid_counter = itertools.count(1)


def new_uid(prefix: str = "uid") -> str:
    return f"{prefix}-{next(_uid_counter):08d}"


@dataclass
class ObjectMeta:
    """Identity and bookkeeping shared by all API objects."""

    name: str
    namespace: str = "default"
    labels: Dict[str, str] = field(default_factory=dict)
    annotations: Dict[str, str] = field(default_factory=dict)
    uid: str = field(default_factory=lambda: new_uid())
    owner: Optional[str] = None  # owner object's uid
    creation_time: float = 0.0
    deletion_requested: bool = False
    deletion_requested_at: float = 0.0


@dataclass
class ContainerSpec:
    """One container in a pod: the image plus its workload factory.

    ``workload`` is a callable ``(container) -> generator`` executed on the
    sim kernel when the kubelet starts the container; ``None`` means an idle
    container that runs until killed.
    """

    name: str
    image: str
    workload: Optional[Callable[[Any], Generator]] = None


@dataclass
class PodSpec:
    containers: List[ContainerSpec] = field(default_factory=list)
    resources: ResourceRequest = field(default_factory=ResourceRequest)
    restart_policy: str = RESTART_NEVER
    node_selector: Dict[str, str] = field(default_factory=dict)
    volume_claims: List[str] = field(default_factory=list)
    #: Gang scheduling metadata (derived from the owning set).
    gang_name: Optional[str] = None
    gang_size: int = 1


@dataclass
class Pod:
    meta: ObjectMeta
    spec: PodSpec
    phase: str = PENDING
    node_name: Optional[str] = None
    #: Timestamps for queueing analyses.
    scheduled_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    restarts: int = 0
    #: Why the pod reached a terminal phase (for failure analysis).
    termination_reason: Optional[str] = None

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def is_terminal(self) -> bool:
        return self.phase in (SUCCEEDED, FAILED)


@dataclass
class Node:
    meta: ObjectMeta
    capacity: NodeCapacity
    condition: str = NODE_READY
    unschedulable: bool = False  # cordoned

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def is_ready(self) -> bool:
        return self.condition == NODE_READY and not self.unschedulable


@dataclass
class PodTemplate:
    """Template stamped out by the set controllers."""

    containers: List[ContainerSpec] = field(default_factory=list)
    resources: ResourceRequest = field(default_factory=ResourceRequest)
    restart_policy: str = RESTART_ALWAYS
    node_selector: Dict[str, str] = field(default_factory=dict)
    volume_claims: List[str] = field(default_factory=list)
    labels: Dict[str, str] = field(default_factory=dict)

    def instantiate(self, name: str, owner_uid: str, now: float,
                    gang_name: Optional[str] = None,
                    gang_size: int = 1) -> Pod:
        meta = ObjectMeta(name=name, labels=dict(self.labels),
                          owner=owner_uid, creation_time=now)
        spec = PodSpec(containers=list(self.containers),
                       resources=self.resources,
                       restart_policy=self.restart_policy,
                       node_selector=dict(self.node_selector),
                       volume_claims=list(self.volume_claims),
                       gang_name=gang_name, gang_size=gang_size)
        return Pod(meta=meta, spec=spec)


@dataclass
class ReplicaSet:
    meta: ObjectMeta
    replicas: int
    template: PodTemplate

    @property
    def name(self) -> str:
        return self.meta.name


@dataclass
class StatefulSet:
    """Stable-identity replicas (learner-0, learner-1, ...)."""

    meta: ObjectMeta
    replicas: int
    template: PodTemplate
    #: Whether the set's pods form a scheduling gang.
    gang: bool = True
    #: Optional explicit gang identity: several sets (e.g. learners and
    #: parameter servers of one DL job) can share one gang.
    gang_name: Optional[str] = None
    gang_size: Optional[int] = None

    @property
    def name(self) -> str:
        return self.meta.name

    def effective_gang_name(self) -> Optional[str]:
        if not self.gang:
            return None
        return self.gang_name or self.name

    def effective_gang_size(self) -> int:
        return self.gang_size if self.gang_size is not None \
            else self.replicas


@dataclass
class KubeJob:
    """Run-to-completion workload (the Guardian runs as one of these)."""

    meta: ObjectMeta
    template: PodTemplate
    backoff_limit: int = 6
    completions: int = 1
    #: Filled by the controller.
    succeeded: int = 0
    failed_attempts: int = 0

    @property
    def name(self) -> str:
        return self.meta.name


@dataclass
class Deployment:
    """Thin wrapper over a ReplicaSet (FfDL helper pods use these)."""

    meta: ObjectMeta
    replicas: int
    template: PodTemplate

    @property
    def name(self) -> str:
        return self.meta.name


@dataclass
class PersistentVolumeClaim:
    meta: ObjectMeta
    bound: bool = False
    volume: Any = None  # NFSVolume once bound

    @property
    def name(self) -> str:
        return self.meta.name


@dataclass
class NetworkPolicy:
    """Isolation policy restricting a job's pods to their own peer group."""

    meta: ObjectMeta
    pod_selector: Dict[str, str] = field(default_factory=dict)
    allowed_peer_labels: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.meta.name

    def applies_to(self, pod: Pod) -> bool:
        return all(pod.meta.labels.get(k) == v
                   for k, v in self.pod_selector.items())

    def allows(self, src: Pod, dst: Pod) -> bool:
        """Whether traffic from src to dst is permitted by this policy."""
        if not self.applies_to(dst):
            return True
        return all(src.meta.labels.get(k) == v
                   for k, v in self.allowed_peer_labels.items())
