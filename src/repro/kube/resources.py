"""Resource vectors for pods and nodes.

A node carries CPUs, memory and GPUs of a single type (matching the paper's
clusters: K80, P100 and V100 machines).  Pods request a
:class:`ResourceRequest`; the scheduler matches requests against free node
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import KubeError


@dataclass(frozen=True)
class ResourceRequest:
    """What one pod asks for."""

    cpus: float = 1.0
    memory_gb: float = 4.0
    gpus: int = 0
    gpu_type: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cpus < 0 or self.memory_gb < 0 or self.gpus < 0:
            raise KubeError("resource quantities must be non-negative")
        if self.gpus > 0 and self.gpu_type is None:
            object.__setattr__(self, "gpu_type", "any")


@dataclass
class NodeCapacity:
    """Total resources of a node."""

    cpus: float
    memory_gb: float
    gpus: int = 0
    gpu_type: Optional[str] = None


class NodeAllocation:
    """Mutable free-resource tracker for one node."""

    def __init__(self, capacity: NodeCapacity):
        self.capacity = capacity
        self.free_cpus = capacity.cpus
        self.free_memory_gb = capacity.memory_gb
        self.free_gpus = capacity.gpus

    def fits(self, request: ResourceRequest) -> bool:
        if request.gpus > 0:
            if self.capacity.gpus == 0:
                return False
            if request.gpu_type not in (None, "any",
                                        self.capacity.gpu_type):
                return False
            if request.gpus > self.free_gpus:
                return False
        return (request.cpus <= self.free_cpus + 1e-9
                and request.memory_gb <= self.free_memory_gb + 1e-9)

    def allocate(self, request: ResourceRequest) -> None:
        if not self.fits(request):
            raise KubeError("allocation does not fit")
        self.free_cpus -= request.cpus
        self.free_memory_gb -= request.memory_gb
        if request.gpus:
            self.free_gpus -= request.gpus

    def release(self, request: ResourceRequest) -> None:
        self.free_cpus = min(self.capacity.cpus,
                             self.free_cpus + request.cpus)
        self.free_memory_gb = min(self.capacity.memory_gb,
                                  self.free_memory_gb + request.memory_gb)
        if request.gpus:
            self.free_gpus = min(self.capacity.gpus,
                                 self.free_gpus + request.gpus)

    @property
    def allocated_gpus(self) -> int:
        return self.capacity.gpus - self.free_gpus

    @property
    def gpu_utilization(self) -> float:
        if self.capacity.gpus == 0:
            return 0.0
        return self.allocated_gpus / self.capacity.gpus
