"""Scheduling: filter/score framework, Spread/Pack policies, BSA gang mode."""

from repro.kube.scheduling.bsa import bsa_place
from repro.kube.scheduling.framework import Scheduler, SchedulerConfig
from repro.kube.scheduling.policies import PACK, SPREAD, score_node

__all__ = ["PACK", "SPREAD", "Scheduler", "SchedulerConfig", "bsa_place",
           "score_node"]
