"""Biased Sampling Algorithm (BSA) for gang placement.

The paper adapts Tantawi's BSA [43, 44] as the K8S gang scheduler: the
logical entities are all pods in a gang, the physical entities are the
nodes, and "since in a DL platform, GPU is typically a scarce resource, the
objective is to pack GPU resources".  At production scale the assignment
space is combinatorially explosive, so BSA importance-samples node choices
biased toward nodes that satisfy the constraints and improve the packing
objective, keeping the best feasible assignment over a bounded number of
sampling rounds.

This module is a self-contained implementation of that heuristic: it never
mutates the real allocations — callers apply the returned assignment.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.kube.objects import Pod
from repro.kube.resources import NodeAllocation, ResourceRequest


class _Tentative:
    """Lightweight free-resource view used during a sampling round."""

    __slots__ = ("free_cpus", "free_memory_gb", "free_gpus", "capacity")

    def __init__(self, allocation: NodeAllocation):
        self.free_cpus = allocation.free_cpus
        self.free_memory_gb = allocation.free_memory_gb
        self.free_gpus = allocation.free_gpus
        self.capacity = allocation.capacity

    def fits(self, request: ResourceRequest) -> bool:
        if request.gpus > 0:
            if self.capacity.gpus == 0:
                return False
            if request.gpu_type not in (None, "any", self.capacity.gpu_type):
                return False
            if request.gpus > self.free_gpus:
                return False
        return (request.cpus <= self.free_cpus + 1e-9
                and request.memory_gb <= self.free_memory_gb + 1e-9)

    def take(self, request: ResourceRequest) -> None:
        self.free_cpus -= request.cpus
        self.free_memory_gb -= request.memory_gb
        self.free_gpus -= request.gpus

    def gpu_utilization(self) -> float:
        if self.capacity.gpus == 0:
            return 0.0
        return (self.capacity.gpus - self.free_gpus) / self.capacity.gpus


#: BSA objectives: pack GPUs onto few nodes (FfDL's choice, GPUs being the
#: scarce resource) or balance load across nodes (the alternative objective
#: the paper mentions the framework supports).
OBJECTIVE_PACK = "pack"
OBJECTIVE_BALANCE = "balance"


def _bias_weight(view: _Tentative, request: ResourceRequest,
                 alpha: float, objective: str) -> float:
    """Sampling bias toward nodes that improve the objective."""
    if objective == OBJECTIVE_BALANCE:
        if request.gpus > 0:
            return (1.0 + view.free_gpus) ** alpha
        return (1.0 + view.free_cpus) ** alpha
    if request.gpus > 0:
        return (1.0 + view.gpu_utilization() * view.capacity.gpus) ** alpha
    used_cpu = view.capacity.cpus - view.free_cpus
    return (1.0 + used_cpu) ** alpha


def _assignment_score(assignment: Dict[str, str],
                      views: Dict[str, _Tentative],
                      objective: str) -> float:
    if objective == OBJECTIVE_BALANCE:
        # Minimize the variance of GPU utilization across nodes.
        utils = [view.gpu_utilization() for view in views.values()]
        mean = sum(utils) / len(utils)
        variance = sum((u - mean) ** 2 for u in utils) / len(utils)
        return -variance
    # Pack: fewer distinct nodes, higher GPU packing.
    nodes_used = len(set(assignment.values()))
    packing = sum(view.gpu_utilization() ** 2
                  for view in views.values())
    return -float(nodes_used) + 0.01 * packing


def bsa_place(
    pods: Sequence[Pod],
    allocations: Dict[str, NodeAllocation],
    eligible_nodes: Dict[str, List[str]],
    rng: random.Random,
    rounds: int = 8,
    alpha: float = 2.0,
    objective: str = OBJECTIVE_PACK,
) -> Optional[Dict[str, str]]:
    """Find an all-or-nothing placement for the gang.

    ``eligible_nodes`` maps each pod name to the node names that pass its
    predicate filter (selector, readiness) against *current* state; resource
    feasibility is re-evaluated against the tentative view inside each
    sampling round.  Returns pod-name -> node-name, or None if no feasible
    assignment was sampled.
    """
    if not pods:
        return {}
    # Largest resource consumers first: standard bin-packing ordering that
    # BSA rounds all share.
    ordered = sorted(
        pods,
        key=lambda p: (p.spec.resources.gpus, p.spec.resources.cpus),
        reverse=True)
    best: Optional[Dict[str, str]] = None
    best_score = float("-inf")
    for _round in range(rounds):
        views = {name: _Tentative(alloc)
                 for name, alloc in allocations.items()}
        assignment: Dict[str, str] = {}
        feasible_round = True
        for pod in ordered:
            request = pod.spec.resources
            candidates = [n for n in eligible_nodes.get(pod.name, [])
                          if views[n].fits(request)]
            if not candidates:
                feasible_round = False
                break
            weights = [_bias_weight(views[n], request, alpha, objective)
                       for n in candidates]
            choice = rng.choices(candidates, weights=weights, k=1)[0]
            assignment[pod.name] = choice
            views[choice].take(request)
        if not feasible_round:
            continue
        score = _assignment_score(assignment, views, objective)
        if score > best_score:
            best_score = score
            best = assignment
    return best
