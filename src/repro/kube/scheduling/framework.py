"""The scheduler: queue, predicate filter, scoring, binding, gang mode.

Mirrors the Kubernetes scheduling pipeline the paper describes (Section 3.5):
"(1) filtering the nodes that satisfy the pod resource requirements and
other predicate constraints, (2) ranking the candidate nodes based on
priority functions, and (3) selecting the node with the highest rank" —
with FfDL's two modifications: the Pack priority function and BSA gang
scheduling.

The scheduler is event-driven: it wakes when pods arrive, when resources
free up, and when PVCs bind, so multi-month simulations need no polling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.kube.api import ADDED, DELETED, KubeAPI
from repro.kube.events import (
    FAILED_SCHEDULING,
    KubeEvent,
    MESSAGE_TEMPLATES,
    PREDICATE_INSUFFICIENT_GPU,
    PREDICATE_MATCH_NODE_SELECTOR,
    PREDICATE_NODE_UNSCHEDULABLE,
    REASON_ASSUME_FAILED,
    REASON_BINDING_REJECTED,
    REASON_NO_NODES,
    REASON_POD_NOT_FOUND,
    REASON_PVC_NOT_FOUND,
    REASON_SKIP_DELETING,
    REASON_TIMEOUT,
    SCHEDULED,
)
from repro.kube.objects import PENDING, Pod
from repro.kube.scheduling.bsa import bsa_place
from repro.kube.scheduling.policies import PACK, score_node
from repro.perf.flags import optimizations_enabled
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kube.cluster import Cluster
    from repro.kube.resources import NodeAllocation


@dataclass
class SchedulerConfig:
    policy: str = PACK
    gang: bool = False
    #: Coalescing delay before a scheduling pass after a wake-up.
    batch_delay_s: float = 0.01
    #: Cost of considering one pod (predicate + priority evaluation).
    per_pod_latency_s: float = 0.003
    #: API round-trip between choosing a node and the binding committing;
    #: deletions landing in this window are rejected at binding time
    #: (Table 8's "Binding Rejected" row).
    bind_latency_s: float = 0.05
    #: BSA gang-placement objective: "pack" (FfDL's choice) or "balance".
    bsa_objective: str = "pack"
    #: Informer-cache staleness: for this long after a deletion is
    #: requested, the scheduler still sees the pod as live, proceeds to
    #: select a node, and has the binding rejected by the (authoritative)
    #: API server — the dominant mechanism behind production's 17%
    #: "Binding Rejected" share.
    informer_staleness_s: float = 0.5
    bsa_rounds: int = 8
    #: Probabilities of the rare scheduler races observed in production
    #: (Table 8): API-server timeouts and stale assume-cache failures.
    timeout_race_probability: float = 0.0
    assume_race_probability: float = 0.0
    #: Node-scoring sample size, as in upstream Kubernetes'
    #: percentageOfNodesToScore: 100 (the default) filters and scores
    #: every node — placements are byte-identical to the pre-sampling
    #: scheduler, which the BENCH state digest asserts.  Below 100 the
    #: filter stops at the first ``max(min_feasible_nodes_to_find,
    #: pct/100 * cluster_size)`` feasible nodes found from a
    #: deterministic round-robin cursor (*sampled mode*): placements
    #: may legitimately differ from exhaustive mode, but quality
    #: metrics (fragmentation, gang wait, pending depth) must stay
    #: within the envelopes declared in ``benchmarks/perf``.
    percentage_of_nodes_to_score: int = 100
    #: Sampling floor: below this many feasible nodes the percentage is
    #: ignored (k8s' minFeasibleNodesToFind), so small clusters always
    #: schedule exhaustively.
    min_feasible_nodes_to_find: int = 100
    #: The paper observes that "the order in which learner pods are queued
    #: by K8S for scheduling is non deterministic".  When True (default),
    #: same-instant arrivals are reordered by a bounded random displacement
    #: (pods land near, but not exactly at, their creation position) — the
    #: mechanism behind temporary deadlocks without the gang scheduler.
    nondeterministic_order: bool = True
    #: Median queue-position displacement of the reordering.  The severity
    #: is redrawn (lognormally) for every submission burst: some bursts
    #: arrive nearly in order, others heavily shuffled — reproducing both
    #: the paper's 40% zero-deadlock runs and its worst-case 46% idle GPUs.
    order_jitter: float = 7.0
    order_jitter_sigma: float = 1.6


@dataclass
class _GangEntry:
    key: str
    size: int
    pod_names: List[str] = field(default_factory=list)
    arrival_time: float = 0.0

    @property
    def complete(self) -> bool:
        return len(self.pod_names) >= self.size


class Scheduler:
    """Places pending pods onto nodes."""

    def __init__(self, env: Environment, api: KubeAPI, cluster: "Cluster",
                 rng: RngRegistry,
                 config: Optional[SchedulerConfig] = None):
        self.env = env
        self.api = api
        self.cluster = cluster
        self.config = config or SchedulerConfig()
        self.rng = rng.stream("scheduler")
        self._queue: Dict[str, tuple] = {}  # pod name -> (time, tiebreak)
        self._enqueue_seq = 0
        self._burst_jitter = self.config.order_jitter
        self._gangs: Dict[str, _GangEntry] = {}
        self._wake = env.event()
        self.pods_scheduled = 0
        #: PVC deletions the informer may not have observed yet.
        self._pvc_deleted_at: Dict[str, float] = {}
        #: Feasibility cache: node name -> {pod shape -> fits?}.  A pod's
        #: *shape* is everything the predicates look at (resource request
        #: + node selector), so pods of the same shape share verdicts.
        #: ``None`` under REPRO_PERF_DISABLE.
        self._feas_cache: Optional[Dict[str, Dict[tuple, bool]]] = \
            {} if optimizations_enabled() else None
        #: Score cache: node name -> {(resources, owner) -> score}.
        #: A score is a pure function of the node's allocation, the pod's
        #: resource request, and the (owner, node) pod count, so entries
        #: stay valid until the node's allocation changes
        #: (``invalidate_node``) or a pod of some owner binds to /
        #: leaves the node (the placement tracker below).
        self._score_cache: Optional[Dict[str, Dict[tuple, float]]] = \
            {} if optimizations_enabled() else None
        #: (owner uid, node name) -> bound-pod count, maintained from pod
        #: watch events; replaces the per-candidate ``list_pods`` scan in
        #: ``_score``.  ``None`` under REPRO_PERF_DISABLE (the reference
        #: scan runs instead).
        self._owner_node_counts: Optional[Dict[tuple, int]] = \
            {} if optimizations_enabled() else None
        #: pod name -> (owner uid, node name) as last seen by the
        #: tracker, so MODIFIED/DELETED events translate into exact
        #: count deltas.
        self._pod_placement: Dict[str, tuple] = {}
        #: Key interning for the two caches above.  The natural keys are
        #: tuples of dataclasses (resource request, selector, owner),
        #: whose ``__hash__``/``__eq__`` are expensive enough to show up
        #: when evaluated once per (pod, node); interning them to small
        #: ints once per *attempt* makes every per-node cache lookup
        #: hash an int instead.
        self._shape_ids: Dict[tuple, int] = {}
        self._score_key_ids: Dict[tuple, int] = {}
        #: Round-robin start position for sampled filtering, as in
        #: upstream k8s' ``lastScoredNodeIndex``: successive pods start
        #: their feasibility scan at different cluster offsets so the
        #: sample window rotates instead of hammering the same prefix.
        self.last_scored_node_index = 0
        #: Full predicate evaluations vs verdicts served from the cache —
        #: the quantities BENCH_sched.json tracks.
        self.filter_evals = 0
        self.filter_cache_hits = 0
        #: Full score computations vs cached scores; same contract.
        self.score_evals = 0
        self.score_cache_hits = 0
        #: Nodes examined by the feasibility scan (feasible or not) —
        #: the quantity sampling shrinks.
        self.nodes_examined = 0
        api.subscribe("pods", self._on_pod_change)
        api.subscribe("pvcs", self._on_pvc_change)
        api.subscribe("nodes", self._on_node_change)
        self._loop = env.process(self._run(), name="scheduler")

    # -- queue management -------------------------------------------------------

    def _on_pod_change(self, verb: str, pod: Pod) -> None:
        if self._owner_node_counts is not None:
            self._track_placement(verb, pod)
        if verb != ADDED:
            return
        if pod.phase != PENDING or pod.node_name is not None:
            return
        if not self._queue and self.config.nondeterministic_order:
            # A new submission burst: redraw the reorder severity.
            self._burst_jitter = self.config.order_jitter * \
                self.rng.lognormvariate(0.0, self.config.order_jitter_sigma)
        self._enqueue_seq += 1
        tiebreak = float(self._enqueue_seq)
        if self.config.nondeterministic_order:
            tiebreak += self.rng.uniform(0.0, self._burst_jitter)
        self._queue[pod.name] = (self.env.now, tiebreak)
        if self.config.gang:
            key = pod.spec.gang_name or pod.name
            entry = self._gangs.get(key)
            if entry is None:
                entry = _GangEntry(key, pod.spec.gang_size,
                                   arrival_time=self.env.now)
                self._gangs[key] = entry
            entry.size = max(entry.size, pod.spec.gang_size)
            entry.pod_names.append(pod.name)
        self.kick()

    def _track_placement(self, verb: str, pod: Pod) -> None:
        """Maintain the (owner, node) count index from pod watch events.

        Every store mutation emits a watch event (create ADDED, bind /
        phase change MODIFIED, removal DELETED), so the index mirrors
        ``len(api.list_pods(owner=o, node_name=n))`` exactly for owned
        pods.  Owner-less pods are skipped: the reference ``_score``
        never counts them.  A placement change also drops the node's
        cached scores — the bind commit is the one same-owner-count
        mutation ``reserve``/``release`` invalidation does not cover.
        """
        new = None
        if verb != DELETED and pod.node_name is not None \
                and pod.meta.owner is not None:
            new = (pod.meta.owner, pod.node_name)
        old = self._pod_placement.get(pod.name)
        if old == new:
            return
        counts = self._owner_node_counts
        if old is not None:
            remaining = counts.get(old, 0) - 1
            if remaining > 0:
                counts[old] = remaining
            else:
                counts.pop(old, None)
            self._invalidate_scores(old[1])
        if new is None:
            self._pod_placement.pop(pod.name, None)
        else:
            self._pod_placement[pod.name] = new
            counts[new] = counts.get(new, 0) + 1
            self._invalidate_scores(new[1])

    def _invalidate_scores(self, node_name: str) -> None:
        if self._score_cache is not None:
            self._score_cache.pop(node_name, None)

    def _on_pvc_change(self, verb: str, pvc) -> None:
        if verb == "DELETED":
            self._pvc_deleted_at[pvc.name] = self.env.now

    def _on_node_change(self, verb: str, node) -> None:
        # Every ready/cordon transition funnels through update_node, so
        # this listener (plus reserve/release below) is complete
        # invalidation coverage.  Invalidation only — waking the loop
        # stays the caller's decision, as before the cache existed.
        self.invalidate_node(node.name)

    def invalidate_node(self, node_name: str) -> None:
        """Drop cached predicate verdicts for one node.

        Called whenever anything a predicate reads changes: the node's
        allocation (reserve/release) or the node object itself
        (ready/cordon transitions via ``update_node``).  Scores read
        the allocation too, so the score cache rides the same path.
        """
        if self._feas_cache is not None:
            self._feas_cache.pop(node_name, None)
        self._invalidate_scores(node_name)

    def kick(self) -> None:
        """Wake the scheduling loop (new pod, freed resources, bound PVC)."""
        if not self._wake.triggered:
            self._wake.succeed()

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def queued_pod_names(self) -> List[str]:
        return sorted(self._queue, key=self._queue.get)

    # -- main loop -----------------------------------------------------------------

    def _run(self):
        while True:
            if not self._queue:
                self._wake = self.env.event()
                yield self._wake
                continue
            yield self.env.timeout(self.config.batch_delay_s)
            # Arm the next wake before the pass so kicks during it are kept.
            self._wake = self.env.event()
            if self.config.gang:
                yield from self._gang_pass()
            else:
                yield from self._pod_pass()
            if self._queue and not self._wake.triggered:
                yield self._wake

    def _pod_pass(self):
        for name in sorted(self._queue, key=self._queue.get):
            if name not in self._queue:
                continue
            yield self.env.timeout(self.config.per_pod_latency_s)
            yield from self._attempt_pod(name)

    def _gang_pass(self):
        # FCFS over gangs; same-instant arrivals resolved largest-first
        # (Section 3.6).
        order = sorted(self._gangs.values(),
                       key=lambda g: (g.arrival_time, -g.size, g.key))
        for entry in order:
            if entry.key not in self._gangs:
                continue
            yield self.env.timeout(self.config.per_pod_latency_s *
                                   max(1, len(entry.pod_names)))
            yield from self._attempt_gang(entry)

    # -- single-pod scheduling ----------------------------------------------------------

    def _attempt_pod(self, name: str):
        pod = self._validate_queued_pod(name)
        if pod is None:
            return
        candidates = self._feasible_candidates(pod)
        if not candidates:
            self._record_no_nodes(pod)
            return
        # Highest (score, name) wins — the allocation fetched during the
        # feasibility check is threaded through so scoring never
        # re-resolves it.  Equivalent to max(nodes, key=...): node names
        # are unique, so the key order is total.  The score-cache key is
        # interned once per attempt and the cache-hit path is inlined:
        # this loop runs once per (pod, candidate) and is the hottest
        # code in the scheduler.
        cache = self._score_cache
        score_key = None if cache is None else self._score_key_id(pod)
        hits = 0
        best = None
        best_key = None
        for node_name, allocation in candidates:
            if cache is not None:
                per_node = cache.get(node_name)
                if per_node is None:
                    per_node = cache[node_name] = {}
                score = per_node.get(score_key)
                if score is None:
                    score = self._score(pod, node_name, allocation)
                    per_node[score_key] = score
                else:
                    hits += 1
            else:
                score = self._score(pod, node_name, allocation)
            key = (score, node_name)
            if best_key is None or key > best_key:
                best, best_key = node_name, key
        self.score_cache_hits += hits
        yield from self._bind_with_window([(pod, best)])

    def _validate_queued_pod(self, name: str) -> Optional[Pod]:
        """Common per-attempt checks; returns the pod or None (dequeued or
        deferred)."""
        pod = self.api.try_get_pod(name)
        if pod is None:
            self._emit(name, REASON_POD_NOT_FOUND,
                       MESSAGE_TEMPLATES[REASON_POD_NOT_FOUND].format(
                           pod=name))
            self._dequeue(name)
            return None
        if pod.meta.deletion_requested:
            staleness = self.env.now - pod.meta.deletion_requested_at
            if staleness < self.config.informer_staleness_s:
                # The scheduler's informer cache has not seen the deletion
                # yet: proceed; the API server will reject the binding.
                return pod
            self._emit(name, REASON_SKIP_DELETING,
                       MESSAGE_TEMPLATES[REASON_SKIP_DELETING].format(
                           pod=name), pod)
            self._dequeue(name)
            return None
        if pod.node_name is not None:
            self._dequeue(name)
            return None
        missing_claim = self._missing_claim(pod)
        if missing_claim is not None:
            self._emit(name, REASON_PVC_NOT_FOUND,
                       MESSAGE_TEMPLATES[REASON_PVC_NOT_FOUND].format(
                           claim=missing_claim, n=1), pod)
            return None
        if self.config.timeout_race_probability and \
                self.rng.random() < self.config.timeout_race_probability:
            self._emit(name, REASON_TIMEOUT,
                       MESSAGE_TEMPLATES[REASON_TIMEOUT], pod)
            return None
        if self.config.assume_race_probability and \
                self.rng.random() < self.config.assume_race_probability:
            self._emit(name, REASON_ASSUME_FAILED,
                       MESSAGE_TEMPLATES[REASON_ASSUME_FAILED].format(
                           pod=name), pod)
            return None
        return pod

    def _missing_claim(self, pod: Pod) -> Optional[str]:
        for claim in pod.spec.volume_claims:
            pvc = self.api.try_get_pvc(claim)
            if pvc is None:
                deleted_at = self._pvc_deleted_at.get(claim)
                if deleted_at is not None and \
                        self.env.now - deleted_at < \
                        self.config.informer_staleness_s:
                    # The informer still shows the claim as bound; the
                    # binding API call will be the one to reject it.
                    continue
                return claim
            if not pvc.bound:
                return claim
        return None

    def _feasible_nodes(self, pod: Pod) -> List[str]:
        """Feasible node names (the gang/BSA-facing view)."""
        return [name for name, _allocation
                in self._feasible_candidates(pod)]

    def _nodes_to_find(self, total: int) -> int:
        """How many feasible nodes one scheduling attempt collects.

        Upstream k8s' percentage-of-nodes-to-score: exhaustive at 100,
        otherwise ``max(min_feasible_nodes_to_find, pct% of the
        cluster)``, never more than the cluster itself.
        """
        pct = self.config.percentage_of_nodes_to_score
        if pct >= 100:
            return total
        wanted = max(self.config.min_feasible_nodes_to_find,
                     total * pct // 100)
        return min(wanted, total)

    def _shape_id(self, pod: Pod) -> int:
        """Interned feasibility-cache key: everything the predicates
        read from the pod (resource request + sorted node selector)."""
        shape = (pod.spec.resources,
                 tuple(sorted(pod.spec.node_selector.items())))
        ids = self._shape_ids
        sid = ids.get(shape)
        if sid is None:
            sid = ids[shape] = len(ids)
        return sid

    def _feasible_candidates(self, pod: Pod) -> List[tuple]:
        """``(node name, allocation)`` pairs that pass the predicates.

        Exhaustive mode (the default) scans every node in list order —
        byte-identical to the pre-sampling scheduler.  Sampled mode
        walks the node list cyclically from ``last_scored_node_index``
        and stops at the first ``_nodes_to_find`` feasible nodes; the
        cursor then advances past the examined window so successive
        pods sample rotating slices of the cluster.

        The pod's shape is interned once per attempt and the cache-hit
        path is inlined: this loop runs once per (pod, node) and
        dominates exhaustive-mode wall-clock.
        """
        nodes = self.api.list_nodes()
        total = len(nodes)
        limit = self._nodes_to_find(total)
        cache = self._feas_cache
        shape = None if cache is None else self._shape_id(pod)
        allocation_of = self.cluster.allocation
        candidates: List[tuple] = []
        if limit >= total:
            if cache is None:
                self.nodes_examined += total
                for node in nodes:
                    allocation = self._node_fits(pod, node)
                    if allocation is not None:
                        candidates.append((node.name, allocation))
                return candidates
            hits = 0
            for node in nodes:
                name = node.name
                per_node = cache.get(name)
                if per_node is None:
                    per_node = cache[name] = {}
                fits = per_node.get(shape)
                if fits is None:
                    allocation = self._node_fits(pod, node)
                    per_node[shape] = allocation is not None
                    if allocation is not None:
                        candidates.append((name, allocation))
                elif fits:
                    hits += 1
                    candidates.append((name, allocation_of(name)))
                else:
                    hits += 1
            self.nodes_examined += total
            self.filter_cache_hits += hits
            return candidates
        start = self.last_scored_node_index % total
        examined = 0
        hits = 0
        for offset in range(total):
            node = nodes[(start + offset) % total]
            examined += 1
            if cache is None:
                allocation = self._node_fits(pod, node)
            else:
                name = node.name
                per_node = cache.get(name)
                if per_node is None:
                    per_node = cache[name] = {}
                fits = per_node.get(shape)
                if fits is None:
                    allocation = self._node_fits(pod, node)
                    per_node[shape] = allocation is not None
                else:
                    hits += 1
                    allocation = allocation_of(name) if fits else None
            if allocation is not None:
                candidates.append((node.name, allocation))
                if len(candidates) >= limit:
                    break
        self.last_scored_node_index = (start + examined) % total
        self.nodes_examined += examined
        self.filter_cache_hits += hits
        return candidates

    def _node_fits(self, pod: Pod, node) -> Optional["NodeAllocation"]:
        """One full predicate evaluation (the uncached reference path).

        Returns the allocation on fit (so callers reuse the lookup),
        ``None`` otherwise.
        """
        self.filter_evals += 1
        if not node.is_ready:
            return None
        if not self._selector_matches(pod, node):
            return None
        allocation = self.cluster.allocation(node.name)
        return allocation if allocation.fits(pod.spec.resources) else None

    def _selector_matches(self, pod: Pod, node) -> bool:
        return all(node.meta.labels.get(k) == v
                   for k, v in pod.spec.node_selector.items())

    def _score_key_id(self, pod: Pod) -> int:
        """Interned score-cache key: everything ``score_node`` reads
        from the pod (resource request + owner)."""
        key = (pod.spec.resources, pod.meta.owner)
        ids = self._score_key_ids
        kid = ids.get(key)
        if kid is None:
            kid = ids[key] = len(ids)
        return kid

    def _score(self, pod: Pod, node_name: str, allocation) -> float:
        """Priority of one candidate node for one pod (uncached).

        Optimized mode counts same-owner pods from the maintained
        (owner, node) index; the reference path recomputes from a full
        pod-store scan.  Both must produce identical scores, which the
        equivalence suite asserts.  Caching (per-node, keyed by the
        interned pod score key) lives in ``_attempt_pod``.
        """
        self.score_evals += 1
        same_owner = 0
        if pod.meta.owner is not None:
            counts = self._owner_node_counts
            if counts is None:
                same_owner = sum(
                    1 for other in self.api.list_pods(owner=pod.meta.owner,  # staticcheck: ignore[PERF003] reference path under REPRO_PERF_DISABLE; optimized mode reads the maintained (owner, node) index
                                                      node_name=node_name)
                    if other.name != pod.name)
            else:
                same_owner = counts.get((pod.meta.owner, node_name), 0)
        return score_node(self.config.policy, pod, node_name,
                          allocation, same_owner)

    def _bind_with_window(self, placements) -> None:
        """Reserve resources, wait out the binding API round-trip, then
        commit — rejecting pods that were deleted in the window."""
        for pod, node_name in placements:
            self.cluster.reserve(pod, node_name)
            self._dequeue(pod.name)
        if self.config.bind_latency_s:
            yield self.env.timeout(self.config.bind_latency_s)
        for pod, node_name in placements:
            if pod.meta.deletion_requested or \
                    not self.api.exists("pods", pod.name):
                self._emit(pod.name, REASON_BINDING_REJECTED,
                           MESSAGE_TEMPLATES[REASON_BINDING_REJECTED]
                           .format(pod=pod.name), pod)
                self.cluster.release(pod)
                continue
            self.cluster.bind_reserved(pod, node_name)
            self.pods_scheduled += 1
            self.api.record_event(KubeEvent(
                self.env.now, SCHEDULED, "Pod", pod.name,
                message=f"bound to {node_name}",
                pod_type=pod.meta.labels.get("type")))

    # -- gang scheduling -------------------------------------------------------------------

    def _attempt_gang(self, entry: _GangEntry):
        # Validate members first (drops deleted/skipped pods from the gang).
        pods: List[Pod] = []
        for name in list(entry.pod_names):
            if name not in self._queue:
                entry.pod_names.remove(name)
                continue
            pod = self._validate_queued_pod(name)
            if pod is None:
                if name not in self._queue:
                    # Permanently dropped (deleted); a set controller will
                    # recreate it and the replacement will rejoin the gang.
                    entry.pod_names.remove(name)
                    continue
                return  # deferred (PVC/race): retry this gang later
            pods.append(pod)
        if not entry.pod_names:
            self._gangs.pop(entry.key, None)
            return
        if not entry.complete:
            # Members already placed and alive (e.g. the rest of a gang
            # whose one pod was lost to a node failure and recreated)
            # count toward completeness — the replacement must not wait
            # for peers that are already running.
            placed = sum(
                1 for other in self.api.list_pods()
                if other.spec.gang_name == entry.key
                and other.node_name is not None
                and not other.is_terminal
                and other.name not in entry.pod_names)
            if placed + len(entry.pod_names) < entry.size:
                return  # wait for the rest of the gang to be created
        eligible = {pod.name: self._feasible_nodes(pod) for pod in pods}
        empty = [pod for pod in pods if not eligible[pod.name]]
        if empty:
            for pod in empty:
                self._record_no_nodes(pod)
            return
        assignment = bsa_place(pods, self.cluster.allocations, eligible,
                               self.rng, rounds=self.config.bsa_rounds,
                               objective=self.config.bsa_objective)
        if assignment is None:
            for pod in pods:
                self._record_no_nodes(pod)
            return
        self._gangs.pop(entry.key, None)
        yield from self._bind_with_window(
            [(pod, assignment[pod.name]) for pod in pods])

    # -- events --------------------------------------------------------------------------------

    def _record_no_nodes(self, pod: Pod) -> None:
        predicates = self._predicate_summary(pod)
        self._emit(pod.name, REASON_NO_NODES,
                   MESSAGE_TEMPLATES[REASON_NO_NODES].format(
                       predicates=predicates), pod)

    def _predicate_summary(self, pod: Pod) -> str:
        reasons = []
        nodes = self.api.list_nodes()
        if pod.spec.resources.gpus > 0:
            short_gpu = [n for n in nodes if n.is_ready
                         and self._selector_matches(pod, n)
                         and self.cluster.allocation(n.name).free_gpus <
                         pod.spec.resources.gpus]
            if short_gpu:
                reasons.append(
                    f"{PREDICATE_INSUFFICIENT_GPU} ({len(short_gpu)})")
        selector_miss = [n for n in nodes
                         if not self._selector_matches(pod, n)]
        if selector_miss:
            reasons.append(
                f"{PREDICATE_MATCH_NODE_SELECTOR} ({len(selector_miss)})")
        unready = [n for n in nodes if not n.is_ready]
        if unready:
            reasons.append(
                f"{PREDICATE_NODE_UNSCHEDULABLE} ({len(unready)})")
        return ", ".join(reasons) or "Insufficient resources"

    def _emit(self, pod_name: str, reason: str, message: str,
              pod: Optional[Pod] = None) -> None:
        pod_type = pod.meta.labels.get("type") if pod is not None else None
        self.api.record_event(KubeEvent(
            self.env.now, FAILED_SCHEDULING, "Pod", pod_name,
            reason=reason, message=message, pod_type=pod_type))

    def _dequeue(self, name: str) -> None:
        self._queue.pop(name, None)
