"""Node-scoring policies: Spread (Kubernetes default) and Pack (FfDL).

Section 3.4: Spread "distributes pods over the cluster, and avoids placing
two pods which are replicas of the same workload on the same physical
machine", which fragments GPU capacity; FfDL's Pack extension "crams" a DL
job into as few machines as possible, keeping whole machines free for large
jobs.
"""

from __future__ import annotations

from repro.kube.objects import Pod
from repro.kube.resources import NodeAllocation

SPREAD = "spread"
PACK = "pack"


def score_node(policy: str, pod: Pod, node_name: str,
               allocation: NodeAllocation,
               same_owner_pods: int) -> float:
    """Higher is better.  ``same_owner_pods`` counts pods of the same owner
    already bound to this node (Spread penalizes these)."""
    if policy == SPREAD:
        # Prefer nodes without replicas of the same workload, then the
        # least-loaded node.
        load = _load_fraction(allocation)
        return -100.0 * same_owner_pods - load
    if policy == PACK:
        # Prefer the fullest node that still fits: best-fit packing on the
        # scarce resource (GPUs when the pod wants them, CPUs otherwise).
        if pod.spec.resources.gpus > 0 and allocation.capacity.gpus > 0:
            return allocation.gpu_utilization
        return _load_fraction(allocation)
    raise ValueError(f"unknown policy {policy!r}")


def _load_fraction(allocation: NodeAllocation) -> float:
    cap = allocation.capacity
    cpu_frac = 1.0 - allocation.free_cpus / cap.cpus if cap.cpus else 0.0
    gpu_frac = allocation.gpu_utilization
    return max(cpu_frac, gpu_frac)
