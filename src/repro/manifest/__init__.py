"""Declarative scenario manifests.

A scenario is a ~20-line YAML document (topology, workload, fault plan,
run window, steady-state hypotheses) instead of a hand-written Python
module.  The package splits into:

* :mod:`repro.manifest.yamlpos` — position-aware YAML loading (every
  value knows its line/column, so findings anchor precisely);
* :mod:`repro.manifest.schema` — the schema field tables, the
  hypothesis/counter catalogs, and the typed model;
* :mod:`repro.manifest.compiler` — the MAN static pass followed by
  lowering onto the existing :class:`~repro.chaos.engine.Scenario` /
  :class:`~repro.chaos.federation.FederationScenario` dataclasses.

The static analyzer itself lives with its rule family in
:mod:`repro.staticcheck.manifest`; ``repro validate <manifest>`` is the
CLI front-end (:mod:`repro.cli`).
"""

from __future__ import annotations

from repro.manifest.compiler import (
    CheckResult,
    CompiledScenario,
    ManifestError,
    compile_manifest,
    compile_manifest_file,
    default_scenario_dir,
    discover_manifests,
)
from repro.manifest.schema import (
    CellBlock,
    CounterAssertion,
    FaultEntry,
    ManifestModel,
    NodeGroup,
)
from repro.manifest.yamlpos import (
    YamlNode,
    YamlPosError,
    parse_manifest_source,
)

__all__ = [
    "CellBlock",
    "CheckResult",
    "CompiledScenario",
    "CounterAssertion",
    "FaultEntry",
    "ManifestError",
    "ManifestModel",
    "NodeGroup",
    "YamlNode",
    "YamlPosError",
    "compile_manifest",
    "compile_manifest_file",
    "default_scenario_dir",
    "discover_manifests",
    "parse_manifest_source",
]
