"""Lowering a validated manifest into the existing chaos engines.

``compile_manifest`` runs the MAN static pass first (so a manifest that
would lower into nonsense is rejected with file:line:column findings,
never a mid-run crash), then lowers the typed model into the exact
dataclasses the hand-written scenarios use:

* ``kind: chaos`` → :class:`repro.chaos.engine.Scenario` plus the
  declarative node groups the engine provisions;
* ``kind: federation`` → :class:`repro.chaos.federation.FederationScenario`.

Because the lowering targets the same frozen dataclasses, a ported
manifest compiles to an object *equal* to its hand-written twin — which
is what makes the byte-identical regression tests in
``tests/manifest/test_parity.py`` possible: equal scenario in, equal
audit log and end state out.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import yaml

from repro.manifest.schema import (
    CounterAssertion,
    ManifestModel,
    NodeGroup,
)


class ManifestError(Exception):
    """Manifest failed the static pass (or cannot be read)."""

    def __init__(self, message: str, findings: Optional[list] = None):
        super().__init__(message)
        self.findings = list(findings or [])

    def render(self) -> str:
        lines = [str(self)]
        lines.extend(f"  {finding.render()}" for finding in self.findings)
        return "\n".join(lines)


@dataclass(frozen=True)
class CheckResult:
    """One declared-hypothesis or counter-assertion verdict."""

    name: str
    ok: bool
    detail: str


@dataclass
class CompiledScenario:
    """One manifest lowered onto the engine dataclasses."""

    kind: str                     # "chaos" | "federation"
    name: str
    scenario: object              # Scenario | FederationScenario
    node_groups: Tuple[NodeGroup, ...] = ()
    checks: Tuple[str, ...] = ()
    counter_assertions: Tuple[CounterAssertion, ...] = ()
    #: ``workload.seed`` when it was a literal integer.
    seed_override: Optional[int] = None
    source_path: str = "<manifest>"

    def build_engine(self, seed: int = 0, tiebreak_seed: int = 0,
                     detect_races: bool = False):
        """A fresh single-use engine for one run of this scenario."""
        if self.kind == "chaos":
            from repro.chaos.engine import ChaosEngine
            return ChaosEngine(self.scenario, seed=seed,
                               tiebreak_seed=tiebreak_seed,
                               detect_races=detect_races,
                               node_groups=self.node_groups or None)
        from repro.chaos.federation import FederationChaosEngine
        return FederationChaosEngine(self.scenario, seed=seed,
                                     tiebreak_seed=tiebreak_seed,
                                     detect_races=detect_races)

    def run(self, seed: int = 0, tiebreak_seed: int = 0,
            detect_races: bool = False):
        """Compile-and-go: one ChaosReport."""
        return self.build_engine(seed=seed, tiebreak_seed=tiebreak_seed,
                                 detect_races=detect_races).run()

    def verify(self, report) -> List[CheckResult]:
        """Evaluate the declared hypotheses and counter assertions
        against a finished run's report."""
        results: List[CheckResult] = []
        final = {h.name: h for h in report.hypotheses
                 if h.phase == "steady-state:after"}
        for name in self.checks:
            hypothesis = final.get(name)
            if hypothesis is None:
                results.append(CheckResult(
                    name, False, "hypothesis never evaluated"))
            else:
                results.append(CheckResult(
                    name, hypothesis.ok, hypothesis.detail))
        for assertion in self.counter_assertions:
            value = report.counters.get(assertion.name)
            if value is None:
                results.append(CheckResult(
                    assertion.name, False,
                    "counter absent from the report"))
            else:
                ok, detail = assertion.check(value)
                results.append(CheckResult(assertion.name, ok, detail))
        return results


def _default(dataclass_type, name: str):
    for spec in fields(dataclass_type):
        if spec.name == name:
            return spec.default
    raise AttributeError(name)  # pragma: no cover - compiler bug


def _lower_chaos(model: ManifestModel, path: str) -> CompiledScenario:
    from repro.chaos.engine import InjectionStep, Scenario

    workload = model.workload

    def w(key: str, field_name: str, cast=None):
        if key in workload:
            value = workload[key]
            return cast(value) if cast is not None else value
        return _default(Scenario, field_name)

    scenario = Scenario(
        name=model.name,
        description=model.description,
        steps=tuple(InjectionStep(
            at_s=entry.at_s, kind=entry.kind, target=entry.target,
            duration_s=entry.duration_s, param=entry.param)
            for entry in model.faults),
        horizon_s=float(model.horizon_s)
        if model.horizon_s is not None else _default(Scenario, "horizon_s"),
        settle_s=float(model.settle_s)
        if model.settle_s is not None else _default(Scenario, "settle_s"),
        jobs=w("jobs", "jobs"),
        job_interarrival_s=w("interarrival_s", "job_interarrival_s",
                             float),
        job_iterations=w("iterations", "job_iterations"),
        job_learners=w("learners", "job_learners"),
        job_gpus_per_learner=w("gpus_per_learner",
                               "job_gpus_per_learner"),
        job_gpu_type=w("gpu_type", "job_gpu_type"),
        job_memory_gb=w("memory_gb_per_learner", "job_memory_gb"),
    )
    return CompiledScenario(
        kind="chaos", name=model.name, scenario=scenario,
        node_groups=model.node_groups, checks=model.checks,
        counter_assertions=model.counter_assertions,
        seed_override=model.seed_override, source_path=path)


def _lower_federation(model: ManifestModel,
                      path: str) -> CompiledScenario:
    from repro.chaos.federation import (
        CellDef,
        FederationScenario,
        FederationStep,
    )

    workload = model.workload

    def w(key: str, field_name: str):
        if key in workload:
            return workload[key]
        return _default(FederationScenario, field_name)

    scenario = FederationScenario(
        name=model.name,
        description=model.description,
        cells=tuple(CellDef(
            name=cell.name, zone=cell.zone, gpu_nodes=cell.gpu_nodes,
            gpus_per_node=cell.gpus_per_node, gpu_type=cell.gpu_type)
            for cell in model.cells),
        steps=tuple(FederationStep(
            at_s=entry.at_s, kind=entry.kind, cell=entry.cell,
            duration_s=entry.duration_s, param=entry.param)
            for entry in model.faults),
        horizon_s=float(model.horizon_s)
        if model.horizon_s is not None
        else _default(FederationScenario, "horizon_s"),
        settle_s=float(model.settle_s)
        if model.settle_s is not None
        else _default(FederationScenario, "settle_s"),
        jobs=w("jobs", "jobs"),
        arrival_window_s=float(w("arrival_window_s",
                                 "arrival_window_s")),
        min_iterations=w("min_iterations", "min_iterations"),
        max_iterations=w("max_iterations", "max_iterations"),
        tenant_quota_gpus=w("tenant_quota_gpus", "tenant_quota_gpus"),
    )
    return CompiledScenario(
        kind="federation", name=model.name, scenario=scenario,
        checks=model.checks,
        counter_assertions=model.counter_assertions,
        seed_override=model.seed_override, source_path=path)


def compile_manifest(source: str,
                     display_path: str = "<manifest>",
                     ) -> CompiledScenario:
    """Static-check ``source`` and lower it.

    Raises :class:`ManifestError` (carrying the findings) when the
    static pass reports anything — a manifest must lint clean before it
    is allowed anywhere near an engine.
    """
    from repro.staticcheck.manifest import analyze_manifest

    findings, _suppressed, model = analyze_manifest(source, display_path)
    if findings:
        raise ManifestError(
            f"{display_path}: {len(findings)} static finding(s); "
            f"fix (or suppress with a reason) before running",
            findings)
    if model is None:  # empty document and similar degenerate shapes
        raise ManifestError(f"{display_path}: not a scenario manifest")
    if model.kind == "chaos":
        return _lower_chaos(model, display_path)
    return _lower_federation(model, display_path)


def compile_manifest_file(path: Path) -> CompiledScenario:
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as err:
        raise ManifestError(f"cannot read {path}: {err}") from None
    return compile_manifest(source, path.as_posix())


# -- discovery ---------------------------------------------------------------

def default_scenario_dir() -> Optional[Path]:
    """The repo's ``scenarios/`` directory, if one can be found.

    Tried in order: ``$REPRO_SCENARIO_DIR``, ``./scenarios``, and
    ``scenarios/`` next to the source tree this package runs from.
    """
    import os

    override = os.environ.get("REPRO_SCENARIO_DIR")
    if override:
        path = Path(override)
        return path if path.is_dir() else None
    cwd_dir = Path("scenarios")
    if cwd_dir.is_dir():
        return cwd_dir
    import repro

    repo_dir = Path(repro.__file__).resolve().parents[2] / "scenarios"
    return repo_dir if repo_dir.is_dir() else None


def discover_manifests(scenario_dir: Optional[Path] = None,
                       ) -> Dict[str, Path]:
    """``{scenario name: manifest path}`` for every manifest under the
    scenario directory (sorted by file name; fixtures skipped).

    Discovery is deliberately shallow and forgiving: it only reads the
    ``name:`` field, so a broken manifest still *lists* (under its file
    stem) and fails with findings when someone tries to run it.
    """
    directory = scenario_dir if scenario_dir is not None \
        else default_scenario_dir()
    if directory is None:
        return {}
    manifests: Dict[str, Path] = {}
    for path in sorted(Path(directory).glob("*.yaml")) \
            + sorted(Path(directory).glob("*.yml")):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            continue
        if "# staticcheck: fixture" in source[:200]:
            continue
        name = path.stem
        try:
            document = yaml.safe_load(source)
        except yaml.YAMLError:
            document = None
        if isinstance(document, dict) and \
                isinstance(document.get("name"), str):
            name = document["name"]
        manifests[name] = path
    return manifests
