"""The declarative scenario-manifest schema.

A scenario manifest is a small YAML document with five sections:

``topology``
    what exists — GPU node groups (``kind: chaos``) or whole cells
    (``kind: federation``);
``workload``
    the seeded job churn / trace parameters driven against it;
``faults``
    the fault plan — inline injection steps and/or ``use:`` references
    that splice a named scenario's schedule;
``run``
    the observation window (horizon + settle);
``hypotheses``
    the steady-state checks and counter assertions ``repro validate
    --run`` verifies after the run.

This module is the *single source of truth* for that schema: the field
tables below drive both the static analyzer (MAN001 unknown field /
wrong type / missing required, see :mod:`repro.staticcheck.manifest`)
and the compiler (:mod:`repro.manifest.compiler`).  The hypothesis and
counter catalogs mirror what the chaos engines actually report; the
tests pin them against the engine implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

MANIFEST_KINDS = ("chaos", "federation")

#: ``workload.seed`` / ``faults.seed`` values that mean "derive from the
#: run's master seed" — the deterministic default.
SEED_INHERIT = "inherit"

#: Seed spellings that couple a section to the host machine; each one
#: is a MAN004 determinism hazard.
UNSEEDED_SEED_VALUES = ("wall-clock", "random", "auto", "time", "now")


@dataclass(frozen=True)
class Field:
    """One mapping field: accepted scalar types + requiredness."""

    types: Tuple[type, ...]
    required: bool = False
    #: Human name for messages ("number", "string", ...).
    typename: str = ""

    def describe(self) -> str:
        if self.typename:
            return self.typename
        return self.types[0].__name__


def _num(required: bool = False) -> Field:
    return Field((int, float), required, "number")


def _int(required: bool = False) -> Field:
    return Field((int,), required, "integer")


def _str(required: bool = False) -> Field:
    return Field((str,), required, "string")


#: ``seed`` accepts an integer or the string "inherit"; anything else
#: is reported by MAN004, not MAN001, so the schema stays permissive.
_SEED = Field((int, str), False, "integer or 'inherit'")

# -- section field tables ---------------------------------------------------

ROOT_FIELDS: Dict[str, Field] = {
    "kind": _str(required=True),
    "name": _str(required=True),
    "description": _str(required=True),
    "topology": Field((dict,), True, "mapping"),
    "workload": Field((dict,), False, "mapping"),
    "faults": Field((dict, list), False, "list or mapping"),
    "run": Field((dict,), False, "mapping"),
    "hypotheses": Field((dict,), False, "mapping"),
}

NODE_GROUP_FIELDS: Dict[str, Field] = {
    "count": _int(required=True),
    "gpus_per_node": _int(required=True),
    "gpu_type": _str(required=True),
    "cpus": _num(),
    "memory_gb": _num(),
}

CELL_FIELDS: Dict[str, Field] = {
    "name": _str(required=True),
    "zone": _str(required=True),
    "gpu_nodes": _int(required=True),
    "gpus_per_node": _int(required=True),
    "gpu_type": _str(required=True),
}

CHAOS_TOPOLOGY_FIELDS: Dict[str, Field] = {
    "nodes": Field((list,), True, "list"),
}

FEDERATION_TOPOLOGY_FIELDS: Dict[str, Field] = {
    "cells": Field((list,), True, "list"),
}

CHAOS_WORKLOAD_FIELDS: Dict[str, Field] = {
    "jobs": _int(),
    "interarrival_s": _num(),
    "iterations": _int(),
    "learners": _int(),
    "gpus_per_learner": _int(),
    "gpu_type": _str(),
    "memory_gb_per_learner": _num(),
    "seed": _SEED,
}

FEDERATION_WORKLOAD_FIELDS: Dict[str, Field] = {
    "jobs": _int(),
    "arrival_window_s": _num(),
    "min_iterations": _int(),
    "max_iterations": _int(),
    "tenant_quota_gpus": _int(),
    "gpu_types": Field((list,), False, "list"),
    "tenants": Field((list,), False, "list"),
    "global_quota_gpus": _int(),
    "seed": _SEED,
}

TENANT_FIELDS: Dict[str, Field] = {
    "name": _str(required=True),
    "quota_gpus": _int(required=True),
}

#: An inline chaos injection step (federation adds ``cell``, drops
#: ``target``).
CHAOS_STEP_FIELDS: Dict[str, Field] = {
    "at_s": _num(required=True),
    "kind": _str(required=True),
    "target": _str(),
    "duration_s": _num(),
    "param": _num(),
}

FEDERATION_STEP_FIELDS: Dict[str, Field] = {
    "at_s": _num(required=True),
    "kind": _str(required=True),
    "cell": _str(required=True),
    "duration_s": _num(),
    "param": _num(),
}

#: A fault-plan reference splicing a named scenario's schedule.
USE_STEP_FIELDS: Dict[str, Field] = {
    "use": _str(required=True),
    "shift_s": _num(),
}

#: ``faults:`` written as a mapping ({seed: ..., steps: [...]}); the
#: bare-list shorthand is equivalent to {steps: [...]}.
FAULTS_SECTION_FIELDS: Dict[str, Field] = {
    "seed": _SEED,
    "steps": Field((list,), True, "list"),
}

RUN_FIELDS: Dict[str, Field] = {
    "horizon_s": _num(),
    "settle_s": _num(),
}

HYPOTHESES_FIELDS: Dict[str, Field] = {
    "checks": Field((list,), False, "list"),
    "counters": Field((list,), False, "list"),
}

COUNTER_ASSERTION_FIELDS: Dict[str, Field] = {
    "name": _str(required=True),
    "max": _num(),
    "min": _num(),
    "equals": _num(),
}

# -- catalogs (what the engines actually expose) ----------------------------

#: Steady-state checks :class:`~repro.chaos.engine.ChaosEngine` runs.
CHAOS_HYPOTHESES = (
    "status-writer-flushed",
    "no-lost-job-records",
    "status-consistency",
    "mongo-primary-available",
    "etcd-leader-elected",
    "no-gpu-overallocation",
)

#: Steady-state checks the federation engine runs.
FEDERATION_HYPOTHESES = (
    "no-lost-intent-records",
    "no-double-execution",
    "intent-log-flushed",
    "cell-writers-flushed",
    "all-intents-resolved",
    "cells-healthy",
    "no-gpu-overallocation",
)

#: Counters a ChaosReport from the single-platform engine carries.
CHAOS_COUNTERS = (
    "jobs-submitted",
    "submit-failures",
    "jobs-completed",
    "jobs-terminal",
    "writes-enqueued",
    "writes-flushed",
    "write-errors",
    "peak-buffered-writes",
    "degraded-windows",
    "mongo-retries",
    "etcd-retries",
    "faults-injected",
    "mongo-failovers",
    "schedule-conflicts",
)

#: Fixed federation-report counters; per-cell counters are derived from
#: the declared cells (``<cell>-jobs`` / ``<cell>-completed``) and
#: dispatcher counters carry the ``fed-`` prefix.
FEDERATION_COUNTERS = (
    "cells",
    "total-gpus",
    "intents-submitted",
    "submit-rejections",
    "bus-messages",
    "faults-injected",
    "schedule-conflicts",
    "fed-submitted",
    "fed-rejected-quota",
    "fed-dispatched",
    "fed-spillovers",
    "fed-migrations",
    "fed-fenced",
    "fed-stale-notifications",
    "fed-double-executions",
    "fed-completed",
    "fed-failed",
)

#: Suffixes of the per-cell counters the federation report derives.
FEDERATION_CELL_COUNTER_SUFFIXES = ("-jobs", "-completed")

#: GPU types the federated trace generator has production weights for
#: (:class:`~repro.workloads.federation_trace.FederationTraceConfig`).
FEDERATION_TRACE_GPU_TYPES = ("K80", "V100")

#: Largest learner shape the federated trace can draw per GPU type:
#: the size mix tops out at 4 GPUs/learner x 4 learners, and >2-GPU
#: learners are forced onto K80 (no 4xV100 t-shirt size).
FEDERATION_MAX_SHAPE = {
    "K80": (4, 4),   # (max learners, max gpus_per_learner)
    "V100": (4, 2),
}


def known_hypotheses(kind: str) -> Tuple[str, ...]:
    return CHAOS_HYPOTHESES if kind == "chaos" else FEDERATION_HYPOTHESES


def known_fault_kinds(kind: str) -> Tuple[str, ...]:
    # Imported lazily: the chaos engine imports the platform stack.
    if kind == "chaos":
        from repro.chaos.engine import FAULT_KINDS
        return tuple(FAULT_KINDS)
    from repro.chaos.federation import FEDERATION_FAULT_KINDS
    return tuple(FEDERATION_FAULT_KINDS)


# -- typed model (what the compiler consumes) -------------------------------

@dataclass(frozen=True)
class NodeGroup:
    count: int
    gpus_per_node: int
    gpu_type: str
    cpus: float = 64.0
    memory_gb: float = 512.0

    def node_names(self) -> Tuple[str, ...]:
        """Provisioned node names (cluster convention
        ``node-<gpu_type>-<index>``)."""
        return tuple(f"node-{self.gpu_type}-{index}"
                     for index in range(self.count))


@dataclass(frozen=True)
class CellBlock:
    name: str
    zone: str
    gpu_nodes: int
    gpus_per_node: int
    gpu_type: str


@dataclass(frozen=True)
class CounterAssertion:
    name: str
    max: Optional[float] = None
    min: Optional[float] = None
    equals: Optional[float] = None

    def check(self, value: float) -> Tuple[bool, str]:
        clauses = []
        ok = True
        if self.equals is not None:
            ok = ok and value == self.equals
            clauses.append(f"== {self.equals:g}")
        if self.max is not None:
            ok = ok and value <= self.max
            clauses.append(f"<= {self.max:g}")
        if self.min is not None:
            ok = ok and value >= self.min
            clauses.append(f">= {self.min:g}")
        return ok, f"{self.name}={value:g} {' and '.join(clauses)}"


@dataclass(frozen=True)
class FaultEntry:
    """One fault-plan entry, inline or spliced (after resolution)."""

    at_s: float
    kind: str
    target: str = ""      # chaos node target
    cell: str = ""        # federation cell target
    duration_s: float = 0.0
    param: float = 0.0


@dataclass
class ManifestModel:
    """The typed view of one valid manifest."""

    kind: str
    name: str
    description: str
    node_groups: Tuple[NodeGroup, ...] = ()
    cells: Tuple[CellBlock, ...] = ()
    workload: Dict[str, Any] = field(default_factory=dict)
    faults: Tuple[FaultEntry, ...] = ()
    horizon_s: Optional[float] = None
    settle_s: Optional[float] = None
    checks: Tuple[str, ...] = ()
    counter_assertions: Tuple[CounterAssertion, ...] = ()
    seed_override: Optional[int] = None
