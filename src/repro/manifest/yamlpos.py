"""Position-aware YAML loading for scenario manifests.

``yaml.safe_load`` discards source positions, but the manifest analyzer
(:mod:`repro.staticcheck.manifest`) must anchor every finding at the
YAML line and column of the offending declaration — the same contract
the Python rules honour with AST line numbers.  This module parses a
manifest with :func:`yaml.compose` (which keeps each node's
``start_mark``) and converts the node tree into :class:`YamlNode`
values: plain Python scalars/dicts/lists annotated with 1-based
``line`` and ``column``.

Only the YAML subset manifests need is resolved (mappings, sequences,
strings, ints, floats, booleans, null).  Anything more exotic stays a
plain string scalar, which the schema checker then reports with a
precise location instead of a parse crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import yaml


class YamlPosError(Exception):
    """Manifest source is not parseable YAML."""

    def __init__(self, message: str, line: int = 1, column: int = 1):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column


@dataclass
class YamlNode:
    """One YAML value plus its 1-based source position.

    ``value`` is a scalar (``str | int | float | bool | None``), a
    ``dict[str, YamlNode]`` for mappings, or a ``list[YamlNode]`` for
    sequences.  Mapping nodes also carry ``key_marks`` (where each key
    was written) and ``duplicate_keys`` (re-declared keys, in source
    order — YAML lets the later value win silently, which MAN005
    reports as a shadowed declaration).
    """

    value: Any
    line: int
    column: int
    #: mapping key -> (line, column) of the *key* token.
    key_marks: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: (key, line, column) for every re-declared mapping key.
    duplicate_keys: List[Tuple[str, int, int]] = field(
        default_factory=list)

    # -- typed accessors (lenient: None when shape doesn't match) -----------

    @property
    def is_mapping(self) -> bool:
        return isinstance(self.value, dict)

    @property
    def is_sequence(self) -> bool:
        return isinstance(self.value, list)

    @property
    def is_scalar(self) -> bool:
        return not (self.is_mapping or self.is_sequence)

    def get(self, key: str) -> Optional["YamlNode"]:
        if not self.is_mapping:
            return None
        return self.value.get(key)

    def scalar(self, key: str, default: Any = None) -> Any:
        node = self.get(key)
        if node is None or not node.is_scalar:
            return default
        return node.value

    def key_mark(self, key: str) -> Tuple[int, int]:
        """Position of ``key``'s token (falls back to the mapping)."""
        return self.key_marks.get(key, (self.line, self.column))

    def items(self):
        if not self.is_mapping:
            return ()
        return self.value.items()

    def __iter__(self):
        if self.is_sequence:
            return iter(self.value)
        return iter(())


_SCALAR_CASTS = {
    "tag:yaml.org,2002:int": int,
    "tag:yaml.org,2002:float": float,
    "tag:yaml.org,2002:str": str,
}

_BOOL_TRUE = {"true", "yes", "on"}


def _scalar_value(node: yaml.ScalarNode) -> Any:
    tag = node.tag
    if tag == "tag:yaml.org,2002:null":
        return None
    if tag == "tag:yaml.org,2002:bool":
        return node.value.strip().lower() in _BOOL_TRUE
    cast = _SCALAR_CASTS.get(tag)
    if cast is None:
        return node.value  # unknown tag: keep the raw string
    try:
        if cast is int:
            return int(node.value, 0)
        return cast(node.value)
    except ValueError:
        return node.value


def _convert(node: yaml.Node) -> YamlNode:
    mark = node.start_mark
    line, column = mark.line + 1, mark.column + 1
    if isinstance(node, yaml.ScalarNode):
        return YamlNode(_scalar_value(node), line, column)
    if isinstance(node, yaml.SequenceNode):
        return YamlNode([_convert(item) for item in node.value],
                        line, column)
    if isinstance(node, yaml.MappingNode):
        mapping: Dict[str, YamlNode] = {}
        key_marks: Dict[str, Tuple[int, int]] = {}
        duplicates: List[Tuple[str, int, int]] = []
        for key_node, value_node in node.value:
            key_mark = key_node.start_mark
            key = str(_scalar_value(key_node)) \
                if isinstance(key_node, yaml.ScalarNode) \
                else str(key_node.value)
            position = (key_mark.line + 1, key_mark.column + 1)
            if key in mapping:
                duplicates.append((key, position[0], position[1]))
            mapping[key] = _convert(value_node)
            key_marks.setdefault(key, position)
        return YamlNode(mapping, line, column, key_marks=key_marks,
                       duplicate_keys=duplicates)
    raise YamlPosError(f"unsupported YAML node kind {type(node).__name__}",
                       line, column)


def parse_manifest_source(source: str) -> Optional[YamlNode]:
    """Parse one YAML document into a positioned tree.

    Returns ``None`` for an empty document.  Raises
    :class:`YamlPosError` (with 1-based position) on malformed YAML or
    multi-document streams.
    """
    try:
        documents = list(yaml.compose_all(source, Loader=yaml.SafeLoader))
    except yaml.MarkedYAMLError as err:
        mark = err.problem_mark
        raise YamlPosError(
            f"cannot parse: {err.problem or err}",
            (mark.line + 1) if mark else 1,
            (mark.column + 1) if mark else 1) from None
    except yaml.YAMLError as err:
        raise YamlPosError(f"cannot parse: {err}") from None
    documents = [doc for doc in documents if doc is not None]
    if not documents:
        return None
    if len(documents) > 1:
        mark = documents[1].start_mark
        raise YamlPosError("manifest must be a single YAML document",
                           mark.line + 1, mark.column + 1)
    return _convert(documents[0])
