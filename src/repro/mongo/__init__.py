"""MongoDB substrate: document store with query subset and replica sets."""

from repro.mongo.client import DEFAULT_MONGO_LATENCY_S, MongoClient
from repro.mongo.collection import Collection
from repro.mongo.database import MongoDatabase, MongoReplicaSet
from repro.mongo.query import apply_update, matches, sort_documents

__all__ = [
    "Collection",
    "DEFAULT_MONGO_LATENCY_S",
    "MongoClient",
    "MongoDatabase",
    "MongoReplicaSet",
    "apply_update",
    "matches",
    "sort_documents",
]
