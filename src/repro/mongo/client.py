"""Latency-modelled client for MongoDB, mirroring :class:`EtcdClient`.

FfDL's API service persists job metadata through this client; its higher
per-op latency relative to etcd is what the status-store ablation measures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.errors import StoreUnavailableError
from repro.mongo.collection import Collection
from repro.mongo.database import MongoDatabase, MongoReplicaSet
from repro.resilience import CircuitBreaker, Deadline, RetryPolicy, retry_call
from repro.sim.core import Environment, Event
from repro.sim.rng import RngRegistry

#: Request latency of MongoDB for small documents (an order of magnitude
#: slower than etcd for the coordination workload, per the paper's rationale).
DEFAULT_MONGO_LATENCY_S = 0.015

#: Only unreachability is retryable; semantic errors (duplicate key,
#: malformed update) would fail identically on every attempt.
RETRYABLE_MONGO_ERRORS = (StoreUnavailableError,)


class MongoClient:
    """Issue MongoDB operations as simulation processes.

    Mirrors :class:`~repro.etcd.client.EtcdClient`: an optional
    ``retry`` policy (jitter from the ``resilience:mongo-client``
    stream), circuit ``breaker`` and per-call ``deadline_s`` turn each
    operation into a bounded retry loop across replica-set failovers.
    """

    def __init__(self, env: Environment,
                 backend: Union[MongoDatabase, MongoReplicaSet],
                 latency_s: float = DEFAULT_MONGO_LATENCY_S,
                 rng: Optional[RngRegistry] = None,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 deadline_s: Optional[float] = None):
        self.env = env
        self.backend = backend
        self.latency_s = latency_s
        self.retry = retry
        self.breaker = breaker
        self.default_deadline_s = deadline_s
        self._retry_stream = rng.stream("resilience:mongo-client") \
            if rng is not None else None
        self.ops_issued = 0
        self.retries = 0
        #: Chaos hook for standalone (non-replica-set) backends.
        self.available = True

    def set_available(self, available: bool) -> None:
        self.available = available

    def _collection(self, name: str) -> Collection:
        return self.backend.collection(name)

    def _call(self, action) -> Event:
        self.ops_issued += 1

        def attempt() -> Event:
            def op():
                yield self.env.timeout(self.latency_s)
                if not self.available:
                    raise StoreUnavailableError("mongodb is unavailable")
                return action()

            return self.env.process(op(), name="mongo-op")

        if self.retry is None and self.breaker is None \
                and self.default_deadline_s is None:
            return attempt()

        def count_retry(_attempt: int, _err: BaseException) -> None:
            self.retries += 1

        deadline = Deadline(self.env, self.default_deadline_s) \
            if self.default_deadline_s is not None else None
        return self.env.process(
            retry_call(self.env, self._retry_stream, attempt,
                       self.retry or RetryPolicy(max_attempts=1),
                       retry_on=RETRYABLE_MONGO_ERRORS,
                       breaker=self.breaker, deadline=deadline,
                       on_retry=count_retry),
            name="mongo-op")

    def insert_one(self, collection: str, document: Dict[str, Any]) -> Event:
        return self._call(lambda: self._collection(collection)
                          .insert_one(document))

    def update_one(self, collection: str, query: Dict[str, Any],
                   update: Dict[str, Any], upsert: bool = False) -> Event:
        return self._call(lambda: self._collection(collection)
                          .update_one(query, update, upsert=upsert))

    def update_many(self, collection: str, query: Dict[str, Any],
                    update: Dict[str, Any]) -> Event:
        return self._call(lambda: self._collection(collection)
                          .update_many(query, update))

    def find(self, collection: str, query: Optional[Dict[str, Any]] = None,
             sort: Optional[List] = None,
             limit: Optional[int] = None) -> Event:
        return self._call(lambda: self._collection(collection)
                          .find(query, sort=sort, limit=limit))

    def find_one(self, collection: str,
                 query: Optional[Dict[str, Any]] = None,
                 sort: Optional[List] = None) -> Event:
        return self._call(lambda: self._collection(collection)
                          .find_one(query, sort=sort))

    def delete_many(self, collection: str, query: Dict[str, Any]) -> Event:
        return self._call(lambda: self._collection(collection)
                          .delete_many(query))

    def count(self, collection: str,
              query: Optional[Dict[str, Any]] = None) -> Event:
        return self._call(lambda: self._collection(collection).count(query))
