"""Latency-modelled client for MongoDB, mirroring :class:`EtcdClient`.

FfDL's API service persists job metadata through this client; its higher
per-op latency relative to etcd is what the status-store ablation measures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.mongo.collection import Collection
from repro.mongo.database import MongoDatabase, MongoReplicaSet
from repro.sim.core import Environment, Event

#: Request latency of MongoDB for small documents (an order of magnitude
#: slower than etcd for the coordination workload, per the paper's rationale).
DEFAULT_MONGO_LATENCY_S = 0.015


class MongoClient:
    """Issue MongoDB operations as simulation processes."""

    def __init__(self, env: Environment,
                 backend: Union[MongoDatabase, MongoReplicaSet],
                 latency_s: float = DEFAULT_MONGO_LATENCY_S):
        self.env = env
        self.backend = backend
        self.latency_s = latency_s
        self.ops_issued = 0

    def _collection(self, name: str) -> Collection:
        return self.backend.collection(name)

    def _call(self, action) -> Event:
        self.ops_issued += 1

        def op():
            yield self.env.timeout(self.latency_s)
            return action()

        return self.env.process(op(), name="mongo-op")

    def insert_one(self, collection: str, document: Dict[str, Any]) -> Event:
        return self._call(lambda: self._collection(collection)
                          .insert_one(document))

    def update_one(self, collection: str, query: Dict[str, Any],
                   update: Dict[str, Any], upsert: bool = False) -> Event:
        return self._call(lambda: self._collection(collection)
                          .update_one(query, update, upsert=upsert))

    def update_many(self, collection: str, query: Dict[str, Any],
                    update: Dict[str, Any]) -> Event:
        return self._call(lambda: self._collection(collection)
                          .update_many(query, update))

    def find(self, collection: str, query: Optional[Dict[str, Any]] = None,
             sort: Optional[List] = None,
             limit: Optional[int] = None) -> Event:
        return self._call(lambda: self._collection(collection)
                          .find(query, sort=sort, limit=limit))

    def find_one(self, collection: str,
                 query: Optional[Dict[str, Any]] = None,
                 sort: Optional[List] = None) -> Event:
        return self._call(lambda: self._collection(collection)
                          .find_one(query, sort=sort))

    def delete_many(self, collection: str, query: Dict[str, Any]) -> Event:
        return self._call(lambda: self._collection(collection)
                          .delete_many(query))

    def count(self, collection: str,
              query: Optional[Dict[str, Any]] = None) -> Event:
        return self._call(lambda: self._collection(collection).count(query))
