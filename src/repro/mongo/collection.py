"""An in-memory MongoDB collection.

Documents are plain dicts keyed by ``_id`` (auto-assigned when omitted).
Supports the query/update subset in :mod:`repro.mongo.query`, unique
indexes, sort/limit, and upserts — everything FfDL's metadata layer uses.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.mongo.query import (
    MISSING,
    apply_update,
    get_path,
    matches,
    sort_documents,
)
from repro.sim.race import note_read, note_write


class Collection:
    """A named collection of documents.

    ``env``/``race_label`` (threaded in by :class:`MongoDatabase` when
    it is bound to a simulation) let document accesses feed the runtime
    race detector; both default to None and cost nothing when unset.
    """

    def __init__(self, name: str, env=None,
                 race_label: Optional[str] = None):
        self.name = name
        self._env = env
        self._race_label = race_label
        self._documents: Dict[Any, Dict[str, Any]] = {}
        self._id_counter = itertools.count(1)
        self._unique_indexes: List[str] = []
        #: Change log consumed by the replication layer: (op, payload).
        self.oplog: List[tuple] = []

    def _note_write(self, doc_id: Any, site: str) -> None:
        if self._race_label is not None:
            note_write(self._env, self._race_label,
                       f"{self.name}/{doc_id}", site)

    def _note_read(self, doc_id: Any, site: str) -> None:
        if self._race_label is not None:
            note_read(self._env, self._race_label,
                      f"{self.name}/{doc_id}", site)

    # -- index management -----------------------------------------------------

    def create_index(self, field: str, unique: bool = False) -> None:
        """Declare an index.  Only unique indexes change behaviour here; the
        simulation does not model index lookup speed."""
        if unique and field not in self._unique_indexes:
            for doc in self._documents.values():
                self._check_unique(field, doc, exclude_id=doc["_id"])
            self._unique_indexes.append(field)

    def _check_unique(self, field: str, candidate: Dict[str, Any],
                      exclude_id: Any = None) -> None:
        value = get_path(candidate, field)
        if value is MISSING:
            return
        for doc in self._documents.values():
            if doc["_id"] == exclude_id:
                continue
            if get_path(doc, field) == value:
                raise DuplicateKeyError(
                    f"duplicate value {value!r} for unique index "
                    f"{field!r} in {self.name!r}")

    def _check_all_unique(self, candidate: Dict[str, Any],
                          exclude_id: Any = None) -> None:
        for field in self._unique_indexes:
            self._check_unique(field, candidate, exclude_id)

    # -- writes ------------------------------------------------------------------

    def insert_one(self, document: Dict[str, Any]) -> Any:
        doc = copy.deepcopy(document)
        if "_id" not in doc:
            doc["_id"] = f"{self.name}-{next(self._id_counter)}"
        if doc["_id"] in self._documents:
            raise DuplicateKeyError(f"_id {doc['_id']!r} already exists")
        self._check_all_unique(doc)
        self._note_write(doc["_id"], "Collection.insert_one")
        self._documents[doc["_id"]] = doc
        self.oplog.append(("insert", copy.deepcopy(doc)))
        return doc["_id"]

    def insert_many(self, documents: Iterable[Dict[str, Any]]) -> List[Any]:
        return [self.insert_one(doc) for doc in documents]

    def update_one(self, query: Dict[str, Any], update: Dict[str, Any],
                   upsert: bool = False) -> int:
        """Update the first match; returns the number of documents modified."""
        for doc in self._iter_matches(query):
            updated = apply_update(copy.deepcopy(doc), update)
            self._check_all_unique(updated, exclude_id=doc["_id"])
            self._note_write(doc["_id"], "Collection.update_one")
            self._documents[doc["_id"]] = updated
            self.oplog.append(("update", copy.deepcopy(updated)))
            return 1
        if upsert:
            seed = {k: v for k, v in query.items()
                    if not k.startswith("$") and not isinstance(v, dict)}
            base = apply_update(seed, update)
            self.insert_one(base)
            return 1
        return 0

    def update_many(self, query: Dict[str, Any],
                    update: Dict[str, Any]) -> int:
        count = 0
        for doc in list(self._iter_matches(query)):
            updated = apply_update(copy.deepcopy(doc), update)
            self._check_all_unique(updated, exclude_id=doc["_id"])
            self._note_write(doc["_id"], "Collection.update_many")
            self._documents[doc["_id"]] = updated
            self.oplog.append(("update", copy.deepcopy(updated)))
            count += 1
        return count

    def replace_one(self, query: Dict[str, Any],
                    replacement: Dict[str, Any]) -> int:
        for doc in self._iter_matches(query):
            new_doc = copy.deepcopy(replacement)
            new_doc["_id"] = doc["_id"]
            self._check_all_unique(new_doc, exclude_id=doc["_id"])
            self._note_write(doc["_id"], "Collection.replace_one")
            self._documents[doc["_id"]] = new_doc
            self.oplog.append(("update", copy.deepcopy(new_doc)))
            return 1
        return 0

    def delete_one(self, query: Dict[str, Any]) -> int:
        for doc in self._iter_matches(query):
            self._note_write(doc["_id"], "Collection.delete_one")
            del self._documents[doc["_id"]]
            self.oplog.append(("delete", doc["_id"]))
            return 1
        return 0

    def delete_many(self, query: Dict[str, Any]) -> int:
        victims = [doc["_id"] for doc in self._iter_matches(query)]
        for doc_id in victims:
            self._note_write(doc_id, "Collection.delete_many")
            del self._documents[doc_id]
            self.oplog.append(("delete", doc_id))
        return len(victims)

    # -- reads -------------------------------------------------------------------

    def find(self, query: Optional[Dict[str, Any]] = None,
             sort: Optional[list] = None,
             limit: Optional[int] = None) -> List[Dict[str, Any]]:
        results = [copy.deepcopy(doc)
                   for doc in self._iter_matches(query or {})]
        results = sort_documents(results, sort)
        if limit is not None:
            results = results[:limit]
        for doc in results:
            self._note_read(doc["_id"], "Collection.find")
        return results

    def find_one(self,
                 query: Optional[Dict[str, Any]] = None,
                 sort: Optional[list] = None) -> Optional[Dict[str, Any]]:
        results = self.find(query, sort=sort, limit=1)
        return results[0] if results else None

    def get(self, doc_id: Any) -> Dict[str, Any]:
        """Fetch by _id; raises if absent."""
        self._note_read(doc_id, "Collection.get")
        doc = self._documents.get(doc_id)
        if doc is None:
            raise KeyNotFoundError(f"no document {doc_id!r} in {self.name!r}")
        return copy.deepcopy(doc)

    def count(self, query: Optional[Dict[str, Any]] = None) -> int:
        if not query:
            return len(self._documents)
        return sum(1 for _ in self._iter_matches(query))

    def distinct(self, field: str,
                 query: Optional[Dict[str, Any]] = None) -> List[Any]:
        seen = []
        for doc in self._iter_matches(query or {}):
            value = get_path(doc, field)
            if value is not MISSING and value not in seen:
                seen.append(value)
        return seen

    def __len__(self) -> int:
        return len(self._documents)

    def _iter_matches(self, query: Dict[str, Any]):
        for doc in self._documents.values():
            if matches(doc, query):
                yield doc

    # -- replication support --------------------------------------------------------

    def apply_oplog_entry(self, entry: tuple) -> None:
        """Apply a change-log entry verbatim (used by secondaries)."""
        op, payload = entry
        if op == "insert":
            self._documents[payload["_id"]] = copy.deepcopy(payload)
        elif op == "update":
            self._documents[payload["_id"]] = copy.deepcopy(payload)
        elif op == "delete":
            self._documents.pop(payload, None)
