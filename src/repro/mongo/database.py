"""MongoDB database and replica set.

:class:`MongoDatabase` is a bag of named collections.  :class:`MongoReplicaSet`
models primary/secondary replication with an asynchronous oplog tail and
automatic failover — enough fidelity for the paper's claim that "MongoDB ...
[is] also replicated for high availability" and for the ablation comparing
etcd vs MongoDB as the status-coordination store.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

from repro.errors import StoreError, StoreUnavailableError
from repro.mongo.collection import Collection
from repro.sim.core import Environment


class MongoDatabase:
    """A named set of collections.

    Passing ``env`` registers the database as a shared store so that
    document accesses feed the runtime race detector; without it the
    database is a plain in-memory bag (replica-set secondaries and unit
    tests use it that way).
    """

    def __init__(self, name: str = "ffdl",
                 env: Optional[Environment] = None):
        self.name = name
        self._env = env
        self._race_label = (env.register_shared_store(f"mongo:{name}", self)
                            if env is not None else None)
        self._collections: Dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        if name not in self._collections:
            self._collections[name] = Collection(
                name, env=self._env, race_label=self._race_label)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def collection_names(self) -> List[str]:
        return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        self._collections.pop(name, None)


class MongoReplicaSet:
    """A primary plus N secondaries tailing the primary's oplogs."""

    def __init__(self, env: Environment, secondaries: int = 2,
                 replication_lag_s: float = 0.05, name: str = "rs0",
                 election_delay_s: float = 0.0):
        if secondaries < 0:
            raise StoreError("secondaries must be >= 0")
        if election_delay_s < 0:
            raise StoreError("election_delay_s must be >= 0")
        self.env = env
        self.name = name
        self.replication_lag_s = replication_lag_s
        #: How long the set is primary-less after losing its primary
        #: (real MongoDB elections take ~2-12s; the default 0 keeps the
        #: legacy instant-failover behaviour for existing callers).
        self.election_delay_s = election_delay_s
        self._election_until: float = 0.0
        #: (primary_lost_at, new_primary_elected_at, new_primary_index)
        self.failover_log: List[tuple] = []
        self.members: List[MongoDatabase] = [
            MongoDatabase(f"{name}-{i}", env=env)
            for i in range(secondaries + 1)]
        self._primary_index = 0
        self._down: set[int] = set()
        #: replication positions: member index -> collection -> applied count
        self._positions: Dict[int, Dict[str, int]] = {
            i: {} for i in range(len(self.members))}
        #: Primary epoch: bumped on failover.  A member whose recorded epoch
        #: is stale performs a full resync from the new primary, since its
        #: oplog positions referred to the old primary's log.
        self._epoch = 0
        self._member_epochs: Dict[int, int] = {
            i: 0 for i in range(len(self.members))}
        self._repl_process = env.process(self._replicate(),
                                         name=f"mongo-repl:{name}")

    @property
    def primary(self) -> MongoDatabase:
        if self._primary_index in self._down:
            if self.env.now < self._election_until:
                raise StoreUnavailableError("primary election in progress")
            raise StoreUnavailableError("no primary available")
        return self.members[self._primary_index]

    @property
    def has_primary(self) -> bool:
        return self._primary_index not in self._down

    @property
    def primary_index(self) -> int:
        return self._primary_index

    def collection(self, name: str) -> Collection:
        """Collection handle on the current primary (reads and writes)."""
        return self.primary.collection(name)

    # -- failover ---------------------------------------------------------------

    def crash_member(self, index: int) -> None:
        self._down.add(index)
        if index == self._primary_index:
            self._begin_election()

    def restart_member(self, index: int) -> None:
        """Bring a member back; it resyncs from the primary's full state."""
        self._down.discard(index)
        if all(i in self._down for i in range(len(self.members))):
            return
        if self._primary_index in self._down:
            self._begin_election()

    def _begin_election(self) -> None:
        """Elect a new primary, after ``election_delay_s`` of downtime.

        With the default zero delay failover is instantaneous (legacy
        behaviour); chaos scenarios set a positive delay so that writes
        issued mid-election actually observe an unavailable primary.
        """
        lost_at = self.env.now
        if self.election_delay_s <= 0:
            self._elect_new_primary(lost_at)
            return
        self._election_until = max(self._election_until,
                                   lost_at + self.election_delay_s)

        def election():
            yield self.env.timeout(self.election_delay_s)
            if self._primary_index in self._down:
                self._elect_new_primary(lost_at)

        self.env.process(election(), name=f"mongo-election:{self.name}")

    def _elect_new_primary(self, lost_at: float) -> None:
        candidates = [i for i in range(len(self.members))
                      if i not in self._down]
        if not candidates:
            return  # total outage; restart_member will re-elect
        # Pick the most-up-to-date secondary (highest total applied ops).
        def applied(i: int) -> int:
            return sum(self._positions[i].values())

        new_primary = max(candidates, key=applied)
        if new_primary != self._primary_index:
            self._primary_index = new_primary
            self._epoch += 1
            self._member_epochs[new_primary] = self._epoch
            self.failover_log.append((lost_at, self.env.now, new_primary))

    # -- replication loop ----------------------------------------------------------

    def _replicate(self):
        while True:
            yield self.env.timeout(self.replication_lag_s)
            primary_idx = self._primary_index
            if primary_idx in self._down:
                continue
            primary = self.members[primary_idx]
            for member_idx, member in enumerate(self.members):
                if member_idx == primary_idx or member_idx in self._down:
                    continue
                self._catch_up(primary_idx, primary, member_idx, member)

    def _catch_up(self, primary_idx: int, primary: MongoDatabase,
                  member_idx: int, member: MongoDatabase) -> None:
        positions = self._positions[member_idx]
        stale = self._member_epochs[member_idx] != self._epoch
        if stale:
            self._full_resync(primary, member, positions)
            self._member_epochs[member_idx] = self._epoch
            return
        for coll_name in primary.collection_names():
            source = primary.collection(coll_name)
            target = member.collection(coll_name)
            applied = positions.get(coll_name, 0)
            for entry in source.oplog[applied:]:
                target.apply_oplog_entry(entry)
            positions[coll_name] = len(source.oplog)
        # Track the primary's own position over its oplog.
        self._positions[primary_idx] = {
            name: len(primary.collection(name).oplog)
            for name in primary.collection_names()}

    @staticmethod
    def _full_resync(primary: MongoDatabase, member: MongoDatabase,
                     positions: Dict[str, int]) -> None:
        """Copy the primary's full state; realign oplog positions."""
        for coll_name in primary.collection_names():
            source = primary.collection(coll_name)
            target = member.collection(coll_name)
            target._documents = copy.deepcopy(source._documents)
            positions[coll_name] = len(source.oplog)
