"""Mongo-style query and update evaluation.

Implements the subset of the MongoDB query language FfDL's metadata access
patterns need: comparison operators, ``$in``/``$nin``, ``$exists``, logical
``$and``/``$or``/``$not``, dotted field paths, and the ``$set``/``$unset``/
``$inc``/``$push``/``$pull`` update operators.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.errors import StoreError

_MISSING = object()


def get_path(document: Dict[str, Any], path: str) -> Any:
    """Resolve a (possibly dotted) field path; returns _MISSING if absent."""
    current: Any = document
    for part in path.split("."):
        if isinstance(current, dict) and part in current:
            current = current[part]
        else:
            return _MISSING
    return current


def set_path(document: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    current = document
    for part in parts[:-1]:
        current = current.setdefault(part, {})
        if not isinstance(current, dict):
            raise StoreError(f"cannot descend into non-document at {part!r}")
    current[parts[-1]] = value


def unset_path(document: Dict[str, Any], path: str) -> None:
    parts = path.split(".")
    current = document
    for part in parts[:-1]:
        if not isinstance(current, dict) or part not in current:
            return
        current = current[part]
    if isinstance(current, dict):
        current.pop(parts[-1], None)


def _compare(actual: Any, op: str, target: Any) -> bool:
    if op == "$eq":
        return actual == target
    if op == "$ne":
        return actual != target
    if actual is _MISSING:
        return False
    try:
        if op == "$gt":
            return actual > target
        if op == "$gte":
            return actual >= target
        if op == "$lt":
            return actual < target
        if op == "$lte":
            return actual <= target
    except TypeError:
        return False
    if op == "$in":
        return actual in target
    if op == "$nin":
        return actual not in target
    raise StoreError(f"unknown query operator {op!r}")


def _match_field(actual: Any, condition: Any) -> bool:
    if isinstance(condition, dict) and any(
            k.startswith("$") for k in condition):
        for op, target in condition.items():
            if op == "$exists":
                present = actual is not _MISSING
                if present != bool(target):
                    return False
            elif op == "$not":
                if _match_field(actual, target):
                    return False
            else:
                norm = actual if actual is not _MISSING else _MISSING
                if not _compare(norm, op, target):
                    return False
        return True
    # Plain equality (also matches membership for list fields, like Mongo).
    if isinstance(actual, list) and not isinstance(condition, list):
        return condition in actual or actual == condition
    return actual == condition


def matches(document: Dict[str, Any], query: Dict[str, Any]) -> bool:
    """True if ``document`` satisfies the Mongo-style ``query``."""
    for key, condition in query.items():
        if key == "$and":
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$nor":
            if any(matches(document, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise StoreError(f"unknown top-level operator {key!r}")
        else:
            actual = get_path(document, key)
            actual = actual if actual is not _MISSING else _MISSING
            if not _match_field(
                    actual if actual is not _MISSING else _MISSING,
                    condition):
                return False
    return True


def apply_update(document: Dict[str, Any],
                 update: Dict[str, Any]) -> Dict[str, Any]:
    """Apply a Mongo-style update spec to ``document`` in place."""
    operator_keys = [k for k in update if k.startswith("$")]
    if operator_keys and len(operator_keys) != len(update):
        raise StoreError("cannot mix update operators with replacement")
    if not operator_keys:
        # Whole-document replacement (preserving _id).
        doc_id = document.get("_id")
        document.clear()
        document.update(update)
        if doc_id is not None and "_id" not in document:
            document["_id"] = doc_id
        return document
    for op, spec in update.items():
        if op == "$set":
            for path, value in spec.items():
                set_path(document, path, value)
        elif op == "$unset":
            for path in spec:
                unset_path(document, path)
        elif op == "$inc":
            for path, amount in spec.items():
                current = get_path(document, path)
                base = 0 if current is _MISSING else current
                set_path(document, path, base + amount)
        elif op == "$push":
            for path, value in spec.items():
                current = get_path(document, path)
                if current is _MISSING:
                    set_path(document, path, [value])
                elif isinstance(current, list):
                    current.append(value)
                else:
                    raise StoreError(f"$push target {path!r} is not a list")
        elif op == "$pull":
            for path, value in spec.items():
                current = get_path(document, path)
                if isinstance(current, list):
                    current[:] = [v for v in current if v != value]
        else:
            raise StoreError(f"unknown update operator {op!r}")
    return document


def sort_documents(documents: Iterable[Dict[str, Any]],
                   sort_spec: Optional[list] = None) -> list:
    """Sort by a list of (field, direction) pairs, direction in {1, -1}."""
    docs = list(documents)
    if not sort_spec:
        return docs
    for field, direction in reversed(sort_spec):
        docs.sort(
            key=lambda d: _sort_key(get_path(d, field)),
            reverse=(direction == -1))
    return docs


def _sort_key(value: Any):
    # Missing values sort first, mirroring MongoDB's null-first ordering.
    if value is _MISSING or value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))


MISSING = _MISSING
