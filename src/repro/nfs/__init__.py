"""NFS substrate: shared volumes and the (slow, failure-prone) provisioner."""

from repro.nfs.volume import NFSVolume
from repro.nfs.provisioner import NFSProvisioner, VolumePool

__all__ = ["NFSProvisioner", "NFSVolume", "VolumePool"]
