"""NFS substrate: shared volumes and the (slow, failure-prone) provisioner."""

from repro.nfs.provisioner import NFSProvisioner, VolumePool
from repro.nfs.volume import NFSVolume

__all__ = ["NFSProvisioner", "NFSVolume", "VolumePool"]
