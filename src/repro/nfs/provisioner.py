"""Dynamic NFS volume provisioning.

The paper's "lessons learned" (Section 4) records that "provisioning NFS
volumes was slow and often failed under high load" and that a
pre-allocating pool microservice "only increased the complexity of the
system".  :class:`NFSProvisioner` reproduces the load-dependent latency and
failure curve; :class:`VolumePool` is the pool workaround, kept for the
storage ablation.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.errors import ProvisioningError
from repro.nfs.volume import NFSVolume
from repro.sim.core import Environment, Event
from repro.sim.rng import RngRegistry


class NFSProvisioner:
    """Creates volumes on demand; degrades under concurrent load.

    Latency grows linearly with in-flight provisioning requests, and beyond
    ``overload_threshold`` concurrent requests each has ``overload_failure_
    probability`` of failing — the behaviour the paper observed in
    production.
    """

    def __init__(self, env: Environment, rng: RngRegistry,
                 base_latency_s: float = 4.0,
                 per_request_penalty_s: float = 2.0,
                 overload_threshold: int = 10,
                 overload_failure_probability: float = 0.3):
        self.env = env
        self.rng = rng.stream("nfs-provisioner")
        self.base_latency_s = base_latency_s
        self.per_request_penalty_s = per_request_penalty_s
        self.overload_threshold = overload_threshold
        self.overload_failure_probability = overload_failure_probability
        self.in_flight = 0
        self.provisioned = 0
        self.failures = 0
        self._counter = itertools.count(1)

    def provision(self, name: Optional[str] = None) -> Event:
        """Provision a volume; resolves with :class:`NFSVolume` or fails
        with :class:`ProvisioningError` under overload."""
        volume_name = name or f"nfs-vol-{next(self._counter)}"
        self.in_flight += 1
        latency = (self.base_latency_s +
                   self.per_request_penalty_s * (self.in_flight - 1))
        overloaded = self.in_flight > self.overload_threshold

        def create():
            try:
                yield self.env.timeout(latency)
                if overloaded and (self.rng.random() <
                                   self.overload_failure_probability):
                    self.failures += 1
                    raise ProvisioningError(
                        f"NFS provisioning of {volume_name!r} failed "
                        f"under load ({self.in_flight} in flight)")
                self.provisioned += 1
                return NFSVolume(volume_name)
            finally:
                self.in_flight -= 1

        return self.env.process(create(), name=f"nfs-prov:{volume_name}")


class VolumePool:
    """Pre-allocated pool of NFS volumes (the workaround the paper tried).

    Acquiring from a warm pool is fast; when the pool is drained, requests
    fall back to the slow dynamic provisioner — keeping the pool filled is
    itself a background process, which is exactly the added complexity the
    paper complains about.
    """

    def __init__(self, env: Environment, provisioner: NFSProvisioner,
                 target_size: int = 8, refill_interval_s: float = 30.0,
                 acquire_latency_s: float = 0.5):
        self.env = env
        self.provisioner = provisioner
        self.target_size = target_size
        self.acquire_latency_s = acquire_latency_s
        self.refill_interval_s = refill_interval_s
        self._pool: List[NFSVolume] = []
        self.pool_hits = 0
        self.pool_misses = 0
        self._refiller = env.process(self._refill_loop(), name="nfs-pool")

    @property
    def available(self) -> int:
        return len(self._pool)

    def acquire(self) -> Event:
        """Take a volume from the pool, or fall back to slow provisioning."""
        if self._pool:
            self.pool_hits += 1
            volume = self._pool.pop()

            def fast():
                yield self.env.timeout(self.acquire_latency_s)
                return volume

            return self.env.process(fast(), name="nfs-pool-hit")
        self.pool_misses += 1
        return self.provisioner.provision()

    def _refill_loop(self):
        while True:
            yield self.env.timeout(self.refill_interval_s)
            while len(self._pool) < self.target_size:
                try:
                    volume = yield self.provisioner.provision()
                except ProvisioningError:
                    break  # try again next cycle
                self._pool.append(volume)
