"""A shared NFS volume.

FfDL mounts one NFS volume per job, shared between the learner pods and the
helper pod: "the shared NFS volume enables the controller container ...
to monitor the execution and exit status of the learner processes ... by
reading their output and process exit statuses redirected to a file"
(Section 3.8).  The volume is a small in-memory filesystem; its contents
survive pod crashes (that is the point), but not volume deletion.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class NFSVolume:
    """A tiny shared filesystem: path -> string content, with append.

    ``subscribe`` registers a change callback; this stands in for the
    helper controller's fast polling loop over status files without
    simulating every poll tick (the observable behaviour — the controller
    reacts to file changes within its poll interval — is preserved by the
    consumer adding its poll latency).
    """

    def __init__(self, name: str, capacity_bytes: float = 1e9):
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._files: Dict[str, str] = {}
        self._subscribers: List[Callable[[str], None]] = []
        self.released = False

    def subscribe(self, callback: Callable[[str], None]) -> None:
        self._subscribers.append(callback)

    def _changed(self, path: str) -> None:
        for callback in list(self._subscribers):
            callback(path)

    def write(self, path: str, content: str) -> None:
        self._check_live()
        self._files[path] = content
        self._changed(path)

    def append(self, path: str, content: str) -> None:
        self._check_live()
        self._files[path] = self._files.get(path, "") + content
        self._changed(path)

    def read(self, path: str) -> Optional[str]:
        self._check_live()
        return self._files.get(path)

    def exists(self, path: str) -> bool:
        self._check_live()
        return path in self._files

    def listdir(self, prefix: str = "") -> List[str]:
        self._check_live()
        return sorted(p for p in self._files if p.startswith(prefix))

    def delete(self, path: str) -> bool:
        self._check_live()
        return self._files.pop(path, None) is not None

    def used_bytes(self) -> int:
        return sum(len(content) for content in self._files.values())

    def release(self) -> None:
        """Tear the volume down (Guardian garbage collection)."""
        self.released = True
        self._files.clear()

    def _check_live(self) -> None:
        if self.released:
            raise RuntimeError(f"volume {self.name!r} has been released")
