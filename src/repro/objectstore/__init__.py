"""Object storage substrate: buckets, streaming bandwidth, mount driver."""

from repro.objectstore.mount import BucketMount, MountCache
from repro.objectstore.service import (
    Bucket,
    Credentials,
    DEFAULT_BANDWIDTH_BPS,
    ObjectStorageService,
    StoredObject,
)

__all__ = [
    "Bucket",
    "BucketMount",
    "Credentials",
    "DEFAULT_BANDWIDTH_BPS",
    "MountCache",
    "ObjectStorageService",
    "StoredObject",
]
