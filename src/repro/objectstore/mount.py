"""s3fs-style bucket mount driver with an LRU caching layer.

FfDL "can mount remote data in the learner container, so DL frameworks can
access training data as though it were on the local filesystem.  A driver
streams files on demand and caches them so they can be reused across
training epochs and jobs" (Section 3.7).  :class:`MountCache` is shared
across mounts on the same node; the ablation benchmark toggles it to show
the epoch-reuse win the paper's "lessons learned" section argues for.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Optional

from repro.errors import ObjectStorageUnavailableError
from repro.objectstore.service import ObjectStorageService
from repro.resilience import RetryPolicy, retry_call
from repro.sim.core import Environment, Event


class MountCache:
    """A byte-capacity LRU cache of objects, shared across mounts."""

    def __init__(self, capacity_bytes: float):
        self.capacity_bytes = float(capacity_bytes)
        self._entries: "OrderedDict[str, float]" = OrderedDict()
        self.used_bytes = 0.0
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(bucket: str, key: str) -> str:
        return f"{bucket}/{key}"

    def lookup(self, bucket: str, key: str) -> bool:
        cache_key = self._key(bucket, key)
        if cache_key in self._entries:
            self._entries.move_to_end(cache_key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def admit(self, bucket: str, key: str, size_bytes: float) -> None:
        if size_bytes > self.capacity_bytes:
            return  # object larger than the whole cache: bypass
        cache_key = self._key(bucket, key)
        if cache_key in self._entries:
            self._entries.move_to_end(cache_key)
            return
        while self.used_bytes + size_bytes > self.capacity_bytes:
            _victim, victim_size = self._entries.popitem(last=False)
            self.used_bytes -= victim_size
        self._entries[cache_key] = size_bytes
        self.used_bytes += size_bytes

    def invalidate(self, bucket: str, key: str) -> None:
        size = self._entries.pop(self._key(bucket, key), None)
        if size is not None:
            self.used_bytes -= size

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BucketMount:
    """A mounted bucket: filesystem-like reads backed by streaming + cache."""

    def __init__(self, env: Environment, service: ObjectStorageService,
                 bucket: str, cache: Optional[MountCache] = None,
                 token: Optional[str] = None,
                 cached_read_latency_s: float = 0.001,
                 retry: Optional[RetryPolicy] = None,
                 retry_stream: Optional[random.Random] = None):
        self.env = env
        self.service = service
        self.bucket = bucket
        self.cache = cache
        self.token = token
        self.cached_read_latency_s = cached_read_latency_s
        #: Optional resilience against object-store outage windows: reads
        #: and writes retry under this policy (jitter from retry_stream).
        self.retry = retry
        self.retry_stream = retry_stream
        self.reads = 0
        self.bytes_read = 0.0
        self.retries = 0

    def _with_retry(self, attempt):
        """Run ``attempt`` (→ Event) under the mount's retry policy."""

        def count_retry(_attempt: int, _err: BaseException) -> None:
            self.retries += 1

        return retry_call(self.env, self.retry_stream, attempt, self.retry,
                          retry_on=(ObjectStorageUnavailableError,),
                          on_retry=count_retry)

    def read(self, key: str) -> Event:
        """Read a file; resolves with the StoredObject.

        Cache hits cost only local-disk latency; misses stream the object
        over the shared OSS bandwidth and then admit it to the cache.
        """
        self.reads += 1
        if self.cache is not None and self.cache.lookup(self.bucket, key):
            obj = self.service.bucket(self.bucket).get(key)
            self.bytes_read += obj.size_bytes

            def cached():
                yield self.env.timeout(self.cached_read_latency_s)
                return obj

            return self.env.process(cached(), name=f"mount-hit:{key}")

        def miss():
            if self.retry is not None:
                obj = yield from self._with_retry(
                    lambda: self.service.download(self.bucket, key,
                                                  self.token))
            else:
                obj = yield self.service.download(self.bucket, key,
                                                  self.token)
            self.bytes_read += obj.size_bytes
            if self.cache is not None:
                self.cache.admit(self.bucket, key, obj.size_bytes)
            return obj

        return self.env.process(miss(), name=f"mount-miss:{key}")

    def write(self, key: str, size_bytes: float, payload=None) -> Event:
        """Write a file through to the bucket (checkpoints, results)."""

        def upload():
            if self.retry is not None:
                obj = yield from self._with_retry(
                    lambda: self.service.upload(self.bucket, key, size_bytes,
                                                payload, self.token))
            else:
                obj = yield self.service.upload(self.bucket, key, size_bytes,
                                                payload, self.token)
            if self.cache is not None:
                self.cache.invalidate(self.bucket, key)
            return obj

        return self.env.process(upload(), name=f"mount-write:{key}")

    def listdir(self, prefix: str = "") -> list:
        return self.service.list_objects(self.bucket, prefix, self.token)
