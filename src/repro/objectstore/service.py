"""Cloud Object Storage Service (OSS).

Models the IBM Cloud Object Storage the paper stores training data,
checkpoints and results in: buckets of objects, credential-scoped access,
and a shared, fair-share bandwidth pool — the resource whose saturation
produces the heavy-load degradation in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import (
    AccessDeniedError,
    NoSuchBucketError,
    NoSuchObjectError,
    ObjectStorageError,
    ObjectStorageUnavailableError,
)
from repro.sim.core import Environment, Event
from repro.sim.resources import FairShareLink

#: Aggregate object-storage bandwidth of a production deployment (bytes/s).
#: Roughly 10 Gbit/s of aggregate storage throughput.
DEFAULT_BANDWIDTH_BPS = 1.25e9


@dataclass
class StoredObject:
    """One object: a key, a size, and optional payload/metadata."""

    key: str
    size_bytes: float
    payload: Any = None
    etag: int = 0


@dataclass
class Credentials:
    """An access token scoped to a set of buckets ('*' grants everything)."""

    token: str
    buckets: List[str] = field(default_factory=lambda: ["*"])

    def allows(self, bucket: str) -> bool:
        return "*" in self.buckets or bucket in self.buckets


class Bucket:
    """A flat namespace of objects."""

    def __init__(self, name: str):
        self.name = name
        self._objects: Dict[str, StoredObject] = {}
        self._etag_counter = 0

    def put(self, key: str, size_bytes: float,
            payload: Any = None) -> StoredObject:
        if size_bytes < 0:
            raise ObjectStorageError("object size cannot be negative")
        self._etag_counter += 1
        obj = StoredObject(key, float(size_bytes), payload,
                           self._etag_counter)
        self._objects[key] = obj
        return obj

    def get(self, key: str) -> StoredObject:
        obj = self._objects.get(key)
        if obj is None:
            raise NoSuchObjectError(f"{self.name}/{key}")
        return obj

    def delete(self, key: str) -> bool:
        return self._objects.pop(key, None) is not None

    def list(self, prefix: str = "") -> List[StoredObject]:
        return [self._objects[k] for k in sorted(self._objects)
                if k.startswith(prefix)]

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)


class ObjectStorageService:
    """The OSS control plane plus its shared bandwidth pool."""

    def __init__(self, env: Environment,
                 bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
                 request_latency_s: float = 0.05):
        self.env = env
        self.link = FairShareLink(env, bandwidth_bps, name="oss")
        self.nominal_bandwidth_bps = float(bandwidth_bps)
        self.request_latency_s = request_latency_s
        self._buckets: Dict[str, Bucket] = {}
        self._credentials: Dict[str, Credentials] = {}
        self.downloads_started = 0
        self.uploads_started = 0
        #: Chaos hook: while False every new request fails (after its
        #: request latency) with ObjectStorageUnavailableError.
        self.available = True

    # -- chaos hooks -------------------------------------------------------

    def set_available(self, available: bool) -> None:
        self.available = available

    def begin_outage(self) -> None:
        self.available = False

    def end_outage(self) -> None:
        self.available = True

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Brownout: throttle the shared pool; in-flight transfers slow."""
        self.link.set_capacity(bandwidth_bps)

    def restore_bandwidth(self) -> None:
        self.link.set_capacity(self.nominal_bandwidth_bps)

    # -- admin -------------------------------------------------------------

    def create_bucket(self, name: str) -> Bucket:
        if name not in self._buckets:
            self._buckets[name] = Bucket(name)
        return self._buckets[name]

    def bucket(self, name: str) -> Bucket:
        bucket = self._buckets.get(name)
        if bucket is None:
            raise NoSuchBucketError(name)
        return bucket

    def issue_credentials(self, token: str,
                          buckets: Optional[List[str]] = None) -> Credentials:
        creds = Credentials(token, buckets or ["*"])
        self._credentials[token] = creds
        return creds

    def _authorize(self, token: Optional[str], bucket: str) -> None:
        if token is None:
            return  # unauthenticated deployments (tests) skip auth
        creds = self._credentials.get(token)
        if creds is None or not creds.allows(bucket):
            raise AccessDeniedError(f"token cannot access bucket {bucket!r}")

    # -- data path ------------------------------------------------------------

    def download(self, bucket_name: str, key: str,
                 token: Optional[str] = None) -> Event:
        """Stream an object; the event resolves with the StoredObject."""
        self._authorize(token, bucket_name)
        obj = self.bucket(bucket_name).get(key)
        self.downloads_started += 1

        def stream():
            yield self.env.timeout(self.request_latency_s)
            if not self.available:
                raise ObjectStorageUnavailableError(
                    f"object storage unavailable: GET {bucket_name}/{key}")
            yield self.link.transfer(obj.size_bytes)
            return obj

        return self.env.process(stream(), name=f"oss-get:{key}")

    def upload(self, bucket_name: str, key: str, size_bytes: float,
               payload: Any = None, token: Optional[str] = None) -> Event:
        """Stream an object in; the event resolves with the StoredObject."""
        self._authorize(token, bucket_name)
        bucket = self.bucket(bucket_name)
        self.uploads_started += 1

        def stream():
            yield self.env.timeout(self.request_latency_s)
            if not self.available:
                raise ObjectStorageUnavailableError(
                    f"object storage unavailable: PUT {bucket_name}/{key}")
            yield self.link.transfer(size_bytes)
            return bucket.put(key, size_bytes, payload)

        return self.env.process(stream(), name=f"oss-put:{key}")

    def list_objects(self, bucket_name: str, prefix: str = "",
                     token: Optional[str] = None) -> List[StoredObject]:
        self._authorize(token, bucket_name)
        return self.bucket(bucket_name).list(prefix)
