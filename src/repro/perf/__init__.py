"""Kernel performance layer: feature flag + deterministic profiler.

See DESIGN.md ("Performance fast paths") for the contract: every fast
path gated on :func:`optimizations_enabled` must be observably
identical to its reference implementation — only ops counters may
differ — and ``REPRO_PERF_DISABLE=1`` switches the reference
implementations back on for equivalence testing and baseline
measurement.
"""

from repro.perf.flags import DISABLE_ENV_VAR, optimizations_enabled
from repro.perf.profiler import KernelProfiler, profile

__all__ = [
    "DISABLE_ENV_VAR",
    "KernelProfiler",
    "optimizations_enabled",
    "profile",
]
