"""The kill switch for every kernel fast path.

``REPRO_PERF_DISABLE=1`` forces each optimized component back onto its
straightforward reference implementation: the etcd watch index degrades
to a linear watcher scan, the scheduler feasibility cache is bypassed,
and the kernel's callback-list pool is not used.  The two modes are
*observably identical* — same audit logs, same end states, same RNG
draws — which the equivalence suite (``tests/perf``) asserts; only the
ops counters (watchers visited, predicates evaluated) differ.

Components read the flag **once, at construction**, so a single Python
process can build an optimized environment, flip the variable, and
build a force-disabled one for an apples-to-apples comparison — that is
exactly what ``benchmarks/perf`` does to compute its reduction ratios.
"""

from __future__ import annotations

import os

#: Environment variable that force-disables the fast paths.
DISABLE_ENV_VAR = "REPRO_PERF_DISABLE"

_TRUTHY = ("1", "true", "yes", "on")


def optimizations_enabled() -> bool:
    """Whether the perf fast paths are active (the default)."""
    return os.environ.get(DISABLE_ENV_VAR, "").strip().lower() \
        not in _TRUTHY
