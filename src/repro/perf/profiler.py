"""Deterministic kernel profiler.

Attachable to one :class:`~repro.sim.core.Environment`, like the race
detector.  Everything it reports is a pure function of the simulated
schedule — event counts, per-site callback activity, heap statistics —
so two runs with the same seed produce byte-identical reports and the
numbers can be committed as regression baselines (``BENCH_*.json``).
No wall-clock ever enters a report; hosts measure wall time around the
whole run if they want it (see ``benchmarks/perf``).

When no profiler is attached the kernel pays a single attribute check
per event — the same zero-cost-when-off contract the race hooks follow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment, Event


def _site_of(callback: Callable) -> str:
    """A stable, low-cardinality label for one callback.

    Process resumptions are attributed to the process *family* (the
    name up to the first ``:``, so ``kubelet:node-3:pod-7`` groups
    under ``kubelet``); everything else falls back to the function's
    qualified name.  Never uses ``repr`` — object addresses would make
    reports non-deterministic.
    """
    bound_self = getattr(callback, "__self__", None)
    name = getattr(bound_self, "name", None)
    if isinstance(name, str):
        return f"process:{name.split(':', 1)[0]}"
    return getattr(callback, "__qualname__", type(callback).__name__)


class SiteStats:
    """Accumulated activity of one callback site."""

    __slots__ = ("calls", "events_spawned")

    def __init__(self) -> None:
        self.calls = 0
        self.events_spawned = 0


class KernelProfiler:
    """Counts what the kernel does, deterministically.

    Construction attaches the profiler (``env._profiler = self``); call
    :meth:`detach` to stop the bookkeeping and :meth:`report` for the
    accumulated numbers.  ``events_spawned`` per site is the number of
    events scheduled *while that site's callbacks ran* — a
    schedule-deterministic cost proxy that plays the role wall-clock
    self-time would in a conventional profiler.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self._base_scheduled = env.events_scheduled
        self._base_processed = env.events_processed
        self.peak_heap = env._pending
        self.event_types: Dict[str, int] = {}
        self.sites: Dict[str, SiteStats] = {}
        env._profiler = self

    def detach(self) -> None:
        if self.env._profiler is self:
            self.env._profiler = None

    # -- kernel hooks (called only while attached) ---------------------------

    def on_schedule(self, event: "Event") -> None:
        kind = type(event).__name__
        self.event_types[kind] = self.event_types.get(kind, 0) + 1
        # ``_pending`` (incremented just before this hook) counts
        # scheduled-but-unprocessed events in both queue modes; with
        # the timer wheel on, ``len(env._queue)`` would count buckets
        # and the report would no longer be mode-independent.
        depth = self.env._pending
        if depth > self.peak_heap:
            self.peak_heap = depth

    def on_callback(self, callback: Callable, spawned: int) -> None:
        site = self.sites.get(_site_of(callback))
        if site is None:
            site = self.sites[_site_of(callback)] = SiteStats()
        site.calls += 1
        site.events_spawned += spawned

    # -- reporting -----------------------------------------------------------

    def report(self) -> dict:
        """Deterministic counters, sorted for stable serialization."""
        return {
            "events_scheduled":
                self.env.events_scheduled - self._base_scheduled,
            "events_processed":
                self.env.events_processed - self._base_processed,
            "peak_heap": self.peak_heap,
            "event_types": dict(sorted(self.event_types.items())),
            "callback_sites": {
                name: {"calls": stats.calls,
                       "events_spawned": stats.events_spawned}
                for name, stats in sorted(self.sites.items())
            },
        }


def profile(env: "Environment") -> KernelProfiler:
    """Attach and return a :class:`KernelProfiler` for ``env``."""
    existing: Optional[KernelProfiler] = env._profiler
    if existing is not None:
        return existing
    return KernelProfiler(env)
