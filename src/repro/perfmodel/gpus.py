"""GPU and server hardware models.

The paper evaluates three PCIe GPU generations (K80, P100, V100) plus
NVIDIA's DGX-1 appliance (NVLink + High Bandwidth Memory, "2-3x additional
costs" and higher performance than off-the-shelf PCIe servers).  Relative
throughput factors are calibrated so the published tables come out of the
model (see :mod:`repro.perfmodel.throughput`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

K80 = "K80"
P100 = "P100"
V100 = "V100"

GPU_TYPES = (K80, P100, V100)


@dataclass(frozen=True)
class GpuSpec:
    """Relative compute capability of one GPU generation."""

    name: str
    #: Throughput multiplier relative to a K80 for convolutional training.
    relative_speed: float
    memory_gb: float
    release_year: int


GPU_SPECS: Dict[str, GpuSpec] = {
    K80: GpuSpec(K80, relative_speed=1.0, memory_gb=12, release_year=2014),
    P100: GpuSpec(P100, relative_speed=3.1, memory_gb=16, release_year=2016),
    V100: GpuSpec(V100, relative_speed=5.0, memory_gb=16, release_year=2017),
}


@dataclass(frozen=True)
class ServerSpec:
    """A server platform: interconnect quality scales multi-GPU efficiency."""

    name: str
    #: Extra per-GPU throughput factor vs the same GPU on a PCIe server
    #: (NVLink + HBM on DGX-1).
    platform_speedup: float
    #: Multi-GPU scaling exponent: throughput(n) = n**exponent per server.
    scaling_exponent: float


PCIE_SERVER = ServerSpec("pcie", platform_speedup=1.0,
                         scaling_exponent=0.92)
DGX1_SERVER = ServerSpec("dgx1", platform_speedup=1.10,
                         scaling_exponent=0.97)


def gpu_spec(name: str) -> GpuSpec:
    try:
        return GPU_SPECS[name]
    except KeyError:
        raise ValueError(f"unknown GPU type {name!r}") from None
