"""Deep-learning model/framework specifications.

Peak throughputs are calibrated on a V100 at CPU saturation so that the
published measurements fall out of the throughput model:

* Table 4 — VGG-16/Caffe, batch 75: ~66 img/s on 1xP100, ~107 img/s on
  1xV100, flat from 2 CPU threads (Caffe saturates almost immediately).
* Table 6 — TensorFlow on 1xV100, batch 128: InceptionV3 ~218->224 img/s
  from 16 to 28 threads (keeps scaling), ResNet-50 ~345 img/s and VGG-16
  ~216 img/s (already saturated at 16 threads).

``cpu_half_k`` is the half-saturation constant of the CPU-thread scaling
curve ``t / (t + k)``; ``dgx_speedup`` is the single-GPU advantage of
DGX-1's NVLink/HBM platform for this model (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

CAFFE = "caffe"
TENSORFLOW = "tensorflow"
PYTORCH = "pytorch"
FRAMEWORKS = (CAFFE, TENSORFLOW, PYTORCH)


@dataclass(frozen=True)
class ModelSpec:
    """One benchmark model on one framework."""

    name: str
    framework: str
    #: img/s on a single V100 with saturated CPU feeding.
    peak_v100_images_per_s: float
    #: CPU-thread half-saturation constant for t/(t+k) scaling.
    cpu_half_k: float
    #: Peak GPU utilization achievable (fraction).
    peak_gpu_utilization: float
    #: Single-GPU DGX-1 platform speedup vs a PCIe server.
    dgx_speedup: float
    #: Calibration batch size.
    default_batch_size: int
    #: Mean compressed training-sample size (bytes) for streaming demand.
    sample_bytes: float = 110_000.0


VGG16_CAFFE = ModelSpec("vgg16", CAFFE,
                        peak_v100_images_per_s=107.6, cpu_half_k=0.02,
                        peak_gpu_utilization=0.99, dgx_speedup=1.055,
                        default_batch_size=75)
VGG16_TF = ModelSpec("vgg16", TENSORFLOW,
                     peak_v100_images_per_s=216.2, cpu_half_k=0.01,
                     peak_gpu_utilization=0.988, dgx_speedup=1.055,
                     default_batch_size=128)
RESNET50_TF = ModelSpec("resnet50", TENSORFLOW,
                        peak_v100_images_per_s=346.4, cpu_half_k=0.05,
                        peak_gpu_utilization=0.94, dgx_speedup=1.045,
                        default_batch_size=128)
INCEPTIONV3_TF = ModelSpec("inceptionv3", TENSORFLOW,
                           peak_v100_images_per_s=231.8, cpu_half_k=1.03,
                           peak_gpu_utilization=0.92, dgx_speedup=1.01,
                           default_batch_size=128)
RESNET50_CAFFE = ModelSpec("resnet50", CAFFE,
                           peak_v100_images_per_s=330.0, cpu_half_k=0.05,
                           peak_gpu_utilization=0.94, dgx_speedup=1.045,
                           default_batch_size=64)
INCEPTIONV3_PYTORCH = ModelSpec("inceptionv3", PYTORCH,
                                peak_v100_images_per_s=228.0,
                                cpu_half_k=0.8,
                                peak_gpu_utilization=0.92, dgx_speedup=1.01,
                                default_batch_size=128)

MODEL_SPECS: Dict[Tuple[str, str], ModelSpec] = {
    (spec.name, spec.framework): spec
    for spec in (VGG16_CAFFE, VGG16_TF, RESNET50_TF, INCEPTIONV3_TF,
                 RESNET50_CAFFE, INCEPTIONV3_PYTORCH)
}


def model_spec(name: str, framework: str) -> ModelSpec:
    try:
        return MODEL_SPECS[(name, framework)]
    except KeyError:
        raise ValueError(
            f"no calibration for model {name!r} on {framework!r}") from None
