"""FfDL platform overhead model (Tables 1 and 2).

Section 5.1 attributes the (<= ~5%) throughput decrease of FfDL vs bare
metal to three sources: "(1) Docker (very low but nonzero) (2) network
virtualization and network security policies and (3) a driver to mount
Cloud Object Storage buckets ... onto Kubernetes pods".  Each component is
modelled separately so ablations can toggle them; the network component
grows with the job's distribution footprint (more learners / GPUs means
more synchronization traffic crossing the virtualized network).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.perfmodel.gpus import DGX1_SERVER, PCIE_SERVER
from repro.perfmodel.models import ModelSpec
from repro.perfmodel.throughput import images_per_sec


@dataclass(frozen=True)
class OverheadComponents:
    """Fractional throughput losses from each platform feature."""

    docker: float = 0.004
    network_virtualization_base: float = 0.004
    network_per_log2_footprint: float = 0.009
    storage_driver: float = 0.008
    #: Run-to-run measurement noise half-width (the published table is
    #: visibly noisy: 0.32%..5.35% without monotone structure).
    noise_half_width: float = 0.008

    def total(self, learners: int, gpus_per_learner: int,
              rng: random.Random = None) -> float:
        """Total fractional overhead for a job configuration."""
        if learners < 1 or gpus_per_learner < 1:
            raise ValueError("job configuration must be >= 1x1")
        footprint = learners * gpus_per_learner
        network = (self.network_virtualization_base +
                   self.network_per_log2_footprint * math.log2(footprint))
        overhead = self.docker + network + self.storage_driver
        if rng is not None:
            overhead += rng.uniform(-self.noise_half_width,
                                    self.noise_half_width)
        return min(max(overhead, 0.001), 0.08)


DEFAULT_OVERHEADS = OverheadComponents()


def ffdl_throughput(model: ModelSpec, gpu_type: str, cpu_threads: float,
                    learners: int = 1, gpus_per_learner: int = 1,
                    batch_size: int = 0,
                    overheads: OverheadComponents = DEFAULT_OVERHEADS,
                    rng: random.Random = None) -> float:
    """Aggregate images/s of a job executed on FfDL (PCIe cluster)."""
    from repro.perfmodel.throughput import distributed_images_per_sec

    bare = distributed_images_per_sec(model, gpu_type, learners,
                                      gpus_per_learner, cpu_threads,
                                      batch_size)
    return bare * (1.0 - overheads.total(learners, gpus_per_learner, rng))


def overhead_vs_bare_metal(model: ModelSpec, gpu_type: str,
                           cpu_threads: float, learners: int,
                           gpus_per_learner: int,
                           overheads: OverheadComponents = DEFAULT_OVERHEADS,
                           rng: random.Random = None) -> float:
    """Fractional throughput decrease of FfDL vs bare metal (Table 1)."""
    from repro.perfmodel.throughput import distributed_images_per_sec

    bare = distributed_images_per_sec(model, gpu_type, learners,
                                      gpus_per_learner, cpu_threads)
    ffdl = ffdl_throughput(model, gpu_type, cpu_threads, learners,
                           gpus_per_learner, overheads=overheads, rng=rng)
    return 1.0 - ffdl / bare


def overhead_vs_dgx1(model: ModelSpec, gpu_type: str, cpu_threads: float,
                     n_gpus: int,
                     overheads: OverheadComponents = DEFAULT_OVERHEADS,
                     rng: random.Random = None) -> float:
    """Fractional throughput decrease of FfDL-on-PCIe vs bare-metal DGX-1
    (Table 2)."""
    dgx = images_per_sec(model, gpu_type, cpu_threads, n_gpus,
                         server=DGX1_SERVER)
    pcie = images_per_sec(model, gpu_type, cpu_threads, n_gpus,
                          server=PCIE_SERVER)
    ffdl = pcie * (1.0 - overheads.total(1, n_gpus, rng))
    return 1.0 - ffdl / dgx
