"""Training-throughput model.

Throughput composes four calibrated factors:

    images/s = peak_V100(model)
               x relative_gpu_speed(gpu) / relative_gpu_speed(V100)
               x cpu_scaling(threads; model)
               x platform(server) x multi_gpu_scaling(n; server)
               x batch_ramp(batch)

Distributed (multi-learner) jobs additionally pay a synchronization
efficiency per learner over the 1GbE interconnect the paper's testbed used.
"""

from __future__ import annotations

from repro.perfmodel.gpus import (
    DGX1_SERVER,
    GPU_SPECS,
    PCIE_SERVER,
    ServerSpec,
    V100,
    gpu_spec,
)
from repro.perfmodel.models import ModelSpec

#: Multi-GPU scaling exponents (throughput ~ n**exponent within a server).
#: PCIe servers lose more to inter-GPU communication than NVLink DGX-1.
PCIE_SCALING_EXPONENT = 0.87
DGX1_SCALING_EXPONENT = 0.97

#: Per-learner synchronous-SGD efficiency over 1GbE (parameter exchange).
DISTRIBUTED_EFFICIENCY = 0.90


def cpu_scaling(threads: float, model: ModelSpec) -> float:
    """Fraction of peak throughput with ``threads`` CPU feeder threads."""
    if threads <= 0:
        raise ValueError("threads must be positive")
    return threads / (threads + model.cpu_half_k)


def batch_ramp(batch_size: int) -> float:
    """Small batches underutilize the GPU; ramps to ~1 by batch ~32."""
    if batch_size <= 0:
        raise ValueError("batch size must be positive")
    return batch_size / (batch_size + 2.0)


def _scaling_exponent(server: ServerSpec) -> float:
    return DGX1_SCALING_EXPONENT if server is DGX1_SERVER \
        else PCIE_SCALING_EXPONENT


def images_per_sec(model: ModelSpec, gpu_type: str, cpu_threads: float,
                   n_gpus: int = 1, batch_size: int = 0,
                   server: ServerSpec = PCIE_SERVER) -> float:
    """Single-learner training throughput (images/second)."""
    if n_gpus < 1:
        raise ValueError("n_gpus must be >= 1")
    batch = batch_size or model.default_batch_size
    gpu = gpu_spec(gpu_type)
    base = (model.peak_v100_images_per_s *
            gpu.relative_speed / GPU_SPECS[V100].relative_speed)
    platform = model.dgx_speedup if server is DGX1_SERVER else 1.0
    multi = n_gpus ** _scaling_exponent(server)
    ramp = batch_ramp(batch) / batch_ramp(model.default_batch_size)
    return base * cpu_scaling(cpu_threads, model) * platform * multi * ramp


def gpu_utilization(model: ModelSpec, cpu_threads: float) -> float:
    """Estimated GPU utilization fraction at this CPU allocation."""
    return model.peak_gpu_utilization * cpu_scaling(cpu_threads, model)


def distributed_images_per_sec(model: ModelSpec, gpu_type: str,
                               learners: int, gpus_per_learner: int,
                               cpu_threads: float, batch_size: int = 0,
                               server: ServerSpec = PCIE_SERVER) -> float:
    """Aggregate throughput of a synchronous multi-learner job."""
    if learners < 1:
        raise ValueError("learners must be >= 1")
    single = images_per_sec(model, gpu_type, cpu_threads, gpus_per_learner,
                            batch_size, server)
    if learners == 1:
        return single
    return single * learners * DISTRIBUTED_EFFICIENCY ** (learners - 1)


def iteration_time_s(model: ModelSpec, gpu_type: str, cpu_threads: float,
                     n_gpus: int = 1, batch_size: int = 0) -> float:
    """Seconds per training iteration (one batch per GPU group)."""
    batch = batch_size or model.default_batch_size
    return batch / images_per_sec(model, gpu_type, cpu_threads, n_gpus,
                                  batch)


def streaming_demand_bps(model: ModelSpec, gpu_type: str,
                         cpu_threads: float, n_gpus: int = 1,
                         batch_size: int = 0) -> float:
    """Bytes/second of training data the job consumes at full speed."""
    return (images_per_sec(model, gpu_type, cpu_threads, n_gpus, batch_size)
            * model.sample_bytes)


def saturation_threads(model: ModelSpec, target_fraction: float = 0.99,
                       max_threads: int = 64) -> int:
    """Fewest threads reaching ``target_fraction`` of peak (Table 5 input)."""
    for threads in range(1, max_threads + 1):
        if cpu_scaling(threads, model) >= target_fraction:
            return threads
    return max_threads
