"""From-scratch Raft consensus: the replication substrate under etcd."""

from repro.raft.cluster import RaftCluster
from repro.raft.messages import (
    AppendEntries,
    AppendEntriesReply,
    LogEntry,
    RequestVote,
    RequestVoteReply,
)
from repro.raft.network import Network
from repro.raft.node import (
    CANDIDATE,
    CallbackStateMachine,
    FOLLOWER,
    LEADER,
    RaftNode,
    StateMachine,
)

__all__ = [
    "AppendEntries",
    "AppendEntriesReply",
    "CANDIDATE",
    "CallbackStateMachine",
    "StateMachine",
    "FOLLOWER",
    "LEADER",
    "LogEntry",
    "Network",
    "RaftCluster",
    "RaftNode",
    "RequestVote",
    "RequestVoteReply",
]
