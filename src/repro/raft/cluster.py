"""Convenience wrapper wiring a full Raft group together.

:class:`RaftCluster` owns the network and the nodes, routes client proposals
to the current leader (retrying on leadership changes) and exposes fault
hooks (crash / restart / partition) used by the dependability experiments.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConsensusError, NotLeaderError
from repro.raft.network import Network
from repro.raft.node import RaftNode, StateMachine
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry


class RaftCluster:
    """A group of :class:`RaftNode` replicas plus client routing."""

    def __init__(
        self,
        env: Environment,
        rng: RngRegistry,
        state_machine_factory: Callable[[str], StateMachine],
        size: int = 3,
        name: str = "raft",
        election_timeout_s: tuple[float, float] = (0.15, 0.30),
        heartbeat_interval_s: float = 0.05,
    ):
        if size < 1:
            raise ConsensusError("cluster size must be >= 1")
        self.env = env
        self.name = name
        self.network = Network(env, rng)
        node_ids = [f"{name}-{i}" for i in range(size)]
        self.nodes: Dict[str, RaftNode] = {}
        for node_id in node_ids:
            self.nodes[node_id] = RaftNode(
                env, rng, self.network, node_id, node_ids,
                state_machine_factory(node_id),
                election_timeout_s=election_timeout_s,
                heartbeat_interval_s=heartbeat_interval_s)

    def attach_tracer(self, tracer: Any) -> None:
        """Install an invariant tracer (e.g. staticcheck's
        RaftInvariantChecker) on every node of the group."""
        for node in self.nodes.values():
            node.tracer = tracer

    # -- queries ---------------------------------------------------------------

    def leader(self) -> Optional[RaftNode]:
        """The unique live leader with the highest term, if any."""
        leaders = [n for n in self.nodes.values() if n.is_leader]
        if not leaders:
            return None
        return max(leaders, key=lambda n: n.current_term)

    def node_ids(self) -> List[str]:
        return list(self.nodes)

    # -- client operations -------------------------------------------------------

    def propose(self, command: Any, max_retries: int = 50,
                retry_delay_s: float = 0.05):
        """Process: submit ``command``, retrying across leader changes.

        Yields until the command is applied; returns the apply result.
        """

        def attempt():
            for _ in range(max_retries):
                leader = self.leader()
                if leader is None:
                    yield self.env.timeout(retry_delay_s)
                    continue
                try:
                    result = yield leader.propose(command)
                    return result
                except NotLeaderError:
                    yield self.env.timeout(retry_delay_s)
            raise ConsensusError(
                f"proposal not committed after {max_retries} retries")

        return self.env.process(attempt(), name=f"{self.name}:propose")

    def wait_for_leader(self, timeout_s: float = 10.0):
        """Process: wait until a leader exists; returns the leader node."""

        def wait():
            deadline = self.env.now + timeout_s
            while self.env.now < deadline:
                leader = self.leader()
                if leader is not None:
                    return leader
                yield self.env.timeout(0.02)
            raise ConsensusError("no leader elected within timeout")

        return self.env.process(wait(), name=f"{self.name}:wait-leader")

    # -- fault injection -----------------------------------------------------------

    def crash(self, node_id: str) -> None:
        self.nodes[node_id].crash()

    def restart(self, node_id: str) -> None:
        self.nodes[node_id].restart()

    def crash_leader(self) -> Optional[str]:
        """Crash the current leader (if any); returns its id."""
        leader = self.leader()
        if leader is None:
            return None
        leader.crash()
        return leader.node_id
