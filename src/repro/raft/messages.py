"""Raft RPC message types.

Plain dataclasses exchanged over the simulated :class:`~repro.raft.network.
Network`.  Field names follow the Raft paper (Ongaro & Ousterhout, 2014).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional


@dataclass(frozen=True)
class LogEntry:
    """One replicated log entry: the term it was created in and a command."""

    term: int
    command: Any


@dataclass
class RequestVote:
    term: int
    candidate_id: str
    last_log_index: int
    last_log_term: int


@dataclass
class RequestVoteReply:
    term: int
    voter_id: str
    vote_granted: bool


@dataclass
class AppendEntries:
    term: int
    leader_id: str
    prev_log_index: int
    prev_log_term: int
    entries: List[LogEntry] = field(default_factory=list)
    leader_commit: int = 0


@dataclass
class AppendEntriesReply:
    term: int
    follower_id: str
    success: bool
    #: Index of the last entry the follower now matches (on success), or a
    #: hint for where the leader should back up to (on failure).
    match_index: int = 0


@dataclass
class ClientProposal:
    """Internal: a command awaiting commitment, with its completion event."""

    index: int
    term: int
    done: Any = None  # Event, set by the node
    value: Optional[Any] = None
