"""Simulated message-passing network for Raft nodes.

Supports per-link latency, message drops, and named partitions, which the
tests use to drive the protocol through leader failures and healing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Set, Tuple

from repro.errors import SimulationError
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry

Handler = Callable[[str, Any], None]


class Network:
    """Delivers messages between registered endpoints with latency/faults."""

    def __init__(self, env: Environment, rng: RngRegistry,
                 base_latency_s: float = 0.002,
                 jitter_s: float = 0.001,
                 drop_probability: float = 0.0):
        self.env = env
        self.rng = rng.stream("raft-network")
        self.base_latency_s = base_latency_s
        self.jitter_s = jitter_s
        self.drop_probability = drop_probability
        self._handlers: Dict[str, Handler] = {}
        self._down: Set[str] = set()
        self._cut_links: Set[Tuple[str, str]] = set()
        self.messages_sent = 0
        self.messages_dropped = 0

    def register(self, node_id: str, handler: Handler) -> None:
        if node_id in self._handlers:
            raise SimulationError(f"duplicate endpoint {node_id!r}")
        self._handlers[node_id] = handler

    # -- fault control -------------------------------------------------------

    def take_down(self, node_id: str) -> None:
        """Isolate a node: all traffic to/from it is dropped."""
        self._down.add(node_id)

    def bring_up(self, node_id: str) -> None:
        self._down.discard(node_id)

    def cut(self, a: str, b: str) -> None:
        """Cut the bidirectional link between two nodes.

        A node's link to itself cannot be cut: local delivery never
        crosses the network, so ``cut(a, a)`` is a no-op (a node only
        loses self-reachability by going down entirely).
        """
        if a == b:
            return
        self._cut_links.add((a, b))
        self._cut_links.add((b, a))

    def heal(self, a: str, b: str) -> None:
        self._cut_links.discard((a, b))
        self._cut_links.discard((b, a))

    def partition(self, group_a: Set[str], group_b: Set[str]) -> None:
        """Cut every link crossing the two groups.

        A node listed in *both* groups keeps its self-link (local
        delivery) but loses its links to every other node in either
        group — the "flaky switch port" topology where one node is cut
        off from both sides.
        """
        for a in sorted(group_a):
            for b in sorted(group_b):
                self.cut(a, b)

    def heal_all(self) -> None:
        self._cut_links.clear()
        self._down.clear()

    def is_reachable(self, src: str, dst: str) -> bool:
        return (src not in self._down and dst not in self._down
                and (src, dst) not in self._cut_links)

    # -- delivery -------------------------------------------------------------

    def send(self, src: str, dst: str, message: Any) -> None:
        """Asynchronously deliver ``message`` from ``src`` to ``dst``."""
        self.messages_sent += 1
        if dst not in self._handlers:
            self.messages_dropped += 1
            return
        if not self.is_reachable(src, dst):
            self.messages_dropped += 1
            return
        if self.drop_probability and self.rng.random() < self.drop_probability:
            self.messages_dropped += 1
            return
        latency = self.base_latency_s + self.rng.random() * self.jitter_s

        def deliver():
            yield self.env.timeout(latency)
            # Re-check reachability at delivery time (partition may have
            # happened while the message was in flight).
            if self.is_reachable(src, dst):
                self._handlers[dst](src, message)
            else:
                self.messages_dropped += 1

        self.env.process(deliver(), name=f"net:{src}->{dst}")

    def endpoints(self) -> Set[str]:
        return set(self._handlers)
