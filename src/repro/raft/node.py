"""A Raft consensus node running on the simulation kernel.

Implements leader election, log replication and commitment per the Raft
paper.  Nodes exchange messages over :class:`repro.raft.network.Network`;
committed commands are applied in log order to a user-supplied ``apply_fn``
(the etcd key-value store in this repo).

Crash-stop failures are modelled with :meth:`crash` / :meth:`restart`:
persistent state (term, vote, log) survives; volatile state is rebuilt by
the protocol, exactly as with an on-disk Raft implementation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import NotLeaderError
from repro.raft.messages import (
    AppendEntries,
    AppendEntriesReply,
    LogEntry,
    RequestVote,
    RequestVoteReply,
)
from repro.raft.network import Network
from repro.sim.core import Environment, Event
from repro.sim.rng import RngRegistry

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


class StateMachine:
    """Interface for the replicated state machine driven by a Raft node.

    ``apply`` is called exactly once per committed index, in order.  ``reset``
    is called when a crashed node restarts: its volatile state machine is
    discarded and rebuilt by replaying the log from index 1.
    """

    def apply(self, index: int, command: Any) -> Any:  # pragma: no cover
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover
        raise NotImplementedError


class CallbackStateMachine(StateMachine):
    """Adapter turning plain callables into a :class:`StateMachine`."""

    def __init__(self, apply_fn: Callable[[int, Any], Any],
                 reset_fn: Optional[Callable[[], None]] = None):
        self._apply_fn = apply_fn
        self._reset_fn = reset_fn

    def apply(self, index: int, command: Any) -> Any:
        return self._apply_fn(index, command)

    def reset(self) -> None:
        if self._reset_fn is not None:
            self._reset_fn()


class RaftNode:
    """One member of a Raft group."""

    def __init__(
        self,
        env: Environment,
        rng: RngRegistry,
        network: Network,
        node_id: str,
        peer_ids: List[str],
        state_machine: StateMachine,
        election_timeout_s: tuple[float, float] = (0.15, 0.30),
        heartbeat_interval_s: float = 0.05,
    ):
        self.env = env
        self.rng = rng.stream(f"raft:{node_id}")
        self.network = network
        self.node_id = node_id
        self.peer_ids = [p for p in peer_ids if p != node_id]
        self.state_machine = state_machine
        self.election_timeout_s = election_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s

        # Persistent state (survives crash/restart).
        self.current_term = 0
        self.voted_for: Optional[str] = None
        self.log: List[LogEntry] = []  # log[i] has raft index i+1

        # Volatile state.
        self.state = FOLLOWER
        self.commit_index = 0
        self.last_applied = 0
        self.leader_hint: Optional[str] = None
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}
        self._votes: set[str] = set()
        self._crashed = False
        self._reset_event: Optional[Event] = None
        self._pending: Dict[int, Event] = {}  # raft index -> proposal event
        self.apply_results: Dict[int, Any] = {}
        #: Optional invariant tracer (e.g. staticcheck's
        #: RaftInvariantChecker): notified on elections and applies.
        self.tracer: Optional[Any] = None

        network.register(node_id, self._on_message)
        self._ticker = env.process(self._run(), name=f"raft:{node_id}")

    # -- public API ----------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.state == LEADER and not self._crashed

    @property
    def last_log_index(self) -> int:
        return len(self.log)

    @property
    def last_log_term(self) -> int:
        return self.log[-1].term if self.log else 0

    def propose(self, command: Any) -> Event:
        """Append a command (leader only); event fires once it is applied.

        The event's value is whatever ``apply_fn`` returned for the command.
        It fails with :class:`NotLeaderError` if leadership is lost before
        commitment.
        """
        done = self.env.event()
        if not self.is_leader:
            done.fail(NotLeaderError(self.node_id, self.leader_hint))
            return done
        self.log.append(LogEntry(self.current_term, command))
        index = self.last_log_index
        self._pending[index] = done
        self.match_index[self.node_id] = index
        self._broadcast_entries()
        self._maybe_advance_commit()
        return done

    def crash(self) -> None:
        """Crash-stop: drop volatile state and go silent."""
        self._crashed = True
        self.network.take_down(self.node_id)
        self._fail_pending(NotLeaderError(self.node_id))
        self.state = FOLLOWER
        self._votes.clear()

    def restart(self) -> None:
        """Recover with persistent state intact."""
        if not self._crashed:
            return
        self._crashed = False
        self.commit_index = 0
        self.last_applied = 0
        self.apply_results.clear()
        self.state_machine.reset()
        self.leader_hint = None
        self.network.bring_up(self.node_id)
        self._become_follower(self.current_term)

    # -- state transitions -----------------------------------------------------

    def _become_follower(self, term: int) -> None:
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
        if self.state == LEADER:
            self._fail_pending(NotLeaderError(self.node_id))
        self.state = FOLLOWER
        self._votes.clear()
        self._kick_timer()

    def _become_candidate(self) -> None:
        self.state = CANDIDATE
        self.current_term += 1
        self.voted_for = self.node_id
        self._votes = {self.node_id}
        self.leader_hint = None
        request = RequestVote(self.current_term, self.node_id,
                              self.last_log_index, self.last_log_term)
        for peer in self.peer_ids:
            self.network.send(self.node_id, peer, request)
        if self._has_majority(len(self._votes)):  # single-node group
            self._become_leader()

    def _become_leader(self) -> None:
        self.state = LEADER
        self.leader_hint = self.node_id
        for peer in self.peer_ids:
            self.next_index[peer] = self.last_log_index + 1
            self.match_index[peer] = 0
        self.match_index[self.node_id] = self.last_log_index
        if self.tracer is not None:
            self.tracer.on_leader_elected(self)
        self._broadcast_entries()
        self._kick_timer()

    def _has_majority(self, count: int) -> bool:
        cluster_size = len(self.peer_ids) + 1
        return count * 2 > cluster_size

    # -- timers ----------------------------------------------------------------

    def _election_timeout(self) -> float:
        lo, hi = self.election_timeout_s
        return lo + (hi - lo) * self.rng.random()

    def _kick_timer(self) -> None:
        if self._reset_event is not None and not self._reset_event.triggered:
            self._reset_event.succeed()

    def _run(self):
        while True:
            if self._crashed:
                self._reset_event = self.env.event()
                yield self._reset_event
                continue
            if self.state == LEADER:
                self._broadcast_entries()
                self._reset_event = self.env.event()
                yield self.env.any_of([
                    self.env.timeout(self.heartbeat_interval_s),
                    self._reset_event,
                ])
                continue
            # Follower / candidate: wait for a heartbeat or start an election.
            self._reset_event = self.env.event()
            timer = self.env.timeout(self._election_timeout())
            yield self.env.any_of([timer, self._reset_event])
            if self._crashed or self._reset_event.triggered:
                continue
            self._become_candidate()

    # -- message handling --------------------------------------------------------

    def _on_message(self, src: str, msg: Any) -> None:
        if self._crashed:
            return
        term = getattr(msg, "term", 0)
        if term > self.current_term:
            self._become_follower(term)
        if isinstance(msg, RequestVote):
            self._on_request_vote(src, msg)
        elif isinstance(msg, RequestVoteReply):
            self._on_vote_reply(msg)
        elif isinstance(msg, AppendEntries):
            self._on_append_entries(src, msg)
        elif isinstance(msg, AppendEntriesReply):
            self._on_append_reply(msg)

    def _on_request_vote(self, src: str, msg: RequestVote) -> None:
        grant = False
        if msg.term >= self.current_term:
            log_ok = (msg.last_log_term, msg.last_log_index) >= \
                (self.last_log_term, self.last_log_index)
            if log_ok and self.voted_for in (None, msg.candidate_id):
                grant = True
                self.voted_for = msg.candidate_id
                self._kick_timer()
        self.network.send(self.node_id, src,
                          RequestVoteReply(self.current_term, self.node_id,
                                           grant))

    def _on_vote_reply(self, msg: RequestVoteReply) -> None:
        if self.state != CANDIDATE or msg.term != self.current_term:
            return
        if msg.vote_granted:
            self._votes.add(msg.voter_id)
            if self._has_majority(len(self._votes)):
                self._become_leader()

    def _on_append_entries(self, src: str, msg: AppendEntries) -> None:
        if msg.term < self.current_term:
            self.network.send(self.node_id, src, AppendEntriesReply(
                self.current_term, self.node_id, False, 0))
            return
        # Valid leader for this term.
        if self.state != FOLLOWER:
            self._become_follower(msg.term)
        self.leader_hint = msg.leader_id
        self._kick_timer()
        # Consistency check on the previous entry.
        if msg.prev_log_index > self.last_log_index or (
                msg.prev_log_index > 0 and
                self.log[msg.prev_log_index - 1].term != msg.prev_log_term):
            hint = min(msg.prev_log_index, self.last_log_index)
            self.network.send(self.node_id, src, AppendEntriesReply(
                self.current_term, self.node_id, False, hint))
            return
        # Append / overwrite entries.
        insert_at = msg.prev_log_index
        for i, entry in enumerate(msg.entries):
            idx = insert_at + i  # zero-based position in self.log
            if idx < len(self.log):
                if self.log[idx].term != entry.term:
                    del self.log[idx:]
                    self.log.append(entry)
            else:
                self.log.append(entry)
        match = msg.prev_log_index + len(msg.entries)
        if msg.leader_commit > self.commit_index:
            self.commit_index = min(msg.leader_commit, self.last_log_index)
            self._apply_committed()
        self.network.send(self.node_id, src, AppendEntriesReply(
            self.current_term, self.node_id, True, match))

    def _on_append_reply(self, msg: AppendEntriesReply) -> None:
        if self.state != LEADER or msg.term != self.current_term:
            return
        peer = msg.follower_id
        if msg.success:
            self.match_index[peer] = max(
                self.match_index.get(peer, 0), msg.match_index)
            self.next_index[peer] = self.match_index[peer] + 1
            self._maybe_advance_commit()
        else:
            # Back up and retry immediately.
            self.next_index[peer] = max(1, min(
                self.next_index.get(peer, 1) - 1,
                msg.match_index + 1))
            self._send_entries(peer)

    # -- replication helpers --------------------------------------------------

    def _send_entries(self, peer: str) -> None:
        next_idx = self.next_index.get(peer, self.last_log_index + 1)
        prev_idx = next_idx - 1
        prev_term = self.log[prev_idx - 1].term if prev_idx > 0 else 0
        entries = self.log[next_idx - 1:]
        self.network.send(self.node_id, peer, AppendEntries(
            self.current_term, self.node_id, prev_idx, prev_term,
            list(entries), self.commit_index))

    def _broadcast_entries(self) -> None:
        for peer in self.peer_ids:
            self._send_entries(peer)

    def _maybe_advance_commit(self) -> None:
        for idx in range(self.last_log_index, self.commit_index, -1):
            if self.log[idx - 1].term != self.current_term:
                continue  # only commit entries from the current term directly
            votes = sum(1 for p in [self.node_id] + self.peer_ids
                        if self.match_index.get(p, 0) >= idx)
            if self._has_majority(votes):
                self.commit_index = idx
                self._apply_committed()
                break

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log[self.last_applied - 1]
            result = self.state_machine.apply(self.last_applied,
                                              entry.command)
            self.apply_results[self.last_applied] = result
            if self.tracer is not None:
                self.tracer.on_apply(self, self.last_applied, entry)
            pending = self._pending.pop(self.last_applied, None)
            if pending is not None and not pending.triggered:
                if entry.term == self.current_term and self.state == LEADER:
                    pending.succeed(result)
                else:
                    pending.fail(NotLeaderError(self.node_id,
                                                self.leader_hint))

    def _fail_pending(self, error: Exception) -> None:
        for event in self._pending.values():
            if not event.triggered:
                event.fail(error)
        self._pending.clear()
