"""Client-side resilience: retries, deadlines, breakers, write-behind.

The paper's dependability story (Section 5.6, Table 3) assumes that every
FfDL component keeps retrying its backends across etcd leader elections,
MongoDB primary failovers and object-store brownouts.  This package is the
shared vocabulary those clients use:

* :class:`RetryPolicy` — bounded exponential backoff whose jitter is drawn
  from a named :class:`~repro.sim.rng.RngRegistry` stream, so retried
  schedules replay deterministically (DET002 stays clean).
* :class:`Deadline` — a per-call budget in simulated time.
* :class:`CircuitBreaker` — fail-fast once a backend is clearly down, with
  half-open probing on a reset timeout.
* :func:`retry_call` / :func:`retrying_process` — the retry loop itself,
  written as a *bounded* ``for``-loop over attempts (the shape SAF003
  enforces for the whole tree).
* :class:`BufferedJobWriter` — write-behind buffering of MongoDB job
  records so the platform degrades gracefully instead of losing status
  updates while the store is down.
"""

from repro.resilience.buffer import BufferedJobWriter
from repro.resilience.policy import (
    TRANSIENT_ERRORS,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    retry_call,
    retrying_process,
)

__all__ = [
    "BufferedJobWriter",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "TRANSIENT_ERRORS",
    "retry_call",
    "retrying_process",
]
