"""Write-behind buffering of MongoDB job records (graceful degradation).

The paper's API layer "stores all the metadata in MongoDB before
acknowledging the request"; its dependability companion paper adds that
status updates must survive store outages.  :class:`BufferedJobWriter`
reconciles the two under failure: every job-record write is enqueued
here, a single drain process applies them **in order** through the
(retrying, breaker-guarded) Mongo client, and writes that cannot be
applied stay queued — never dropped — until the store recovers.  While
the queue is blocked the platform is *degraded*: submissions are
acknowledged from memory and flushed later, which is the documented
deviation that keeps jobs flowing through an outage with zero lost
records.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.errors import DuplicateKeyError, SimulationError, StoreError
from repro.resilience.policy import RetryPolicy, TRANSIENT_ERRORS
from repro.sim.core import Environment, Event


class _PendingWrite:
    """One queued operation plus the event its enqueuer may wait on."""

    __slots__ = ("op", "collection", "args", "done", "enqueued_at")

    def __init__(self, env: Environment, op: str, collection: str, args):
        self.op = op
        self.collection = collection
        self.args = args
        self.done = env.event()
        self.enqueued_at = env.now


class BufferedJobWriter:
    """Ordered, never-dropping write-behind queue over a Mongo client."""

    def __init__(self, env: Environment, client,
                 policy: Optional[RetryPolicy] = None,
                 stream: Optional[random.Random] = None,
                 cooldown_s: float = 1.0):
        self.env = env
        self.client = client
        self.policy = policy or RetryPolicy(max_attempts=3,
                                            base_delay_s=0.1,
                                            max_delay_s=1.0)
        self.stream = stream
        self.cooldown_s = cooldown_s
        self._queue: Deque[_PendingWrite] = deque()
        self._wake = env.event()
        self._degraded_event = env.event()
        self.total_enqueued = 0
        self.total_flushed = 0
        self.write_errors = 0
        #: Inserts whose ``_id`` was already durable (idempotent retries
        #: of an already-applied write — suppressed, not errors).
        self.duplicates_suppressed = 0
        self.peak_pending = 0
        self._closed = False
        self._drain_waiters: List[Event] = []
        self.degraded_since: Optional[float] = None
        #: Closed degradation windows: (entered, recovered).
        self.degraded_periods: List[Tuple[float, float]] = []
        self._runner = env.process(self._drain(), name="job-writer")

    # -- enqueue API --------------------------------------------------------

    def insert(self, collection: str, document: dict) -> Event:
        return self._enqueue("insert", collection, (document,))

    def update(self, collection: str, query: dict, update: dict,
               upsert: bool = False) -> Event:
        return self._enqueue("update", collection, (query, update, upsert))

    def _enqueue(self, op: str, collection: str, args) -> Event:
        if self._closed:
            raise SimulationError(
                "BufferedJobWriter is closed; no further writes accepted")
        item = _PendingWrite(self.env, op, collection, args)
        self._queue.append(item)
        self.total_enqueued += 1
        self.peak_pending = max(self.peak_pending, len(self._queue))
        if not self._wake.triggered:
            self._wake.succeed()
        return item.done

    # -- state --------------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def degraded(self) -> bool:
        return self.degraded_since is not None

    @property
    def closed(self) -> bool:
        return self._closed

    def drained_event(self) -> Event:
        """Event firing when the queue next becomes empty (immediately if
        it is empty now).  Writes buffered through an outage are flushed
        first — drain waits for the store to recover rather than dropping
        anything."""
        done = self.env.event()
        if not self._queue:
            done.succeed()
        else:
            self._drain_waiters.append(done)
        return done

    def close(self) -> Event:
        """Shutdown: reject further enqueues, keep flushing what is
        queued, and return the drain event.  The documented shutdown
        contract — nothing buffered is ever dropped."""
        self._closed = True
        return self.drained_event()

    def pending_ids(self, collection: str) -> List[str]:
        """``_id`` values of queued writes against ``collection`` —
        records that are buffered (not lost) but not yet durable."""
        ids = []
        for write in self._queue:
            target = write.args[0]
            record_id = target.get("_id")
            if write.collection == collection and record_id is not None:
                ids.append(record_id)
        return ids

    def degraded_event(self) -> Event:
        """Event firing when the writer next enters degraded mode (or
        immediately, if it is degraded now).  Submission paths race this
        against their write's durability so an outage never blocks the
        acknowledgement path."""
        if self.degraded and not self._degraded_event.triggered:
            self._degraded_event.succeed()
        return self._degraded_event

    def _enter_degraded(self) -> None:
        if self.degraded_since is None:
            self.degraded_since = self.env.now
        if not self._degraded_event.triggered:
            self._degraded_event.succeed()

    def _leave_degraded(self) -> None:
        if self.degraded_since is not None:
            self.degraded_periods.append((self.degraded_since,
                                          self.env.now))
            self.degraded_since = None
            if self._degraded_event.triggered:
                self._degraded_event = self.env.event()

    # -- drain loop ---------------------------------------------------------

    def _drain(self):
        while True:
            if not self._queue:
                self._wake = self.env.event()
                yield self._wake
                continue
            head = self._queue[0]
            outcome = yield from self._flush_one(head)
            if outcome == "transient":
                # Head-of-line stays queued: ordering (insert before its
                # updates) is what makes recovery lossless.
                self._enter_degraded()
                yield self.env.timeout(self.cooldown_s)
                continue
            self._leave_degraded()
            self._queue.popleft()
            if outcome == "flushed":
                self.total_flushed += 1
                if not head.done.triggered:
                    head.done.succeed()
            elif outcome == "duplicate":
                # The record is already durable (an idempotent re-insert
                # after a retry): suppressed, and the enqueuer sees the
                # same success it would have seen the first time.
                self.duplicates_suppressed += 1
                if not head.done.triggered:
                    head.done.succeed()
            else:  # semantic store error: a bug upstream, not an outage
                self.write_errors += 1
                if not head.done.triggered:
                    head.done.succeed(None)
            if not self._queue:
                waiters, self._drain_waiters = self._drain_waiters, []
                for waiter in waiters:
                    if not waiter.triggered:
                        waiter.succeed()

    def _flush_one(self, item: _PendingWrite):
        """Bounded attempt run for one write.

        Returns ``"flushed"`` when durable, ``"transient"`` when the
        store is unreachable (the item must stay queued),
        ``"duplicate"`` when an insert's ``_id`` is already durable (an
        idempotent retry of an applied write — the property the
        federation dispatcher's intent log relies on), ``"error"`` when
        the store rejected the write semantically (bad update) —
        retrying such a write would wedge the queue.
        """
        for attempt in range(self.policy.max_attempts):
            try:
                yield self._issue(item)
            except DuplicateKeyError:
                if item.op == "insert":
                    return "duplicate"
                return "error"
            except TRANSIENT_ERRORS:
                if attempt + 1 >= self.policy.max_attempts:
                    return "transient"
                yield self.env.timeout(
                    self.policy.backoff_s(attempt, self.stream))
                continue
            except StoreError:
                return "error"
            return "flushed"
        return "transient"

    def _issue(self, item: _PendingWrite) -> Event:
        if item.op == "insert":
            (document,) = item.args
            return self.client.insert_one(item.collection, document)
        query, update, upsert = item.args
        return self.client.update_one(item.collection, query, update,
                                      upsert=upsert)
