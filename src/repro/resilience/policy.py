"""Retry policies, deadlines and circuit breakers for backend clients.

Everything here runs on simulated time: backoff sleeps are
``env.timeout`` events and deadlines compare against ``env.now``, so a
month of retries replays in milliseconds and two runs with the same seed
produce byte-identical schedules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.errors import (
    CircuitOpenError,
    ConsensusError,
    DeadlineExceededError,
    ObjectStorageUnavailableError,
    ResilienceError,
    RetryExhaustedError,
    SimulationError,
    StoreUnavailableError,
)
from repro.sim.core import Environment, Event

#: The errors every layer agrees are transient: worth retrying, worth
#: buffering behind, never worth surfacing as a semantic failure.
TRANSIENT_ERRORS: Tuple[type, ...] = (
    StoreUnavailableError,
    ObjectStorageUnavailableError,
    ConsensusError,
    ResilienceError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with (optional) full jitter.

    ``backoff_s(attempt, stream)`` returns the sleep after failed attempt
    number ``attempt`` (0-based): ``base * multiplier**attempt`` capped at
    ``max_delay_s``, scaled by a uniform draw from ``stream`` when
    ``jitter`` is on (AWS-style "full jitter", which decorrelates the
    retry storms of many clients hitting the same dead backend).
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")

    def backoff_s(self, attempt: int, stream: Optional[random.Random]
                  ) -> float:
        delay = min(self.max_delay_s,
                    self.base_delay_s * self.multiplier ** attempt)
        if self.jitter:
            if stream is None:
                raise SimulationError(
                    "jittered RetryPolicy needs an RngRegistry stream")
            delay *= stream.random()
        return delay


class Deadline:
    """A fixed point in simulated time that a call must not outlive."""

    def __init__(self, env: Environment, timeout_s: float):
        if timeout_s < 0:
            raise ValueError("deadline timeout must be non-negative")
        self.env = env
        self.timeout_s = timeout_s
        self.expires_at = env.now + timeout_s

    @property
    def remaining_s(self) -> float:
        return max(0.0, self.expires_at - self.env.now)

    @property
    def expired(self) -> bool:
        return self.env.now >= self.expires_at


#: CircuitBreaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic three-state breaker driven by simulated time.

    CLOSED counts consecutive failures; at ``failure_threshold`` it trips
    OPEN and :meth:`allow` rejects calls for ``reset_timeout_s``.  The
    first allowance after the reset window is a HALF_OPEN probe: success
    closes the breaker, failure re-opens it for another window.
    """

    def __init__(self, env: Environment, failure_threshold: int = 5,
                 reset_timeout_s: float = 10.0, name: str = "breaker"):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        self.env = env
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._probe_in_flight = False
        #: (time, from_state, to_state) — for the chaos audit log.
        self.transitions: list = []

    def _move(self, to_state: str) -> None:
        if to_state != self.state:
            self.transitions.append((self.env.now, self.state, to_state))
            self.state = to_state

    def allow(self) -> bool:
        """May a call proceed right now?  (HALF_OPEN admits one probe.)"""
        if self.state == OPEN:
            if self.opened_at is not None and \
                    self.env.now >= self.opened_at + self.reset_timeout_s:
                self._move(HALF_OPEN)
                self._probe_in_flight = False
            else:
                return False
        if self.state == HALF_OPEN:
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probe_in_flight = False
        self._move(CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or \
                self.consecutive_failures >= self.failure_threshold:
            self._move(OPEN)
            self.opened_at = self.env.now
            self._probe_in_flight = False


def retry_call(env: Environment,
               stream: Optional[random.Random],
               make_attempt: Callable[[], object],
               policy: RetryPolicy,
               retry_on: Tuple[type, ...] = TRANSIENT_ERRORS,
               breaker: Optional[CircuitBreaker] = None,
               deadline: Optional[Deadline] = None,
               on_retry: Optional[Callable[[int, BaseException], None]]
               = None):
    """Generator: run ``make_attempt`` under ``policy``; ``yield from`` it.

    ``make_attempt`` is called once per attempt; if it returns an
    :class:`Event` the attempt's outcome is the event's outcome,
    otherwise its return value (or synchronous raise) is the outcome.
    Only ``retry_on`` exceptions are retried; everything else propagates
    on the first attempt.  Raises :class:`RetryExhaustedError` when the
    budget runs out, :class:`CircuitOpenError` when the breaker rejects
    the call and :class:`DeadlineExceededError` when the deadline passes
    between attempts.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        if deadline is not None and deadline.expired:
            raise DeadlineExceededError(
                f"deadline of {deadline.timeout_s}s exceeded after "
                f"{attempt} attempt(s)") from last_error
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(
                f"circuit {breaker.name!r} is {breaker.state}"
            ) from last_error
        try:
            result = make_attempt()
            if isinstance(result, Event):
                result = yield result
        except retry_on as err:
            if breaker is not None:
                breaker.record_failure()
            last_error = err
            if attempt + 1 >= policy.max_attempts:
                break
            if on_retry is not None:
                on_retry(attempt, err)
            delay = policy.backoff_s(attempt, stream)
            if deadline is not None:
                delay = min(delay, deadline.remaining_s)
            yield env.timeout(delay)
            continue
        if breaker is not None:
            breaker.record_success()
        return result
    raise RetryExhaustedError(
        f"call failed after {policy.max_attempts} attempt(s): "
        f"{last_error!r}") from last_error


def retrying_process(env: Environment, stream, make_attempt, policy,
                     retry_on: Tuple[type, ...] = TRANSIENT_ERRORS,
                     breaker: Optional[CircuitBreaker] = None,
                     deadline: Optional[Deadline] = None,
                     on_retry=None, name: str = "retrying") -> Event:
    """:func:`retry_call` wrapped as a standalone simulation process."""
    return env.process(
        retry_call(env, stream, make_attempt, policy, retry_on=retry_on,
                   breaker=breaker, deadline=deadline, on_retry=on_retry),
        name=name)
