"""Discrete-event simulation kernel used by every substrate in the repo."""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.failure import FaultEvent, FaultInjector, FaultSpec
from repro.sim.mailbox import Mailbox
from repro.sim.race import (
    RaceDetector,
    RaceError,
    RaceReport,
    note_read,
    note_write,
)
from repro.sim.resources import FairShareLink, Resource, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "FairShareLink",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "Interrupt",
    "Mailbox",
    "Process",
    "RaceDetector",
    "RaceError",
    "RaceReport",
    "Resource",
    "RngRegistry",
    "Store",
    "Timeout",
    "note_read",
    "note_write",
]
