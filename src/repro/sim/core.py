"""Discrete-event simulation kernel.

All substrates (Raft, etcd, Kubernetes, object storage) and the FfDL control
plane run as cooperating processes on this kernel, so month-long cluster
experiments replay deterministically in seconds of wall-clock time.

The API is deliberately close to SimPy's: an :class:`Environment` owns a
priority queue of events; a :class:`Process` wraps a generator that yields
events (:class:`Timeout`, other processes, :class:`AnyOf`, ...) and is resumed
when they fire.  Processes can be interrupted, which is how crash injection
is modelled.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.perf.flags import optimizations_enabled

#: Sentinel priority classes: urgent events (process resumption) fire before
#: normal events scheduled at the same timestamp; observer events fire after
#: every urgent/normal event of the same timestamp has settled, so pollers
#: that sample state (rather than drive it) observe a tick's final state
#: regardless of tie-breaking.
URGENT = 0
NORMAL = 1
OBSERVER = 2


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks (usually processes) wait on."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered",
                 "_scheduled", "_processed", "_clock")

    def __init__(self, env: "Environment"):
        self.env = env
        # Callback lists are the kernel's highest-frequency allocation;
        # recycle processed events' (cleared) lists through a small
        # per-environment pool instead of allocating fresh ones.
        pool = env._cb_pool
        self.callbacks: list[Callable[["Event"], None]] = \
            pool.pop() if pool else []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._scheduled = False
        self._processed = False
        #: ``(epoch, VectorClock)`` snapshot stamped at trigger time when
        #: a :class:`repro.sim.race.RaceDetector` is attached; else None.
        self._clock = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its callbacks."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule_event(self, URGENT, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event failed; waiters will see the exception raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule_event(self, URGENT, 0.0)
        return self


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    ``priority`` defaults to :data:`NORMAL`; pass :data:`OBSERVER` for
    polling loops that must observe a timestamp's settled state.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 priority: int = NORMAL):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule_event(self, priority, delay)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev._processed:
                self._on_fire(ev)
            else:
                ev.callbacks.append(self._on_fire)

    def _on_fire(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._n_fired += 1
        if self._done():
            self.succeed(self._collect())

    def _done(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        return {ev: ev.value for ev in self.events if ev.triggered and ev.ok}


class AnyOf(_Condition):
    """Fires when any constituent event fires."""

    __slots__ = ()

    def _done(self) -> bool:
        return self._n_fired >= 1


class AllOf(_Condition):
    """Fires when all constituent events have fired."""

    __slots__ = ()

    def _done(self) -> bool:
        return self._n_fired == len(self.events)


class Process(Event):
    """Drives a generator; the process *is* an event firing at termination."""

    __slots__ = ("generator", "name", "pid", "_target", "_interrupts")

    def __init__(self, env: "Environment", generator: Generator,
                 name: str = "process"):
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name
        self.pid = next(env._pids)
        self._target: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        self._interrupts.append(Interrupt(cause))
        # Detach from whatever it was waiting on and resume immediately.
        wake = Event(self.env)
        wake.callbacks.append(self._resume)
        wake.succeed()

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        if self._target is not None and event is not self._target \
                and not self._interrupts:
            # Stale wakeup (e.g. the event we abandoned on interrupt fires).
            return
        if self.env.race_detector is not None:
            # Receive edge: the waker's clock happened-before this run.
            self.env.race_detector.on_receive(self, event)
        self.env._active_process = self
        try:
            while True:
                if self._interrupts:
                    exc: BaseException = self._interrupts.pop(0)
                    self._target = None
                    target = self.generator.throw(exc)
                elif event is not None and not event.ok:
                    err = event.value
                    event = None
                    self._target = None
                    target = self.generator.throw(err)
                else:
                    value = event.value if event is not None else None
                    event = None
                    self._target = None
                    target = self.generator.send(value)
                if not isinstance(target, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}")
                if target._processed:
                    # Callbacks already ran: loop immediately with its value.
                    event = target
                    continue
                self._target = target
                target.callbacks.append(self._resume)
                return
        except StopIteration as stop:
            self.succeed(stop.value)
        except Interrupt as intr:  # staticcheck: ignore[SAF001] kernel edge
            # Interrupt escaped the generator: treat as normal termination.
            # This is the one place an Interrupt may stop propagating — the
            # process it targeted no longer exists past this point.
            self.succeed(intr.cause)
        except BaseException as err:  # noqa: BLE001 - propagate via event
            if self.callbacks or True:
                self.fail(err)
        finally:
            self.env._active_process = None


class Environment:
    """The event queue and simulated clock.

    **Ordering contract**: events fire in ascending ``(time, priority,
    seq)`` order, where ``seq`` is a per-environment monotone counter
    assigned at scheduling time.  Nothing beyond that triple orders the
    queue — in particular, callers must never rely on object identity
    or hash order.  The ``seq`` component exists to make same-``(time,
    priority)`` ties *explicit and auditable*: with the default
    ``tiebreak_seed=0`` ties break in scheduling order (FIFO), and any
    other seed pushes ``seq`` through a seeded bijective mixer
    (xor-salt, odd multiply, xorshift — each step invertible on the
    61-bit ring) so that a perturbed run explores a different — but
    equally legal — interleaving of every tie.  A simulation whose
    observable results change under a perturbed seed depends on
    tie-breaking, which is a modelling bug; ``repro.chaos`` uses
    exactly this to assert schedule-independence (see ``--perturb``).

    **Timer wheel (flag-gated fast path).**  Settle-then-drain patterns
    (the federation bus, barrier rounds, submission bursts) schedule
    hundreds of events at the *same* ``(time, priority)`` instant, so
    the main heap degenerates into K pushes of log N for one burst.
    The optimized queue is a *heap of buckets*: the outer heap holds
    one entry per distinct ``(time, priority)`` key, and each bucket
    is an inner heap of ``(seq, event)`` pairs.  A burst of K
    same-instant events costs one outer push plus K cheap inner pushes
    over a K-sized bucket.  Ordering is unchanged: the outer heap
    yields the minimal ``(time, priority)`` and the bucket heap yields
    its minimal ``seq`` — together exactly the global ``(time,
    priority, seq)`` order, mixer included (permuted ``seq`` values
    land in the same bucket and the inner heap sorts them).
    ``heap_pushes`` counts outer-heap pushes — the BENCH_kernel metric
    the wheel shrinks; under ``REPRO_PERF_DISABLE`` every event is its
    own outer entry and ``heap_pushes == events_scheduled``.
    """

    #: Permuted sequence numbers live in [0, 2**61).
    _SEQ_MODULUS = 2 ** 61
    _SEQ_MASK = _SEQ_MODULUS - 1

    #: Recycled callback lists kept per environment (see Event.__init__).
    _CB_POOL_CAP = 512

    def __init__(self, initial_time: float = 0.0,
                 tiebreak_seed: int = 0):
        if tiebreak_seed < 0:
            raise SimulationError("tiebreak_seed must be >= 0")
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None
        self.tiebreak_seed = tiebreak_seed
        self._seq_salt = (tiebreak_seed * 0x9E3779B97F4A7C15) \
            & self._SEQ_MASK
        #: With the default seed the mixer is the identity; skip the
        #: call entirely on the scheduling hot path.
        self._seq_identity = tiebreak_seed == 0
        self._pids = itertools.count(1)
        #: Attached repro.sim.race.RaceDetector, or None (the fast path).
        self.race_detector = None
        #: Attached repro.perf.profiler.KernelProfiler, or None.
        self._profiler = None
        #: Kernel ops counters: always on (two integer increments per
        #: event), deterministic, and the basis of BENCH_kernel.json.
        self.events_scheduled = 0
        self.events_processed = 0
        #: Outer-heap pushes; with the timer wheel on, same-instant
        #: bursts share one outer entry so this falls below
        #: ``events_scheduled``.
        self.heap_pushes = 0
        #: Scheduled-but-not-yet-processed events.  With the wheel on,
        #: ``len(_queue)`` counts buckets, so the profiler's peak-heap
        #: statistic reads this mode-independent counter instead.
        self._pending = 0
        #: (time, priority) -> bucket (inner heap of (seq, event));
        #: None when REPRO_PERF_DISABLE is set (plain one-event-per-
        #: entry heap).
        self._buckets: Optional[dict] = \
            {} if optimizations_enabled() else None
        #: Callback-list free pool; None when REPRO_PERF_DISABLE is set
        #: (Event.__init__ then always allocates fresh lists).
        self._cb_pool: Optional[list] = \
            [] if optimizations_enabled() else None
        #: label -> substrate; see :meth:`register_shared_store`.
        self.shared_stores: dict[str, object] = {}

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def register_shared_store(self, name: str, store: object) -> str:
        """Register a shared substrate under a unique label.

        Substrates (etcd stores, the kube object store, mongo
        databases) call this at construction; the returned label is
        what they pass to :func:`repro.sim.race.note_read` /
        ``note_write`` so the race detector can attribute accesses.
        """
        label = name
        suffix = 2
        while label in self.shared_stores:
            label = f"{name}#{suffix}"
            suffix += 1
        self.shared_stores[label] = store
        return label

    # -- scheduling ---------------------------------------------------------

    def _permute_seq(self, seq: int) -> int:
        """Seeded bijection on [0, 2**61); identity when the seed is 0.

        Every step (xor with a constant, multiplication by an odd
        number, xorshift-right) is invertible modulo 2**61, so distinct
        raw sequence numbers always map to distinct permuted ones and
        the heap order stays total.
        """
        if self.tiebreak_seed == 0:
            return seq
        mask = self._SEQ_MASK
        seq = (seq ^ self._seq_salt) & mask
        seq = (seq * 0x9E3779B97F4A7C15) & mask
        seq ^= seq >> 31
        seq = (seq * 0xBF58476D1CE4E5B9) & mask
        seq ^= seq >> 29
        return seq

    def _schedule_event(self, event: Event, priority: int, delay: float) -> None:
        if event._scheduled:
            raise SimulationError("event already scheduled")
        event._scheduled = True
        seq = next(self._counter)
        if not self._seq_identity:
            seq = self._permute_seq(seq)
        if self.race_detector is not None:
            # Send edge: stamp the event with the sender's clock.
            self.race_detector.on_send(event)
        self.events_scheduled += 1
        self._pending += 1
        if self._profiler is not None:
            self._profiler.on_schedule(event)
        when = self._now + delay
        buckets = self._buckets
        if buckets is None:
            self.heap_pushes += 1
            heapq.heappush(self._queue, (when, priority, seq, event))
            return
        key = (when, priority)
        bucket = buckets.get(key)
        if bucket is None:
            # First event at this instant: open the bucket and push one
            # outer entry carrying it.  Later same-instant arrivals
            # join the bucket without touching the outer heap.
            buckets[key] = [(seq, event)]
            self.heap_pushes += 1
            heapq.heappush(self._queue, (when, priority, seq, buckets[key]))
        else:
            heapq.heappush(bucket, (seq, event))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None,
                priority: int = NORMAL) -> Timeout:
        return Timeout(self, delay, value, priority=priority)

    def process(self, generator: Generator, name: str = "process") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution ----------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        if self._buckets is None:
            when, _prio, _seq, event = heapq.heappop(self._queue)
        else:
            # The top outer entry's bucket holds every event at the
            # minimal (time, priority); its inner heap yields the
            # smallest seq — the exact (time, priority, seq) order.
            when, prio, _seq, bucket = self._queue[0]
            event = heapq.heappop(bucket)[1]
            if not bucket:
                heapq.heappop(self._queue)
                del self._buckets[(when, prio)]
        if when < self._now - 1e-12:
            raise SimulationError("time went backwards")
        self._now = max(self._now, when)
        self._pending -= 1
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        self.events_processed += 1
        if self.race_detector is not None or self._profiler is not None:
            self._step_instrumented(event, callbacks)
        else:
            for callback in callbacks:
                callback(event)
        # A processed event never receives new callbacks (every waiter
        # checks _processed first), so its drained list can be reused.
        pool = self._cb_pool
        if pool is not None and len(pool) < self._CB_POOL_CAP:
            callbacks.clear()
            pool.append(callbacks)

    def _step_instrumented(self, event: Event, callbacks: list) -> None:
        """The step callback loop with race/profiler hooks engaged."""
        detector = self.race_detector
        profiler = self._profiler
        if detector is not None:
            # Callbacks run on behalf of this event; anything they
            # trigger inherits its clock (fan-in/fan-out HB edges).
            detector.on_step(event)
        try:
            if profiler is not None:
                for callback in callbacks:
                    before = self.events_scheduled
                    callback(event)
                    profiler.on_callback(
                        callback, self.events_scheduled - before)
            else:
                for callback in callbacks:
                    callback(event)
        finally:
            if detector is not None:
                detector.on_step(None)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``."""
        if until is not None and until < self._now:
            raise SimulationError(
                f"until={until} is in the past (now={self._now})")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def run_until_complete(self, process: Process,
                           limit: float = 10**12) -> Any:
        """Run until ``process`` terminates; return its value or raise."""
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: process {process.name!r} cannot complete")
            if self._queue[0][0] > limit:
                raise SimulationError(
                    f"process {process.name!r} did not finish by t={limit}")
            self.step()
        # Drain the urgent callbacks of the completion event itself.
        if not process.ok:
            raise process.value
        return process.value
