"""Fault injection for the simulated cluster.

The paper's failure analysis (Section 5.6) is driven by real node failures
over months of operation; we reproduce the same distributions by injecting
faults from configurable stochastic processes.  A :class:`FaultInjector`
schedules :class:`FaultSpec` occurrences against named targets and invokes a
callback so the substrate (kubelet, node controller, FfDL component) can
react exactly as it would to an organic failure.
"""

from __future__ import annotations

import warnings
from dataclasses import InitVar, dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.sim.core import Environment, Process
from repro.sim.rng import RngRegistry


@dataclass
class FaultSpec:
    """One recurring fault source.

    ``kind`` is a free-form label (``node-crash``, ``gpu-fault``, ...);
    ``mtbf_s`` is the mean time between faults (exponential inter-arrivals);
    ``duration_s`` is the mean outage duration (0 for instantaneous faults
    such as a container crash).  Outage durations are exponential around
    that mean unless ``deterministic_duration`` is set, and never fall
    below ``min_duration_s`` (e.g. a crashed node stays down at least as
    long as failure detection takes).

    ``jitter`` is a deprecated alias: it was a float used as a boolean
    (truthy meant "randomise the duration").  Pass
    ``deterministic_duration`` instead.
    """

    kind: str
    mtbf_s: float
    duration_s: float = 0.0
    deterministic_duration: bool = False
    min_duration_s: float = 0.0
    jitter: InitVar[Optional[float]] = None

    def __post_init__(self, jitter: Optional[float]) -> None:
        if jitter is not None:
            warnings.warn(
                "FaultSpec.jitter is deprecated; use "
                "deterministic_duration=... (jitter was a float used as "
                "a boolean)", DeprecationWarning, stacklevel=3)
            self.deterministic_duration = not jitter
        if not isinstance(self.deterministic_duration, bool):
            raise TypeError("deterministic_duration must be a bool, got "
                            f"{self.deterministic_duration!r}")
        if self.mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if self.min_duration_s < 0:
            raise ValueError("min_duration_s must be non-negative")


@dataclass
class FaultEvent:
    """A recorded occurrence of a fault."""

    time: float
    kind: str
    target: str
    duration_s: float = 0.0
    detail: dict = field(default_factory=dict)


class _FaultProcState:
    """Where a fault process currently is: between faults or mid-outage."""

    __slots__ = ("phase",)

    def __init__(self) -> None:
        self.phase = "waiting"


class FaultInjector:
    """Drives fault processes and keeps an audit log of every occurrence."""

    def __init__(self, env: Environment, rng: RngRegistry):
        self.env = env
        self.rng = rng
        self.log: List[FaultEvent] = []
        self._stopped = False
        self._active: List[Tuple[Process, _FaultProcState]] = []

    def record(self, kind: str, target: str, duration_s: float = 0.0,
               **detail) -> FaultEvent:
        """Record a fault that some other component decided to inject."""
        event = FaultEvent(self.env.now, kind, target, duration_s, detail)
        self.log.append(event)
        return event

    def inject_recurring(
        self,
        spec: FaultSpec,
        target: str,
        on_fault: Callable[[FaultEvent], None],
        on_recover: Optional[Callable[[FaultEvent], None]] = None,
    ) -> Process:
        """Start a process firing ``spec`` faults against ``target`` forever."""
        state = _FaultProcState()
        proc = self.env.process(
            self._recurring(spec, target, on_fault, on_recover, state),
            name=f"fault:{spec.kind}:{target}")
        self._active.append((proc, state))
        return proc

    def inject_once(self, kind: str, target: str, delay_s: float,
                    on_fault: Callable[[FaultEvent], None],
                    duration_s: float = 0.0,
                    on_recover: Optional[Callable[[FaultEvent], None]] = None,
                    ) -> Process:
        """Schedule a single fault ``delay_s`` from now."""
        state = _FaultProcState()

        def one_shot():
            yield self.env.timeout(delay_s)
            event = self.record(kind, target, duration_s)
            state.phase = "outage"
            on_fault(event)
            if duration_s > 0:
                yield self.env.timeout(duration_s)
            if on_recover is not None:
                on_recover(event)

        proc = self.env.process(one_shot(),
                                name=f"fault-once:{kind}:{target}")
        self._active.append((proc, state))
        return proc

    def stop(self) -> None:
        """Stop injecting: no further faults fire, not even ones whose
        inter-arrival timeout is already pending; outages that are already
        in flight still run their recovery callback (faults are never left
        half-applied)."""
        self._stopped = True
        for proc, state in self._active:
            if proc.is_alive and state.phase == "waiting":
                # An escaped Interrupt is a clean termination for the
                # kernel, so this cancels the pending fault outright.
                proc.interrupt("fault injector stopped")

    def events_of_kind(self, kind: str) -> List[FaultEvent]:
        return [e for e in self.log if e.kind == kind]

    # -- internals ----------------------------------------------------------

    def _recurring(self, spec: FaultSpec, target: str,
                   on_fault: Callable[[FaultEvent], None],
                   on_recover: Optional[Callable[[FaultEvent], None]],
                   state: _FaultProcState):
        stream = self.rng.stream(f"fault:{spec.kind}:{target}")
        while not self._stopped:
            wait = stream.expovariate(1.0 / spec.mtbf_s)
            state.phase = "waiting"
            yield self.env.timeout(wait)
            if self._stopped:
                return
            duration = 0.0
            if spec.duration_s > 0:
                duration = spec.duration_s if spec.deterministic_duration \
                    else stream.expovariate(1.0 / spec.duration_s)
                duration = max(duration, spec.min_duration_s)
            event = self.record(spec.kind, target, duration)
            state.phase = "outage"
            on_fault(event)
            if duration > 0:
                yield self.env.timeout(duration)
            if on_recover is not None:
                on_recover(event)
