"""Fault injection for the simulated cluster.

The paper's failure analysis (Section 5.6) is driven by real node failures
over months of operation; we reproduce the same distributions by injecting
faults from configurable stochastic processes.  A :class:`FaultInjector`
schedules :class:`FaultSpec` occurrences against named targets and invokes a
callback so the substrate (kubelet, node controller, FfDL component) can
react exactly as it would to an organic failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.core import Environment
from repro.sim.rng import RngRegistry


@dataclass
class FaultSpec:
    """One recurring fault source.

    ``kind`` is a free-form label (``node-crash``, ``gpu-fault``, ...);
    ``mtbf_s`` is the mean time between faults (exponential inter-arrivals);
    ``duration_s`` is the mean outage duration (0 for instantaneous faults
    such as a container crash).
    """

    kind: str
    mtbf_s: float
    duration_s: float = 0.0
    jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive")
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")


@dataclass
class FaultEvent:
    """A recorded occurrence of a fault."""

    time: float
    kind: str
    target: str
    duration_s: float = 0.0
    detail: dict = field(default_factory=dict)


class FaultInjector:
    """Drives fault processes and keeps an audit log of every occurrence."""

    def __init__(self, env: Environment, rng: RngRegistry):
        self.env = env
        self.rng = rng
        self.log: List[FaultEvent] = []
        self._stopped = False

    def record(self, kind: str, target: str, duration_s: float = 0.0,
               **detail) -> FaultEvent:
        """Record a fault that some other component decided to inject."""
        event = FaultEvent(self.env.now, kind, target, duration_s, detail)
        self.log.append(event)
        return event

    def inject_recurring(
        self,
        spec: FaultSpec,
        target: str,
        on_fault: Callable[[FaultEvent], None],
        on_recover: Optional[Callable[[FaultEvent], None]] = None,
    ) -> None:
        """Start a process firing ``spec`` faults against ``target`` forever."""
        self.env.process(
            self._recurring(spec, target, on_fault, on_recover),
            name=f"fault:{spec.kind}:{target}")

    def inject_once(self, kind: str, target: str, delay_s: float,
                    on_fault: Callable[[FaultEvent], None],
                    duration_s: float = 0.0,
                    on_recover: Optional[Callable[[FaultEvent], None]] = None,
                    ) -> None:
        """Schedule a single fault ``delay_s`` from now."""

        def one_shot():
            yield self.env.timeout(delay_s)
            event = self.record(kind, target, duration_s)
            on_fault(event)
            if duration_s > 0:
                yield self.env.timeout(duration_s)
            if on_recover is not None:
                on_recover(event)

        self.env.process(one_shot(), name=f"fault-once:{kind}:{target}")

    def stop(self) -> None:
        """Stop scheduling new recurring faults (existing outages finish)."""
        self._stopped = True

    def events_of_kind(self, kind: str) -> List[FaultEvent]:
        return [e for e in self.log if e.kind == kind]

    # -- internals ----------------------------------------------------------

    def _recurring(self, spec: FaultSpec, target: str,
                   on_fault: Callable[[FaultEvent], None],
                   on_recover: Optional[Callable[[FaultEvent], None]]):
        stream = self.rng.stream(f"fault:{spec.kind}:{target}")
        while not self._stopped:
            wait = stream.expovariate(1.0 / spec.mtbf_s)
            yield self.env.timeout(wait)
            if self._stopped:
                return
            duration = 0.0
            if spec.duration_s > 0:
                duration = stream.expovariate(1.0 / spec.duration_s) \
                    if spec.jitter else spec.duration_s
            event = self.record(spec.kind, target, duration)
            on_fault(event)
            if duration > 0:
                yield self.env.timeout(duration)
            if on_recover is not None:
                on_recover(event)
