"""Deterministically merged mailboxes for cross-cell messaging.

A plain :class:`~repro.sim.resources.Store` delivers same-instant puts
in kernel scheduling order — exactly the order the tie-break mixer is
free to permute, so two federated cells whose messages land on a third
party in the same simulated instant would make the run
schedule-sensitive.  :class:`Mailbox` closes that hole: puts arriving
within one instant are buffered until the instant settles (an
:data:`~repro.sim.core.OBSERVER`-priority zero-timeout) and then merged
in canonical order of their ``key`` — ``(sender name, per-sender
sequence number)`` for the federation bus — before any getter sees
them.  Two runs under different tie-break seeds therefore drain the
same messages in the same order, which is what keeps a multi-cell
federation byte-reproducible under ``--perturb``.

Keys must be unique per message (the bus's per-sender counters
guarantee this); messages from one sender are never reordered against
each other.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Tuple

from repro.errors import SimulationError
from repro.sim.core import Environment, Event, OBSERVER


class Mailbox:
    """An unbounded queue whose same-instant arrivals merge canonically."""

    def __init__(self, env: Environment, name: str = "mailbox"):
        self.env = env
        self.name = name
        #: Arrived this instant, not yet visible to getters.
        self._pending: List[Tuple[Any, Any]] = []
        self._settle_scheduled = False
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._keys_seen: set = set()
        self.total_put = 0
        self.total_got = 0

    def put(self, item: Any, key: Any) -> None:
        """Enqueue ``item`` under a canonical merge ``key``.

        The item becomes visible to getters only after the current
        instant settles, together with — and canonically ordered
        against — every other item that arrived at the same instant.
        """
        if key in self._keys_seen:
            raise SimulationError(
                f"mailbox {self.name!r}: duplicate merge key {key!r}")
        self._keys_seen.add(key)
        self._pending.append((key, item))
        self.total_put += 1
        if not self._settle_scheduled:
            self._settle_scheduled = True
            settle = self.env.timeout(0.0, priority=OBSERVER)
            settle.callbacks.append(self._settle)

    def _settle(self, _event: Event) -> None:
        self._settle_scheduled = False
        batch, self._pending = self._pending, []
        batch.sort(key=lambda entry: entry[0])
        for _key, item in batch:
            delivered = False
            while self._getters:
                getter = self._getters.popleft()
                if not getter.triggered:
                    getter.succeed(item)
                    delivered = True
                    break
            if not delivered:
                self._items.append(item)

    def get(self) -> Event:
        """Event resolving with the next merged item."""
        ev = self.env.event()
        if self._items:
            ev.succeed(self._items.popleft())
            self.total_got += 1
        else:
            self._getters.append(ev)
            self.total_got += 1
        return ev

    def __len__(self) -> int:
        return len(self._items) + len(self._pending)
