"""Runtime schedule-sensitivity ("race") detection for the sim kernel.

The static layer (``repro.staticcheck``) reasons about one function at a
time; this module watches a *live* simulation.  The memory model is the
one DESIGN.md documents: processes are cooperatively scheduled and
**yields are the only preemption points**, so a data race in the OS
sense cannot happen — what can happen is *schedule sensitivity*: two
events at the same simulated timestamp whose relative order the kernel
is free to choose, both touching the same shared-store key, at least
one writing.  Such a pair makes the experiment's outcome depend on heap
tie-breaking rather than on modelled causality, which is exactly what
the determinism contract forbids.

Happens-before is tracked with per-process logical vector clocks:

* each :class:`~repro.sim.core.Process` (plus the synthetic ``main``
  actor, pid 0, for code running outside any process) owns a clock;
* triggering an event stamps it with the sender's clock (send edge);
* a process resuming on an event merges the event's clock (receive
  edge);
* callbacks running outside any process (condition fan-in, watch
  fan-out) propagate the clock of the event that invoked them.

Two same-timestamp accesses to the same ``(store, key)`` by different
actors conflict when at least one is a write and neither clock is ≤ the
other.  Substrates (etcd stores, the Kubernetes object store, MongoDB
collections) register themselves with
:meth:`~repro.sim.core.Environment.register_shared_store` and report
accesses through :func:`note_read` / :func:`note_write`; with no
detector attached both are near-free no-ops.

Clocks are scoped to one simulated instant ("epoch") and reset when
time advances.  This is sound, not an approximation: only
same-timestamp accesses are ever compared, and a causal chain between
two accesses at time *t* can only pass through events that also fire
at *t* (an event scheduled with positive delay fires in the future and
causality cannot come back).  Scoping bounds each clock to the actors
active within a single tick, keeping the detector's overhead linear in
the number of events rather than quadratic in the process count.

Known approximation: accesses made from two *different* event callbacks
that both run outside any process are attributed to the same ``main``
actor, so a conflict between them is not reported.  In this codebase
substrate access happens inside processes; the approximation is
documented rather than load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment, Event, Process

READ = "read"
WRITE = "write"

#: pid of the synthetic actor for code running outside any process.
MAIN_PID = 0
MAIN_NAME = "main"


class VectorClock:
    """A logical clock: pid -> count of local events observed."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Dict[int, int]] = None):
        self._counts: Dict[int, int] = dict(counts or {})

    def tick(self, pid: int) -> None:
        self._counts[pid] = self._counts.get(pid, 0) + 1

    def merge(self, other: "VectorClock") -> None:
        for pid, count in other._counts.items():
            if count > self._counts.get(pid, 0):
                self._counts[pid] = count

    def copy(self) -> "VectorClock":
        return VectorClock(self._counts)

    def __le__(self, other: "VectorClock") -> bool:
        return all(count <= other._counts.get(pid, 0)
                   for pid, count in self._counts.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not (self <= other) and not (other <= self)

    def __repr__(self) -> str:
        inner = ", ".join(f"{pid}:{count}" for pid, count
                          in sorted(self._counts.items()))
        return f"<VC {inner}>"


@dataclass(frozen=True)
class Access:
    """One recorded shared-store access."""

    store: str
    key: str
    kind: str  # READ or WRITE
    pid: int
    actor: str  # process name, or "main"
    site: str  # code location label, e.g. "EtcdStore.put"
    time: float
    clock: VectorClock

    def render(self) -> str:
        return (f"{self.kind} of {self.store}[{self.key!r}] by "
                f"{self.actor!r} at {self.site} (t={self.time:g})")


@dataclass(frozen=True)
class RaceReport:
    """Two unordered same-tick accesses, at least one a write."""

    store: str
    key: str
    time: float
    first: Access
    second: Access

    def render(self) -> str:
        return (f"schedule-sensitive conflict on "
                f"{self.store}[{self.key!r}] at t={self.time:g}: "
                f"{self.first.kind} by {self.first.actor!r} at "
                f"{self.first.site} vs {self.second.kind} by "
                f"{self.second.actor!r} at {self.second.site} "
                f"(no happens-before edge)")


class RaceError(AssertionError):
    """Raised by :meth:`RaceDetector.assert_race_free`."""


class RaceDetector:
    """Attachable vector-clock conflict monitor for one environment.

    Construction attaches the detector (``env.race_detector = self``);
    from then on the kernel maintains the clocks and registered
    substrates report their accesses.  Detach with :meth:`detach` to
    stop paying the bookkeeping cost mid-run.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.races: List[RaceReport] = []
        #: Clocks for the current epoch only (see the module docstring).
        self._clocks: Dict[int, VectorClock] = {}
        self._epoch = 0
        self._epoch_time: Optional[float] = None
        self._current_event: Optional["Event"] = None
        #: (store, key) -> same-timestamp access history.
        self._history: Dict[Tuple[str, str], List[Access]] = {}
        self._seen_pairs: Set[tuple] = set()
        env.race_detector = self

    def detach(self) -> None:
        if self.env.race_detector is self:
            self.env.race_detector = None

    # -- kernel hooks (called only while attached) ---------------------------

    def _roll_epoch(self) -> None:
        """Start a fresh clock epoch whenever simulated time advances."""
        now = self.env.now
        if now != self._epoch_time:
            self._epoch_time = now
            self._epoch += 1
            self._clocks = {}

    def _clock_of(self, pid: int) -> VectorClock:
        clock = self._clocks.get(pid)
        if clock is None:
            clock = self._clocks[pid] = VectorClock()
        return clock

    def _event_clock(self, event: Optional["Event"]) -> \
            Optional[VectorClock]:
        """The event's stamped clock, if it is from the current epoch."""
        if event is None or event._clock is None:
            return None
        epoch, clock = event._clock
        return clock if epoch == self._epoch else None

    def _sender_clock(self) -> VectorClock:
        """The clock of whoever is causing things to happen right now."""
        proc = self.env.active_process
        if proc is not None:
            return self._clock_of(proc.pid)
        inherited = self._event_clock(self._current_event)
        if inherited is not None:
            return inherited
        return self._clock_of(MAIN_PID)

    def on_send(self, event: "Event") -> None:
        """An event was triggered: stamp it with the sender's clock."""
        self._roll_epoch()
        proc = self.env.active_process
        if proc is not None:
            clock = self._clock_of(proc.pid)
            clock.tick(proc.pid)
        else:
            inherited = self._event_clock(self._current_event)
            if inherited is not None:
                clock = inherited
            else:
                clock = self._clock_of(MAIN_PID)
                clock.tick(MAIN_PID)
        event._clock = (self._epoch, clock.copy())

    def on_step(self, event: Optional["Event"]) -> None:
        """The kernel is about to run (or just finished) callbacks."""
        self._current_event = event

    def on_receive(self, process: "Process", event: "Event") -> None:
        """A process resumes on ``event``: merge its clock (HB edge)."""
        self._roll_epoch()
        clock = self._clock_of(process.pid)
        inherited = self._event_clock(event)
        if inherited is not None:
            clock.merge(inherited)
        clock.tick(process.pid)

    # -- access recording ----------------------------------------------------

    def record_read(self, store: str, key: str, site: str) -> None:
        self._record(READ, store, key, site)

    def record_write(self, store: str, key: str, site: str) -> None:
        self._record(WRITE, store, key, site)

    def _record(self, kind: str, store: str, key: str, site: str) -> None:
        self._roll_epoch()
        proc = self.env.active_process
        if proc is not None:
            pid, actor = proc.pid, proc.name
        else:
            pid, actor = MAIN_PID, MAIN_NAME
        now = self.env.now
        access = Access(store, key, kind, pid, actor, site, now,
                        self._sender_clock().copy())
        bucket = self._history.setdefault((store, key), [])
        if bucket and bucket[0].time != now:
            # Accesses from earlier timestamps can no longer be reordered
            # against this one; drop them so memory stays bounded.
            bucket.clear()
        for prior in bucket:
            if prior.pid == pid:
                continue
            if prior.kind == READ and kind == READ:
                continue
            if not prior.clock.concurrent_with(access.clock):
                continue
            pair_key = (store, key, prior.actor, prior.site,
                        actor, site)
            if pair_key in self._seen_pairs:
                continue
            self._seen_pairs.add(pair_key)
            self.races.append(
                RaceReport(store, key, now, prior, access))
        bucket.append(access)

    # -- reporting -----------------------------------------------------------

    @property
    def stores(self) -> Dict[str, object]:
        """The shared stores registered with this environment."""
        return dict(self.env.shared_stores)

    def render(self) -> List[str]:
        return [race.render() for race in self.races]

    def assert_race_free(self) -> None:
        if self.races:
            raise RaceError(
                "schedule-sensitive conflicts detected:\n"
                + "\n".join(self.render()))


def note_read(env: Optional["Environment"], store: str, key: str,
              site: str) -> None:
    """Report a read if ``env`` has a detector attached (cheap no-op)."""
    if env is not None and env.race_detector is not None:
        env.race_detector.record_read(store, key, site)


def note_write(env: Optional["Environment"], store: str, key: str,
               site: str) -> None:
    """Report a write if ``env`` has a detector attached (cheap no-op)."""
    if env is not None and env.race_detector is not None:
        env.race_detector.record_write(store, key, site)
