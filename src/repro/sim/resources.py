"""Synchronization and resource-contention primitives for the sim kernel.

These are the building blocks for modelling queues (:class:`Store`),
capacity-limited services (:class:`Resource`) and shared network / storage
bandwidth (:class:`FairShareLink`, used to reproduce the heavy-load
degradation in Figure 5 of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.core import Environment, Event


class Resource:
    """A counted resource; ``request()`` events fire FIFO as capacity frees."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    def request(self) -> Event:
        """Return an event that fires once a unit is acquired."""
        ev = self.env.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release one unit; hands it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release without acquire")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(self)
                return
        self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return sum(1 for w in self._waiters if not w.triggered)


class Store:
    """An unbounded FIFO channel of items; ``get()`` blocks until available."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        ev = self.env.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)


class _Transfer:
    __slots__ = ("remaining", "done", "last_update")

    def __init__(self, size: float, done: Event, now: float):
        self.remaining = float(size)
        self.done = done
        self.last_update = now


class FairShareLink:
    """Processor-sharing bandwidth link.

    ``capacity_bps`` is shared equally among all in-flight transfers, so a
    transfer of ``size`` bytes takes ``size * n / capacity`` seconds while
    ``n`` transfers are active.  This models the shared 1GbE / object-storage
    bandwidth whose saturation causes the V100 slowdown in Figure 5.
    """

    def __init__(self, env: Environment, capacity_bps: float,
                 name: str = "link"):
        if capacity_bps <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity_bps = float(capacity_bps)
        self.name = name
        self._transfers: list[_Transfer] = []
        self._wakeup: Optional[Event] = None
        self._runner = env.process(self._run(), name=f"link:{name}")
        self.bytes_transferred = 0.0

    @property
    def active_transfers(self) -> int:
        return len(self._transfers)

    def current_rate_per_transfer(self) -> float:
        """Bandwidth each in-flight transfer currently receives (bps)."""
        n = len(self._transfers)
        return self.capacity_bps / n if n else self.capacity_bps

    def transfer(self, size_bytes: float) -> Event:
        """Start a transfer; the returned event fires on completion."""
        if size_bytes < 0:
            raise SimulationError("negative transfer size")
        done = self.env.event()
        if size_bytes == 0:
            done.succeed(0.0)
            return done
        self._drain_progress()
        self._transfers.append(_Transfer(size_bytes, done, self.env.now))
        self._kick()
        return done

    def set_capacity(self, capacity_bps: float) -> None:
        """Re-rate the link mid-flight (brownout / recovery).

        Progress already made at the old rate is settled first, so
        in-flight transfers finish their remaining bytes at the new rate.
        """
        if capacity_bps <= 0:
            raise SimulationError("capacity must be positive")
        self._drain_progress()
        self.capacity_bps = float(capacity_bps)
        self._kick()

    # -- internals ----------------------------------------------------------

    def _drain_progress(self) -> None:
        """Account for bytes moved since the last state change."""
        now = self.env.now
        n = len(self._transfers)
        if not n:
            return
        rate = self.capacity_bps / n
        for tr in self._transfers:
            moved = rate * (now - tr.last_update)
            tr.remaining = max(0.0, tr.remaining - moved)
            tr.last_update = now
            self.bytes_transferred += moved

    def _kick(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _run(self):
        while True:
            self._drain_progress()
            # A transfer is done when its residual would complete within a
            # nanosecond at the current rate: a pure byte epsilon can leave
            # residuals whose completion time is below the clock's float
            # resolution, which would stall the simulation.
            rate = self.capacity_bps / max(1, len(self._transfers))
            epsilon = max(1e-9, rate * 1e-9)
            finished = [t for t in self._transfers
                        if t.remaining <= epsilon]
            self._transfers = [t for t in self._transfers
                               if t.remaining > epsilon]
            for tr in finished:
                tr.done.succeed(self.env.now)
            if not self._transfers:
                self._wakeup = self.env.event()
                yield self._wakeup
                continue
            rate = self.capacity_bps / len(self._transfers)
            next_done = max(1e-9,
                            min(t.remaining for t in self._transfers) / rate)
            self._wakeup = self.env.event()
            yield self.env.any_of([self.env.timeout(next_done), self._wakeup])
