"""Named, seeded random-number streams.

Every stochastic component draws from its own stream derived from a single
master seed, so adding a new random component never perturbs the draws of
existing ones and every experiment is exactly reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Hands out independent ``random.Random`` streams keyed by name."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``.

        One dict probe on the hit path; the sha256 seed derivation runs
        exactly once per name, so repeated lookups from hot loops (e.g.
        per-pod scheduling decisions) cost a hash-table get.
        """
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()).digest()
            stream = self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        digest = hashlib.sha256(
            f"{self.master_seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
