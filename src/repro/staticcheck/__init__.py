"""Determinism & safety analyzer for the simulation substrate.

Every reproduced result — Spread-vs-Pack fragmentation (Figure 3), gang
scheduling deadlock avoidance (Figure 4), status-store resilience
(Table 3) — rests on two properties that nothing else enforces:

1. **Determinism**: the discrete-event kernel replays identically given
   the same master seed.  A stray ``time.time()``, an unseeded global
   ``random`` draw, or iteration over an unordered ``set`` feeding
   :meth:`Environment.schedule` silently corrupts experiments.
2. **Crash-injection fidelity**: faults are delivered as
   :class:`repro.sim.core.Interrupt`; a broad ``except Exception`` that
   swallows one turns an injected crash into an ordinary error path and
   invalidates the dependability numbers.

The analyzer has two halves:

* **Static rules** (:mod:`repro.staticcheck.rules`): AST passes over the
  source tree, run via ``python -m repro.staticcheck`` or the pytest
  suite under ``tests/staticcheck``.
* **Runtime checkers** (:mod:`repro.staticcheck.runtime`): invariant
  monitors hooked into live simulations — Raft safety properties and
  the Kubernetes pod phase state machine.

Findings can be suppressed per line with an explanation::

    risky_call()  # staticcheck: ignore[DET001] replay-safe: gated by ...

A suppression without a reason is itself reported (``SUP001``).
"""

from __future__ import annotations

from repro.staticcheck.engine import (
    ALL_RULES,
    AnalysisContext,
    analyze_paths,
    analyze_project,
    analyze_source,
    analyze_tree,
    default_target,
    iter_manifest_files,
    iter_python_files,
)
from repro.staticcheck.findings import Finding, RULE_CATALOG
from repro.staticcheck.manifest import (
    MANIFEST_RULES,
    analyze_manifest,
    analyze_manifest_source,
)
from repro.staticcheck.interproc import (
    Project,
    Summary,
    build_project,
)
from repro.staticcheck.runtime import (
    KubeStateMachineChecker,
    RaftInvariantChecker,
)

__all__ = [
    "ALL_RULES",
    "AnalysisContext",
    "Finding",
    "KubeStateMachineChecker",
    "MANIFEST_RULES",
    "Project",
    "RULE_CATALOG",
    "RaftInvariantChecker",
    "Summary",
    "analyze_manifest",
    "analyze_manifest_source",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "analyze_tree",
    "build_project",
    "default_target",
    "iter_manifest_files",
    "iter_python_files",
]
