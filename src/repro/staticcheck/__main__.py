"""``python -m repro.staticcheck`` — run the analyzer from the shell.

Exit codes: ``0`` when clean (always, without ``--strict``); with
``--strict`` any unsuppressed finding exits ``1``, which is what CI runs.
"""

from __future__ import annotations

import sys

from repro.staticcheck.cli import main

if __name__ == "__main__":
    sys.exit(main())
