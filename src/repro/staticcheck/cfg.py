"""Per-function control-flow graphs for flow-sensitive rules.

One :class:`CFGNode` per simple statement or compound-statement header
(the ``if``/``while`` test, the ``for`` iterable, the ``with`` items,
the ``except`` catch point).  Nested function and lambda bodies are
*not* part of the enclosing function's graph — they have their own
control flow and their own CFGs.

Exception modelling, deliberately conservative but bounded:

* every statement inside a ``try`` body gets an edge to each of that
  ``try``'s handlers (an exception may occur mid-statement);
* an explicit ``raise`` inside a ``try`` body edges both to the
  handlers (it may be caught) and to the escape continuation (it may
  not match);
* a ``raise`` outside any handler-protected region escapes the
  function: through the enclosing ``finally`` blocks, then to EXIT;
* ``finally`` bodies are built twice — once on the normal
  continuation, once on the escape continuation — which is the
  standard duplication that keeps path-sensitive analyses sound for
  ``try/finally`` release idioms.

Implicit exceptions (any statement can raise in Python) are modelled
only inside ``finally``-protected regions: there every statement also
pends to the exceptional ``finally`` copy, because a ``try/finally``
exists precisely for the case where the body raises.  Outside such
regions implicit raises are not modelled — edges from every statement
to EXIT would drown any path-sensitive rule in noise.  The runtime
invariant checkers cover that residue, as documented in DESIGN.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

#: Node kinds (informational; rules mostly dispatch on ``stmt`` type).
ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
EXCEPT = "except"


@dataclass
class CFGNode:
    """One control-flow point."""

    index: int
    kind: str
    stmt: Optional[ast.AST] = None
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    #: True when the node's own expressions contain a yield point.
    has_yield: bool = False

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


class CFG:
    """A built graph; ``entry`` and ``exit`` are synthetic nodes."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new(ENTRY)
        self.exit = self._new(EXIT)

    # -- construction helpers ------------------------------------------------

    def _new(self, kind: str, stmt: Optional[ast.AST] = None) -> int:
        node = CFGNode(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    def _connect(self, preds: Iterable[int], dst: int) -> None:
        for src in preds:
            self._edge(src, dst)

    # -- queries -------------------------------------------------------------

    def node(self, index: int) -> CFGNode:
        return self.nodes[index]

    def stmt_nodes(self) -> List[CFGNode]:
        return [n for n in self.nodes if n.stmt is not None]

    def yield_nodes(self) -> List[CFGNode]:
        return [n for n in self.nodes if n.has_yield]

    def reachable(self, start: int, blocked: Set[int] = frozenset(),
                  ) -> Set[int]:
        """Nodes reachable from ``start`` without entering ``blocked``."""
        seen: Set[int] = set()
        stack = [start]
        while stack:
            index = stack.pop()
            if index in seen or index in blocked:
                continue
            seen.add(index)
            stack.extend(self.nodes[index].succs)
        return seen

    def path_exists(self, start: int, goal: int,
                    blocked: Set[int] = frozenset()) -> bool:
        """Is there a path ``start``..``goal`` avoiding ``blocked``?

        ``start`` itself may appear in ``blocked``; only intermediate
        and final steps are filtered.
        """
        seen: Set[int] = set()
        stack = list(self.nodes[start].succs) if start not in blocked \
            else []
        if start == goal:
            return True
        while stack:
            index = stack.pop()
            if index in seen or index in blocked:
                continue
            if index == goal:
                return True
            seen.add(index)
            stack.extend(self.nodes[index].succs)
        return False


def own_expr_roots(stmt: ast.AST) -> List[ast.AST]:
    """The expressions that belong to this CFG node itself.

    For compound statements only the header is this node (the body is
    separate nodes), so only header expressions are returned.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return list(stmt.items)
    if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    return [stmt]


def walk_own(roots: Sequence[Optional[ast.AST]]) -> Iterable[ast.AST]:
    """Walk expression roots without entering nested function bodies."""
    stack: List[ast.AST] = [r for r in roots if r is not None]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _own_yield(stmt: ast.AST) -> bool:
    """Does the statement's *header* expression contain a yield point?"""
    return any(isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await))
               for node in walk_own(own_expr_roots(stmt)))


class _Frame:
    """Loop / exception context while building one region."""

    __slots__ = ("break_sinks", "continue_target")

    def __init__(self) -> None:
        self.break_sinks: List[int] = []
        self.continue_target: Optional[int] = None


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        #: Innermost-first stack of handler-entry node lists; statements
        #: inside a try body edge to every handler of the innermost try.
        self._handlers: List[List[int]] = []
        #: Escape continuations (where an uncaught raise goes): a stack
        #: of pending-finally preds lists; the outermost escape is EXIT.
        self._escape_sinks: List[List[int]] = []
        self._loops: List[_Frame] = []

    # -- escape plumbing -----------------------------------------------------

    def _escape(self, node_index: int) -> None:
        """Route an uncaught raise out of the function."""
        if self._escape_sinks:
            self._escape_sinks[-1].append(node_index)
        else:
            self.cfg._edge(node_index, self.cfg.exit)

    # -- statement dispatch --------------------------------------------------

    def build_block(self, stmts: Sequence[ast.stmt],
                    preds: List[int]) -> List[int]:
        for stmt in stmts:
            preds = self.build_stmt(stmt, preds)
        return preds

    def build_stmt(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, preds)

        index = self._stmt_node(stmt, preds)
        if isinstance(stmt, ast.Return):
            # A return runs every pending finally on the way out, which
            # is the same continuation an escaping raise takes.
            self._escape(index)
            return []
        if isinstance(stmt, ast.Raise):
            if self._handlers:
                for handler in self._handlers[-1]:
                    self.cfg._edge(index, handler)
            self._escape(index)
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1].break_sinks.append(index)
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops and \
                    self._loops[-1].continue_target is not None:
                self.cfg._edge(index, self._loops[-1].continue_target)
            return []
        return [index]

    def _stmt_node(self, stmt: ast.AST, preds: List[int],
                   kind: str = STMT) -> int:
        index = self.cfg._new(kind, stmt)
        self.cfg.nodes[index].has_yield = _own_yield(stmt)
        self.cfg._connect(preds, index)
        if self._handlers:
            for handler in self._handlers[-1]:
                self.cfg._edge(index, handler)
        if self._escape_sinks:
            # Inside a finally-protected region any statement may raise;
            # pend it on the exceptional finally continuation.
            self._escape_sinks[-1].append(index)
        return index

    # -- compound statements -------------------------------------------------

    def _build_if(self, stmt: ast.If, preds: List[int]) -> List[int]:
        head = self._stmt_node(stmt, preds)
        body_out = self.build_block(stmt.body, [head])
        else_out = self.build_block(stmt.orelse, [head]) if stmt.orelse \
            else [head]
        return body_out + else_out

    def _always_true(self, test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    def _build_loop(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        head = self._stmt_node(stmt, preds)
        frame = _Frame()
        frame.continue_target = head
        self._loops.append(frame)
        body_out = self.build_block(stmt.body, [head])
        self._loops.pop()
        self.cfg._connect(body_out, head)
        exits: List[int] = list(frame.break_sinks)
        falls_through = not (isinstance(stmt, ast.While)
                             and self._always_true(stmt.test))
        if falls_through:
            # Condition false / iterable exhausted, then the else clause.
            exits += self.build_block(stmt.orelse, [head]) if stmt.orelse \
                else [head]
        return exits

    def _build_with(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        head = self._stmt_node(stmt, preds)
        return self.build_block(stmt.body, [head])

    def _build_try(self, stmt: ast.Try, preds: List[int]) -> List[int]:
        cfg = self.cfg
        has_finally = bool(stmt.finalbody)
        if has_finally:
            # Escapes inside this try pend until the finally is built.
            self._escape_sinks.append([])

        handler_entries = [self._stmt_node(handler, [], kind=EXCEPT)
                           for handler in stmt.handlers]
        if stmt.handlers:
            self._handlers.append(handler_entries)
        body_out = self.build_block(stmt.body, list(preds))
        if stmt.handlers:
            self._handlers.pop()

        normal_out = self.build_block(stmt.orelse, body_out) if stmt.orelse \
            else body_out
        handler_out: List[int] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_out += self.build_block(handler.body, [entry])
        normal_out = normal_out + handler_out

        if has_finally:
            pending = self._escape_sinks.pop()
            out = self.build_block(stmt.finalbody, normal_out)
            if pending:
                # Exceptional continuation: duplicate the finally body,
                # then keep escaping outward.
                exc_out = self.build_block(stmt.finalbody, pending)
                for index in exc_out:
                    self._escape(index)
            return out
        return normal_out


def build_block_cfg(stmts: Sequence[ast.stmt]) -> CFG:
    """CFG of a bare statement list (e.g. an except-handler body)."""
    builder = _Builder()
    out = builder.build_block(stmts, [builder.cfg.entry])
    builder.cfg._connect(out, builder.cfg.exit)
    return builder.cfg


def build_cfg(func: ast.AST) -> CFG:
    """CFG of one function's own body (nested functions excluded)."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg needs a function node, got "
                        f"{type(func).__name__}")
    return build_block_cfg(func.body)
