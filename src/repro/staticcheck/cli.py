"""Command-line driver for the static analyzer.

Usage::

    python -m repro.staticcheck                  # report, always exit 0
    python -m repro.staticcheck --strict         # CI: exit 1 on findings
    python -m repro.staticcheck --format md      # Markdown findings table
    python -m repro.staticcheck --format json    # machine-readable report
    python -m repro.staticcheck --format github  # GitHub ::error lines
    python -m repro.staticcheck --format sarif   # SARIF 2.1.0 report
    python -m repro.staticcheck --list-rules     # print the rule catalog
    python -m repro.staticcheck --explain SAF001 # rule rationale + fix
    python -m repro.staticcheck path/to/file.py  # analyze specific paths
    python -m repro.staticcheck --summary-cache .staticcheck/cache.json
                                # reuse effect summaries across runs
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

from repro.staticcheck.engine import analyze_project, default_target
from repro.staticcheck.findings import (
    Finding,
    RULE_CATALOG,
    RULE_EXPLANATIONS,
)


def render_text(findings: List[Finding],
                suppressed: List[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    lines.append(f"{len(findings)} finding(s), "
                 f"{len(suppressed)} suppressed")
    return "\n".join(lines)


def render_markdown(findings: List[Finding],
                    suppressed: List[Finding]) -> str:
    from repro.analysis.tables import format_table

    rows = [[f.code, f.location, f.message] for f in findings] or \
        [["-", "-", "no findings"]]
    table = format_table(
        ["code", "location", "message"], rows,
        title="## staticcheck findings")
    return (f"{table}\n\n{len(findings)} finding(s), "
            f"{len(suppressed)} suppressed")


def render_json(findings: List[Finding],
                suppressed: List[Finding]) -> str:
    return json.dumps({
        "findings": [{"code": f.code, "path": f.path, "line": f.line,
                      "message": f.message} for f in findings],
        "suppressed": [{"code": f.code, "path": f.path, "line": f.line}
                       for f in suppressed],
    }, indent=2, sort_keys=True)


def render_github(findings: List[Finding],
                  suppressed: List[Finding]) -> str:
    """GitHub Actions workflow-command annotations, one per finding.

    Findings that know their column (the YAML manifest rules) carry a
    ``col=`` property so the annotation lands on the exact token.
    """
    lines = [f"::error file={f.path},line={f.line},"
             + (f"col={f.column}," if f.column > 0 else "")
             + f"title=staticcheck {f.code}::{f.message}"
             for f in findings]
    lines.append(f"{len(findings)} finding(s), "
                 f"{len(suppressed)} suppressed")
    return "\n".join(lines)


def _sarif_region(finding: Finding) -> dict:
    """Line (and, when known, column) anchor for one finding —
    manifest findings point at the exact YAML token."""
    region = {"startLine": max(finding.line, 1)}
    if finding.column > 0:
        region["startColumn"] = finding.column
    return region


def render_sarif(findings: List[Finding],
                 suppressed: List[Finding]) -> str:
    """SARIF 2.1.0, consumable by GitHub code scanning upload."""
    rules = [{
        "id": code,
        "shortDescription": {"text": description},
        **({"fullDescription": {"text": RULE_EXPLANATIONS[code][0]}}
           if code in RULE_EXPLANATIONS else {}),
    } for code, description in sorted(RULE_CATALOG.items())]
    results = [{
        "ruleId": f.code,
        "level": "error",
        "message": {"text": f.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path},
                "region": _sarif_region(f),
            },
        }],
    } for f in findings]
    results.extend({
        "ruleId": f.code,
        "level": "note",
        "message": {"text": f.message},
        "suppressions": [{"kind": "inSource"}],
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path},
                "region": _sarif_region(f),
            },
        }],
    } for f in suppressed)
    return json.dumps({
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro.staticcheck",
                "informationUri":
                    "https://github.com/repro/repro#staticcheck",
                "rules": rules,
            }},
            "results": results,
        }],
    }, indent=2, sort_keys=True)


def render_explanation(code: str) -> str:
    why, bad, good = RULE_EXPLANATIONS[code]
    indent = "    "
    return "\n".join([
        f"{code}: {RULE_CATALOG[code]}",
        "",
        textwrap.fill(why, width=72),
        "",
        "violates:",
        textwrap.indent(bad, indent),
        "",
        "compliant:",
        textwrap.indent(good, indent),
    ])


def render_rules() -> str:
    width = max(len(code) for code in RULE_CATALOG)
    return "\n".join(f"{code:<{width}}  {description}"
                     for code, description in sorted(RULE_CATALOG.items()))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.staticcheck",
        description="determinism & safety analyzer for the simulation "
                    "substrate")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze "
                             "(default: the installed repro package)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero if any unsuppressed finding "
                             "remains")
    parser.add_argument("--format",
                        choices=("text", "md", "json", "github",
                                 "sarif"),
                        default="text", help="findings report format")
    parser.add_argument("--summary-cache", metavar="PATH", default=None,
                        help="JSON file caching per-module effect "
                             "summaries by content hash; unchanged "
                             "modules skip re-extraction")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--explain", metavar="RULE_ID",
                        help="print why a rule exists, a violating "
                             "example and the compliant fix, then exit")
    return parser


_RENDERERS = {
    "text": render_text,
    "md": render_markdown,
    "json": render_json,
    "github": render_github,
    "sarif": render_sarif,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0
    if args.explain is not None:
        code = args.explain.upper()
        if code not in RULE_EXPLANATIONS:
            parser.error(f"unknown rule {args.explain!r}; see "
                         f"--list-rules")
        print(render_explanation(code))
        return 0
    targets = [Path(p) for p in args.paths] or [default_target()]
    for target in targets:
        if not target.exists():
            parser.error(f"no such file or directory: {target}")
    cache_path = Path(args.summary_cache) if args.summary_cache else None
    findings, suppressed, project = analyze_project(
        targets, cache_path=cache_path)
    print(_RENDERERS[args.format](findings, suppressed))
    if cache_path is not None and project.cache_stats is not None:
        print(project.cache_stats.render(), file=sys.stderr)
    if args.strict and findings:
        return 1
    return 0
