"""A small intraprocedural dataflow framework over :mod:`cfg` graphs.

Facts are frozensets and joins are unions, i.e. every analysis built on
this solver is a forward *may* analysis: a fact holds at a node when it
holds along **some** path reaching it.  That is exactly the shape the
path-sensitive rules need ("on some path the resource is still
unreleased", "some definition reaches this use across a yield"), and
union joins over finite fact universes guarantee the worklist
terminates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.staticcheck.cfg import CFG, CFGNode

Fact = FrozenSet[tuple]


class ForwardAnalysis:
    """Subclass hook points for one analysis."""

    def initial(self) -> Fact:
        """Fact at the function entry."""
        return frozenset()

    def transfer(self, node: CFGNode, fact: Fact) -> Fact:
        """Fact after executing ``node`` given ``fact`` before it."""
        raise NotImplementedError


def solve_forward(cfg: CFG, analysis: ForwardAnalysis,
                  ) -> Dict[int, Tuple[Fact, Fact]]:
    """Fixpoint ``{node index: (fact_in, fact_out)}`` for ``analysis``."""
    fact_in: Dict[int, Fact] = {n.index: frozenset() for n in cfg.nodes}
    fact_out: Dict[int, Fact] = {n.index: frozenset() for n in cfg.nodes}
    fact_in[cfg.entry] = analysis.initial()
    fact_out[cfg.entry] = analysis.initial()

    worklist = [n.index for n in cfg.nodes if n.index != cfg.entry]
    queued = set(worklist)
    while worklist:
        index = worklist.pop(0)
        queued.discard(index)
        node = cfg.node(index)
        incoming: Fact = frozenset()
        for pred in node.preds:
            incoming = incoming | fact_out[pred]
        fact_in[index] = incoming
        out = analysis.transfer(node, incoming) \
            if node.stmt is not None else incoming
        if out != fact_out[index]:
            fact_out[index] = out
            for succ in node.succs:
                if succ not in queued and succ != cfg.entry:
                    worklist.append(succ)
                    queued.add(succ)
    return {index: (fact_in[index], fact_out[index])
            for index in fact_in}
