"""Analysis driver: file discovery, suppressions, and rule dispatch.

Suppression syntax (one per line, reason mandatory)::

    risky()  # staticcheck: ignore[DET001] replay-safe because ...
    bad()    # staticcheck: ignore[DET001,SAF001] shared fixture shim

A suppression with no reason is inert *and* reported as ``SUP001`` — an
unexplained suppression is exactly the kind of silent drift this tool
exists to prevent.

Directory runs are two-phase: every module is parsed (or restored from
the summary cache) first so the interprocedural pass sees the whole
project, then each module is checked with the shared
:class:`~repro.staticcheck.interproc.callgraph.Project` on the context.
Single-source runs (``analyze_source``) build a one-module project, so
the cross-function rules still fire on intra-module chains.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.staticcheck.findings import Finding
from repro.staticcheck.flowrules import FLOW_RULES
from repro.staticcheck.interproc import (
    INTERPROC_RULES,
    ModuleRecord,
    Project,
    build_project,
)
from repro.staticcheck.manifest import (
    MANIFEST_RULES,
    analyze_manifest_source,
)
from repro.staticcheck.rules import SYNTACTIC_RULES, build_import_map
from repro.staticcheck.suppress import (  # noqa: F401  (re-exported API)
    Suppression,
    apply_suppressions,
    parse_suppressions,
)

#: Every rule — syntactic walkers, CFG flow rules, the interprocedural
#: rules backed by the project call graph, and the YAML manifest rules
#: (which no-op on Python modules; see analyze_manifest_source).
ALL_RULES = tuple(SYNTACTIC_RULES) + tuple(FLOW_RULES) \
    + tuple(INTERPROC_RULES) + MANIFEST_RULES

#: Module pragma marking a file as an analyzer *fixture*: a corpus file
#: whose findings are asserted by the test suite, not repo defects.
#: Fixture files are skipped by directory scans (``analyze_paths``) but
#: still analyzable directly via ``analyze_source``.
_FIXTURE_RE = re.compile(r"#\s*staticcheck:\s*fixture\b")


@dataclass
class AnalysisContext:
    """Per-module state shared by every rule."""

    tree: ast.Module
    display_path: str
    imports: Dict[str, str] = field(default_factory=dict)
    #: The whole-project view (call graph + summaries); ``None`` only
    #: when a rule is invoked outside the normal drivers.
    project: Optional[Project] = None


def _check_module(ctx: AnalysisContext, source: str,
                  rules: Sequence) -> Tuple[List[Finding], List[Finding]]:
    """Run ``rules`` on a parsed module and apply its suppressions."""
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check(ctx))
    return apply_suppressions(raw, source, ctx.display_path)


def analyze_source(source: str, display_path: str = "<string>",
                   rules: Sequence = ALL_RULES,
                   ) -> Tuple[List[Finding], List[Finding]]:
    """Run ``rules`` over one module's source.

    Returns ``(findings, suppressed)``: the first list is what should
    fail a build, the second what valid suppressions silenced.  The
    interprocedural rules see a one-module project, so cross-function
    findings within the module still fire.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as err:
        return ([Finding("SYNTAX", display_path, err.lineno or 0,
                         f"cannot parse: {err.msg}")], [])
    project = build_project(
        [ModuleRecord(display_path, source, tree)])
    ctx = AnalysisContext(tree=tree, display_path=display_path,
                          imports=build_import_map(tree),
                          project=project)
    return _check_module(ctx, source, rules)


def _is_fixture(source: str) -> bool:
    """True when the module's leading lines carry the fixture pragma."""
    for line in source.splitlines()[:3]:
        if _FIXTURE_RE.search(line):
            return True
    return False


def iter_python_files(root: Path) -> List[Path]:
    """All ``.py`` files under ``root`` in a stable order."""
    if root.is_file():
        return [] if root.suffix in (".yaml", ".yml") else [root]
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def iter_manifest_files(root: Path) -> List[Path]:
    """All YAML scenario manifests under ``root`` in a stable order."""
    if root.is_file():
        return [root] if root.suffix in (".yaml", ".yml") else []
    return sorted(p for suffix in ("*.yaml", "*.yml")
                  for p in root.rglob(suffix) if p.is_file())


def _display(path: Path) -> str:
    """Repo-relative posix path when possible, else the path as given."""
    text = path.as_posix()
    for marker in ("src/repro/", "scenarios/"):
        index = text.rfind(marker)
        if index >= 0:
            return text[index:]
    return text


def analyze_project(paths: Iterable[Path], rules: Sequence = ALL_RULES,
                    cache_path: Optional[Path] = None,
                    ) -> Tuple[List[Finding], List[Finding], Project]:
    """Analyze every Python file under each of ``paths``.

    Returns ``(findings, suppressed, project)``; the project carries
    ``cache_stats`` when ``cache_path`` was given.
    """
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    records: List[ModuleRecord] = []
    seen: set = set()
    for root in paths:
        for path in iter_manifest_files(Path(root)):
            display = _display(path)
            if display in seen:
                continue
            seen.add(display)
            source = path.read_text(encoding="utf-8")
            if _is_fixture(source):
                continue
            got, hidden = analyze_manifest_source(source, display)
            findings.extend(got)
            suppressed.extend(hidden)
        for path in iter_python_files(Path(root)):
            display = _display(path)
            if display in seen:
                continue
            seen.add(display)
            source = path.read_text(encoding="utf-8")
            if _is_fixture(source):
                continue
            try:
                tree = ast.parse(source)
            except SyntaxError as err:
                findings.append(Finding(
                    "SYNTAX", display, err.lineno or 0,
                    f"cannot parse: {err.msg}"))
                continue
            records.append(ModuleRecord(display, source, tree))

    project = build_project(records, cache_path)
    for record in records:
        tree = record.tree if record.tree is not None \
            else ast.parse(record.source)
        ctx = AnalysisContext(tree=tree,
                              display_path=record.display_path,
                              imports=build_import_map(tree),
                              project=project)
        got, hidden = _check_module(ctx, record.source, rules)
        findings.extend(got)
        suppressed.extend(hidden)
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return findings, suppressed, project


def analyze_paths(paths: Iterable[Path], rules: Sequence = ALL_RULES,
                  cache_path: Optional[Path] = None,
                  ) -> Tuple[List[Finding], List[Finding]]:
    """Analyze every Python file under each of ``paths``."""
    findings, suppressed, _project = analyze_project(
        paths, rules, cache_path)
    return findings, suppressed


def default_target() -> Path:
    """The ``src/repro`` tree this installation runs from."""
    import repro

    return Path(repro.__file__).resolve().parent


def analyze_tree(root: Path = None,
                 ) -> Tuple[List[Finding], List[Finding]]:
    """Analyze the whole package (or ``root``) with every rule."""
    return analyze_paths([root if root is not None else default_target()])
