"""Analysis driver: file discovery, suppressions, and rule dispatch.

Suppression syntax (one per line, reason mandatory)::

    risky()  # staticcheck: ignore[DET001] replay-safe because ...
    bad()    # staticcheck: ignore[DET001,SAF001] shared fixture shim

A suppression with no reason is inert *and* reported as ``SUP001`` — an
unexplained suppression is exactly the kind of silent drift this tool
exists to prevent.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.staticcheck.findings import Finding, RULE_CATALOG
from repro.staticcheck.flowrules import FLOW_RULES
from repro.staticcheck.rules import SYNTACTIC_RULES, build_import_map

#: Every rule — syntactic walkers plus the CFG-based flow rules.
ALL_RULES = SYNTACTIC_RULES + FLOW_RULES

_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(.*)$")

#: Module pragma marking a file as an analyzer *fixture*: a corpus file
#: whose findings are asserted by the test suite, not repo defects.
#: Fixture files are skipped by directory scans (``analyze_paths``) but
#: still analyzable directly via ``analyze_source``.
_FIXTURE_RE = re.compile(r"#\s*staticcheck:\s*fixture\b")


@dataclass
class AnalysisContext:
    """Per-module state shared by every rule."""

    tree: ast.Module
    display_path: str
    imports: Dict[str, str] = field(default_factory=dict)


@dataclass
class Suppression:
    line: int
    codes: Set[str]
    reason: str


def parse_suppressions(source: str) -> List[Suppression]:
    suppressions = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {code.strip().upper()
                 for code in match.group(1).split(",") if code.strip()}
        suppressions.append(
            Suppression(lineno, codes, match.group(2).strip()))
    return suppressions


def analyze_source(source: str, display_path: str = "<string>",
                   rules: Sequence = ALL_RULES,
                   ) -> Tuple[List[Finding], List[Finding]]:
    """Run ``rules`` over one module's source.

    Returns ``(findings, suppressed)``: the first list is what should
    fail a build, the second what valid suppressions silenced.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as err:
        return ([Finding("SYNTAX", display_path, err.lineno or 0,
                         f"cannot parse: {err.msg}")], [])
    ctx = AnalysisContext(tree=tree, display_path=display_path,
                          imports=build_import_map(tree))
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check(ctx))

    suppressions = parse_suppressions(source)
    by_line: Dict[int, Suppression] = {s.line: s for s in suppressions}
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        suppression = by_line.get(finding.line)
        if suppression is not None and finding.code in suppression.codes \
                and suppression.reason:
            suppressed.append(finding)
        else:
            findings.append(finding)
    for suppression in suppressions:
        if not suppression.reason:
            findings.append(Finding(
                "SUP001", display_path, suppression.line,
                RULE_CATALOG["SUP001"]))
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return findings, suppressed


def _is_fixture(source: str) -> bool:
    """True when the module's leading lines carry the fixture pragma."""
    for line in source.splitlines()[:3]:
        if _FIXTURE_RE.search(line):
            return True
    return False


def iter_python_files(root: Path) -> List[Path]:
    """All ``.py`` files under ``root`` in a stable order."""
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def _display(path: Path) -> str:
    """Repo-relative posix path when possible, else the path as given."""
    text = path.as_posix()
    marker = "src/repro/"
    index = text.rfind(marker)
    return text[index:] if index >= 0 else text


def analyze_paths(paths: Iterable[Path], rules: Sequence = ALL_RULES,
                  ) -> Tuple[List[Finding], List[Finding]]:
    """Analyze every Python file under each of ``paths``."""
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for root in paths:
        for path in iter_python_files(Path(root)):
            source = path.read_text(encoding="utf-8")
            if _is_fixture(source):
                continue
            got, hidden = analyze_source(source, _display(path), rules)
            findings.extend(got)
            suppressed.extend(hidden)
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return findings, suppressed


def default_target() -> Path:
    """The ``src/repro`` tree this installation runs from."""
    import repro

    return Path(repro.__file__).resolve().parent


def analyze_tree(root: Path = None,
                 ) -> Tuple[List[Finding], List[Finding]]:
    """Analyze the whole package (or ``root``) with every rule."""
    return analyze_paths([root if root is not None else default_target()])
