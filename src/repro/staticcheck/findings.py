"""Finding records and the rule catalog.

Each static rule has a stable code (``DET*`` for determinism hazards,
``SAF*`` for crash-injection safety, ``SUP*`` for suppression hygiene).
The catalog below is the single source of truth used by ``--list-rules``,
the documentation, and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

#: code -> one-line description.  Keep in sync with the rule classes in
#: :mod:`repro.staticcheck.rules` (the tests assert the mapping).
RULE_CATALOG = {
    "DET001": ("wall-clock read (time.time / datetime.now / ...) in "
               "simulation-driven code; use Environment.now"),
    "DET002": ("draw from the global random module (or unseeded "
               "random.Random()); use RngRegistry streams"),
    "DET003": ("iteration over an unordered set expression; wrap in "
               "sorted(...) before the order can reach the event queue"),
    "CONC001": ("local snapshot of a mutable shared attribute is used "
                "after a yield point without re-validation; other "
                "processes may have changed it (stale read)"),
    "RES001": ("acquired resource (watch, lease, claim, ...) is not "
               "released on every path out of the function; wrap the "
               "use in try/finally"),
    "SAF001": ("exception handler can swallow sim.core.Interrupt — "
               "broad catch, or an Interrupt handler that does not "
               "re-raise on every path"),
    "SAF002": ("simulation process generator yields a non-Event literal; "
               "processes may only yield Event subclasses"),
    "SAF003": ("unbounded retry loop: 'while True' around a backoff sleep "
               "with no attempt cap or deadline; bound it with "
               "for-range(max_attempts) or a Deadline check"),
    "SAF004": ("Event/Timeout constructed but never yielded, stored, or "
               "triggered; a waiter on it can never wake (lost wakeup)"),
    "PERF001": ("O(all subscribers) scan over a watcher/listener "
                "collection in a notify/emit hot path; index "
                "subscribers by match key"),
    "SUP001": ("staticcheck suppression without a reason; write "
               "# staticcheck: ignore[CODE] <why it is safe>"),
}

#: code -> (why it matters, minimal violating example, compliant fix).
#: Drives ``--explain RULE_ID`` and the DESIGN.md rule table.
RULE_EXPLANATIONS = {
    "DET001": (
        "Simulated experiments must replay byte-identically from a seed; "
        "any wall-clock read couples results to the host machine.",
        "started = time.time()",
        "started = env.now",
    ),
    "DET002": (
        "The global random module shares hidden state across every "
        "caller and import order; draws are not attributable to a seed "
        "stream.",
        "delay = random.uniform(0, 1)",
        "delay = rng.stream('backoff:etcd').uniform(0, 1)",
    ),
    "DET003": (
        "Set iteration order depends on PYTHONHASHSEED; if it reaches "
        "the event queue, replays diverge between interpreter runs.",
        "for node in {a, b, c}: schedule(node)",
        "for node in sorted({a, b, c}): schedule(node)",
    ),
    "CONC001": (
        "Yields are the only preemption points in the kernel: between "
        "a yield and its resumption any other process may mutate shared "
        "state, so a pre-yield snapshot can be stale.  Re-read the "
        "attribute after resuming, or compare it against a fresh read.",
        "leader = self.leader\n"
        "yield env.timeout(1)\n"
        "leader.send(msg)        # leader may have changed",
        "yield env.timeout(1)\n"
        "if self.leader is not None:\n"
        "    self.leader.send(msg)",
    ),
    "RES001": (
        "Watches, leases and claims registered with a substrate outlive "
        "the function unless explicitly released; a path that returns "
        "or raises early leaks them and the substrate fans out to dead "
        "consumers forever.",
        "w = store.watch_prefix(p)\n"
        "if bad: return           # leaks the watcher\n"
        "w.cancel()",
        "w = store.watch_prefix(p)\n"
        "try:\n"
        "    ...\n"
        "finally:\n"
        "    w.cancel()",
    ),
    "SAF001": (
        "Crash injection is delivered as sim.core.Interrupt; a handler "
        "that absorbs it on any path converts an injected crash into "
        "normal control flow and invalidates recovery measurements.",
        "except Interrupt:\n"
        "    if done: return      # swallows on this path\n"
        "    raise",
        "except Interrupt:\n"
        "    cleanup()\n"
        "    raise",
    ),
    "SAF002": (
        "The kernel resumes processes only through Event subclasses; "
        "yielding a literal crashes the run at a non-deterministic "
        "point at runtime instead of failing at lint time.",
        "yield 5",
        "yield env.timeout(5)",
    ),
    "SAF003": (
        "Under a permanent outage an uncapped retry loop spins forever "
        "and hides the failure instead of surfacing it.",
        "while True:\n"
        "    try: op()\n"
        "    except StoreError:\n"
        "        yield env.timeout(1)",
        "for attempt in range(policy.max_attempts):\n"
        "    ...",
    ),
    "SAF004": (
        "An event nobody can reach can never be triggered — a process "
        "that would later wait on it sleeps forever (lost wakeup).",
        "done = env.event()       # never yielded or stored",
        "done = env.event()\n"
        "self._done = done        # observable: someone can trigger it",
    ),
    "PERF001": (
        "Fanout paths run once per mutation; scanning every registered "
        "watcher to find the few that match makes writes O(subscribers) "
        "and dominates large-scenario runtime.  Index the collection by "
        "what subscribers match on, or — if every element really must "
        "see every notification — suppress with that reason.",
        "def _notify(self, event):\n"
        "    for w in self._watchers:\n"
        "        if w.matches(event.key):\n"
        "            w.deliver(event)",
        "def _notify(self, event):\n"
        "    for w in self._index.matching(event.key):\n"
        "        w.deliver(event)",
    ),
    "SUP001": (
        "An unexplained suppression is silent drift: nobody can tell "
        "whether the ignored finding is safe or forgotten.",
        "risky()  # staticcheck: ignore[DET001]",
        "risky()  # staticcheck: ignore[DET001] replay-safe: <why>",
    ),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    code: str
    path: str
    line: int
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        return f"{self.location}: {self.code} {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.code)
