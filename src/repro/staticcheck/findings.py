"""Finding records and the rule catalog.

Each static rule has a stable code (``DET*`` for determinism hazards,
``SAF*`` for crash-injection safety, ``SUP*`` for suppression hygiene).
The catalog below is the single source of truth used by ``--list-rules``,
the documentation, and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

#: code -> one-line description.  Keep in sync with the rule classes in
#: :mod:`repro.staticcheck.rules` (the tests assert the mapping).
RULE_CATALOG = {
    "DET001": ("wall-clock read (time.time / datetime.now / ...) in "
               "simulation-driven code; use Environment.now"),
    "DET002": ("draw from the global random module (or unseeded "
               "random.Random()); use RngRegistry streams"),
    "DET003": ("iteration over an unordered set expression; wrap in "
               "sorted(...) before the order can reach the event queue"),
    "CONC001": ("local snapshot of a mutable shared attribute is used "
                "after a yield point without re-validation; other "
                "processes may have changed it (stale read)"),
    "CONC002": ("local snapshot of a mutable shared attribute is used "
                "after a call whose callee transitively yields; the "
                "callee can block and other processes may have changed "
                "it (interprocedural stale read)"),
    "DET004": ("call chain from simulation-driven code reaches a "
               "wall-clock read or global random draw in a callee; "
               "plumb env.now / an RngRegistry stream through the "
               "chain (transitive nondeterminism)"),
    "RES001": ("acquired resource (watch, lease, claim, ...) is not "
               "released on every path out of the function; wrap the "
               "use in try/finally"),
    "RES002": ("resource obtained from a wrapper (or kept after a "
               "use-only callee) is never released; ownership stayed "
               "in this function across the call boundary and leaks"),
    "SAF001": ("exception handler can swallow sim.core.Interrupt — "
               "broad catch, or an Interrupt handler that does not "
               "re-raise on every path"),
    "SAF002": ("simulation process generator yields a non-Event literal; "
               "processes may only yield Event subclasses"),
    "SAF003": ("unbounded retry loop: 'while True' around a backoff sleep "
               "with no attempt cap or deadline; bound it with "
               "for-range(max_attempts) or a Deadline check"),
    "SAF004": ("Event/Timeout constructed but never yielded, stored, or "
               "triggered; a waiter on it can never wake (lost wakeup)"),
    "SAF005": ("nested retry policies across the call chain: a retry "
               "loop invokes an operation that already retries "
               "internally, multiplying attempts and compounding "
               "backoff; retry at exactly one layer"),
    "PERF001": ("O(all subscribers) scan over a watcher/listener "
                "collection in a notify/emit hot path; index "
                "subscribers by match key"),
    "PERF002": ("notify/emit hot path calls a helper that transitively "
                "performs a linear watcher/listener scan; every "
                "notification pays O(all subscribers) in the callee"),
    "PERF003": ("full-store scan (list_*/store .values()) inside a "
                "scoring or priority hot path; every decision pays "
                "O(candidates x store) — maintain an incremental index "
                "instead"),
    "MAN001": ("manifest schema violation: unknown field, wrong type, "
               "or missing required field in a scenario manifest"),
    "MAN002": ("dangling manifest cross-reference: fault plan targets "
               "an undeclared node/cell/scenario, or a hypothesis "
               "names an unknown check or counter"),
    "MAN003": ("statically infeasible manifest: declared workload "
               "demand provably exceeds declared GPU/memory capacity "
               "(bin-packing lower bound), or tenant quotas exceed "
               "the global quota"),
    "MAN004": ("manifest determinism hazard: unseeded trace/fault "
               "section or absolute wall-clock timestamp in a "
               "relative-time schedule"),
    "MAN005": ("dead or shadowed manifest declaration: fault past the "
               "run window or inside a blackout window of its own "
               "target, duplicate key, unreferenced topology block"),
    "SUP001": ("staticcheck suppression without a reason; write "
               "# staticcheck: ignore[CODE] <why it is safe>"),
}

#: code -> (why it matters, minimal violating example, compliant fix).
#: Drives ``--explain RULE_ID`` and the DESIGN.md rule table.
RULE_EXPLANATIONS = {
    "DET001": (
        "Simulated experiments must replay byte-identically from a seed; "
        "any wall-clock read couples results to the host machine.",
        "started = time.time()",
        "started = env.now",
    ),
    "DET002": (
        "The global random module shares hidden state across every "
        "caller and import order; draws are not attributable to a seed "
        "stream.",
        "delay = random.uniform(0, 1)",
        "delay = rng.stream('backoff:etcd').uniform(0, 1)",
    ),
    "DET003": (
        "Set iteration order depends on PYTHONHASHSEED; if it reaches "
        "the event queue, replays diverge between interpreter runs.",
        "for node in {a, b, c}: schedule(node)",
        "for node in sorted({a, b, c}): schedule(node)",
    ),
    "CONC001": (
        "Yields are the only preemption points in the kernel: between "
        "a yield and its resumption any other process may mutate shared "
        "state, so a pre-yield snapshot can be stale.  Re-read the "
        "attribute after resuming, or compare it against a fresh read.",
        "leader = self.leader\n"
        "yield env.timeout(1)\n"
        "leader.send(msg)        # leader may have changed",
        "yield env.timeout(1)\n"
        "if self.leader is not None:\n"
        "    self.leader.send(msg)",
    ),
    "CONC002": (
        "A callee that transitively reaches a yield point can give up "
        "control before returning, so calling it is as preemptive as "
        "yielding directly: any snapshot of shared state taken before "
        "the call may be stale afterwards.  CONC001 catches the literal "
        "yield; this rule catches the same hazard hidden behind a call "
        "boundary, and its message prints the yielding call chain.",
        "leader = self.leader\n"
        "self._replicate(entry)   # _replicate yields internally\n"
        "leader.send(ack)         # leader may have changed",
        "self._replicate(entry)\n"
        "if self.leader is not None:\n"
        "    self.leader.send(ack)",
    ),
    "DET004": (
        "DET001/DET002 flag the nondeterministic source where it is "
        "written; but the replay hazard materializes where that source "
        "feeds simulation-driven code.  This rule reports the call "
        "site in a yielding (sim-facing) function whose callee chain "
        "reaches a wall-clock read or global random draw, with the "
        "full chain in the message.  A reasoned DET001/DET002 "
        "suppression at the source declares it replay-safe and stops "
        "the taint from cascading into every caller.",
        "def run(self, env):\n"
        "    delay = self._jitter()   # _jitter -> random.uniform\n"
        "    yield env.timeout(delay)",
        "def run(self, env, rng):\n"
        "    delay = self._jitter(rng.stream('jitter'))\n"
        "    yield env.timeout(delay)",
    ),
    "RES001": (
        "Watches, leases and claims registered with a substrate outlive "
        "the function unless explicitly released; a path that returns "
        "or raises early leaks them and the substrate fans out to dead "
        "consumers forever.",
        "w = store.watch_prefix(p)\n"
        "if bad: return           # leaks the watcher\n"
        "w.cancel()",
        "w = store.watch_prefix(p)\n"
        "try:\n"
        "    ...\n"
        "finally:\n"
        "    w.cancel()",
    ),
    "RES002": (
        "RES001 sees acquisitions written in the function itself; "
        "ownership also arrives through calls.  A wrapper whose "
        "summary says it returns a fresh watch/lease makes its call "
        "site an acquisition site, and passing a resource to a callee "
        "that only *uses* its parameter (never releases or stores it) "
        "leaves ownership — and the leak — with the caller.  Passing "
        "to an unknown callee still counts as an ownership transfer, "
        "so the rule under-approximates rather than guesses.",
        "w = make_watch(store, p)  # wrapper returns a fresh watch\n"
        "consume(w)                # use-only callee\n"
        "return                    # nobody ever cancels w",
        "w = make_watch(store, p)\n"
        "try:\n"
        "    consume(w)\n"
        "finally:\n"
        "    w.cancel()",
    ),
    "SAF001": (
        "Crash injection is delivered as sim.core.Interrupt; a handler "
        "that absorbs it on any path converts an injected crash into "
        "normal control flow and invalidates recovery measurements.",
        "except Interrupt:\n"
        "    if done: return      # swallows on this path\n"
        "    raise",
        "except Interrupt:\n"
        "    cleanup()\n"
        "    raise",
    ),
    "SAF002": (
        "The kernel resumes processes only through Event subclasses; "
        "yielding a literal crashes the run at a non-deterministic "
        "point at runtime instead of failing at lint time.",
        "yield 5",
        "yield env.timeout(5)",
    ),
    "SAF003": (
        "Under a permanent outage an uncapped retry loop spins forever "
        "and hides the failure instead of surfacing it.",
        "while True:\n"
        "    try: op()\n"
        "    except StoreError:\n"
        "        yield env.timeout(1)",
        "for attempt in range(policy.max_attempts):\n"
        "    ...",
    ),
    "SAF004": (
        "An event nobody can reach can never be triggered — a process "
        "that would later wait on it sleeps forever (lost wakeup).",
        "done = env.event()       # never yielded or stored",
        "done = env.event()\n"
        "self._done = done        # observable: someone can trigger it",
    ),
    "SAF005": (
        "Retry policies compose multiplicatively: an outer 4-attempt "
        "loop around an operation that itself retries 4 times makes 16 "
        "attempts, and the exponential backoffs compound into stalls "
        "no single policy describes.  Flagged at the outer call site — "
        "a retry loop calling a transitively-retrying function, or a "
        "retrying operation passed into a retrying wrapper.  Retry at "
        "exactly one layer and let inner failures surface.",
        "for attempt in range(4):\n"
        "    try:\n"
        "        yield from fetch_with_retry(env, key)\n"
        "    except StoreError:\n"
        "        yield env.timeout(2 ** attempt)",
        "yield from fetch_with_retry(env, key)  # one policy, inside",
    ),
    "PERF001": (
        "Fanout paths run once per mutation; scanning every registered "
        "watcher to find the few that match makes writes O(subscribers) "
        "and dominates large-scenario runtime.  Index the collection by "
        "what subscribers match on, or — if every element really must "
        "see every notification — suppress with that reason.",
        "def _notify(self, event):\n"
        "    for w in self._watchers:\n"
        "        if w.matches(event.key):\n"
        "            w.deliver(event)",
        "def _notify(self, event):\n"
        "    for w in self._index.matching(event.key):\n"
        "        w.deliver(event)",
    ),
    "PERF002": (
        "Moving a subscriber scan out of the notify path and into a "
        "helper does not make it cheaper — the hot path still pays "
        "O(all subscribers) per notification, it just hides from "
        "PERF001's local view.  This rule follows the call chain from "
        "hot-named functions to the scanning callee and reports at the "
        "hot-path call site.  A reasoned PERF001 suppression on the "
        "scan itself (exact fanout) removes it from the summaries.",
        "def _notify(self, event):\n"
        "    self._deliver_all(event)   # scans self._watchers inside",
        "def _notify(self, event):\n"
        "    for w in self._index.matching(event.key):\n"
        "        w.deliver(event)",
    ),
    "PERF003": (
        "Scoring and priority functions run once per *candidate* per "
        "decision — the hottest multiplier in a scheduler.  A "
        "``list_*`` call or store ``.values()`` scan there makes every "
        "decision cost O(candidates x store size), which is what "
        "sampling and caching cannot fix from the outside.  Maintain "
        "the needed count as an incremental index updated from watch "
        "events and read it in O(1); a reference path that must scan "
        "(e.g. under a perf-disable flag) gets a reasoned suppression.",
        "def _score(self, pod, node):\n"
        "    peers = self.api.list_pods(owner=pod.owner)\n"
        "    return pack_score(node, len(peers))",
        "def _score(self, pod, node):\n"
        "    peers = self._owner_counts.get((pod.owner, node), 0)\n"
        "    return pack_score(node, peers)",
    ),
    "MAN001": (
        "A manifest field the compiler does not understand is a "
        "scenario that silently runs something other than what was "
        "declared — a typo'd 'interarival_s' would leave the default "
        "in force.  The schema check rejects unknown fields, "
        "mis-typed values, and missing required fields at the YAML "
        "token that is wrong.",
        "workload:\n  interarival_s: 20   # typo: default silently wins",
        "workload:\n  interarrival_s: 20",
    ),
    "MAN002": (
        "A fault plan aimed at a node the topology never provisions, "
        "or a hypothesis naming a counter the report never carries, "
        "makes the run a vacuous pass: nothing fires, nothing is "
        "checked, and the scenario looks green.  Every cross-reference "
        "(node/cell targets, use: scenario refs, hypothesis checks, "
        "counter names) must resolve against a declaration.",
        "faults:\n  - {at_s: 100, kind: node-crash, target: node-K80-9}",
        "faults:\n  - {at_s: 100, kind: node-crash, target: node-K80-0}",
    ),
    "MAN003": (
        "A gang that provably cannot fit the declared capacity queues "
        "forever; the run then 'passes' by measuring an idle cluster. "
        "A bin-packing lower bound (largest item vs largest bin, "
        "total placeable learners) and quota-sum checks reject such "
        "manifests before any sim event runs.",
        "topology: {nodes: [{count: 1, gpus_per_node: 2, gpu_type: K80}]}\n"
        "workload: {learners: 4, gpus_per_learner: 4}",
        "topology: {nodes: [{count: 4, gpus_per_node: 4, gpu_type: K80}]}\n"
        "workload: {learners: 4, gpus_per_learner: 4}",
    ),
    "MAN004": (
        "Scenario runs must replay byte-identically from a seed.  A "
        "trace or fault section seeded from the wall clock, or an "
        "absolute timestamp in a schedule that is otherwise relative "
        "seconds, couples the run to the host machine.",
        "workload:\n  seed: wall-clock",
        "workload:\n  seed: inherit   # derived from the run seed",
    ),
    "MAN005": (
        "A fault scheduled after horizon+settle never fires; one "
        "aimed inside a blackout window of its own target hits a "
        "component that is already dark; a duplicate key or a "
        "topology block nothing references is declared intent the "
        "run silently ignores.  All four shapes are dead weight that "
        "reads as coverage.",
        "run: {horizon_s: 900, settle_s: 240}\n"
        "faults:\n  - {at_s: 2000, kind: etcd-leader-kill}",
        "run: {horizon_s: 900, settle_s: 240}\n"
        "faults:\n  - {at_s: 600, kind: etcd-leader-kill}",
    ),
    "SUP001": (
        "An unexplained suppression is silent drift: nobody can tell "
        "whether the ignored finding is safe or forgotten.",
        "risky()  # staticcheck: ignore[DET001]",
        "risky()  # staticcheck: ignore[DET001] replay-safe: <why>",
    ),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``column`` is 1-based and only populated by analyses that know it
    (the YAML manifest rules); 0 means "line-only anchor", which is
    what the Python AST rules report.
    """

    code: str
    path: str
    line: int
    message: str
    column: int = 0

    @property
    def location(self) -> str:
        if self.column > 0:
            return f"{self.path}:{self.line}:{self.column}"
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        return f"{self.location}: {self.code} {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.column, self.code)
