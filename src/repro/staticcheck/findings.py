"""Finding records and the rule catalog.

Each static rule has a stable code (``DET*`` for determinism hazards,
``SAF*`` for crash-injection safety, ``SUP*`` for suppression hygiene).
The catalog below is the single source of truth used by ``--list-rules``,
the documentation, and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

#: code -> one-line description.  Keep in sync with the rule classes in
#: :mod:`repro.staticcheck.rules` (the tests assert the mapping).
RULE_CATALOG = {
    "DET001": ("wall-clock read (time.time / datetime.now / ...) in "
               "simulation-driven code; use Environment.now"),
    "DET002": ("draw from the global random module (or unseeded "
               "random.Random()); use RngRegistry streams"),
    "DET003": ("iteration over an unordered set expression; wrap in "
               "sorted(...) before the order can reach the event queue"),
    "SAF001": ("broad exception handler can swallow sim.core.Interrupt; "
               "catch Interrupt first and re-raise it"),
    "SAF002": ("simulation process generator yields a non-Event literal; "
               "processes may only yield Event subclasses"),
    "SAF003": ("unbounded retry loop: 'while True' around a backoff sleep "
               "with no attempt cap or deadline; bound it with "
               "for-range(max_attempts) or a Deadline check"),
    "SUP001": ("staticcheck suppression without a reason; write "
               "# staticcheck: ignore[CODE] <why it is safe>"),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    code: str
    path: str
    line: int
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        return f"{self.location}: {self.code} {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.code)
