"""Flow-sensitive rules built on the CFG + dataflow framework.

These rules reason about *paths*, which the syntactic walkers in
:mod:`repro.staticcheck.rules` cannot: a resource released in one branch
but leaked in another, a shared attribute read before a yield and used
after it, an event constructed on a path that never yields it.  Each
rule builds per-function CFGs (:mod:`repro.staticcheck.cfg`) and, where
it needs facts joined over paths, runs a forward may-analysis
(:mod:`repro.staticcheck.dataflow`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.cfg import (
    CFG,
    CFGNode,
    build_cfg,
    own_expr_roots,
    walk_own,
)
from repro.staticcheck.dataflow import ForwardAnalysis, solve_forward
from repro.staticcheck.rules import Rule, canonicalize, dotted_name

#: Method names whose return value is a resource the caller must release.
ACQUIRE_METHODS = frozenset({
    "watch", "watch_prefix", "grant_lease", "acquire", "claim",
    "checkout",
})

#: Method names that release a held resource.
RELEASE_METHODS = frozenset({
    "cancel", "revoke", "release", "close", "unsubscribe", "stop",
})

#: Simulation event factories for SAF004 (receiver ends in ``env``).
EVENT_FACTORY_ATTRS = frozenset({"event", "timeout"})
#: Direct event-class constructions for SAF004 (canonical last segment).
EVENT_CLASS_NAMES = frozenset({"Event", "Timeout"})


def module_functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def own_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """The function's own statements, nested function bodies excluded."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.stmt):
            yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.stmt, ast.ExceptHandler)):
                stack.append(child)


def _assigned_names(stmt: ast.AST) -> Set[str]:
    """Local names this node (re)binds, from its own expressions."""
    names: Set[str] = set()
    for node in walk_own(own_expr_roots(stmt)):
        if isinstance(node, ast.Name) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
    if isinstance(stmt, ast.ExceptHandler) and stmt.name:
        names.add(stmt.name)
    return names


def _name_loads(stmt: ast.AST) -> List[ast.Name]:
    return [node for node in walk_own(own_expr_roots(stmt))
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)]


def _attr_chains_loaded(stmt: ast.AST) -> Set[str]:
    """All dotted attribute chains read in this node's own expressions."""
    chains: Set[str] = set()
    for node in walk_own(own_expr_roots(stmt)):
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None:
                chains.add(dotted)
    return chains


class FlowRule(Rule):
    """A rule that inspects each function through its CFG."""

    def check(self, ctx) -> List:
        findings = []
        for func in module_functions(ctx.tree):
            findings.extend(self.check_function(ctx, func))
        return findings

    def check_function(self, ctx, func) -> List:  # pragma: no cover
        raise NotImplementedError


# -- CONC001: stale read across a yield point ------------------------------


class _StaleReadAnalysis(ForwardAnalysis):
    """Facts: (var, def node index, attr chain, crossed a yield)."""

    def transfer(self, node: CFGNode, fact):
        stmt = node.stmt
        if node.has_yield:
            fact = frozenset((var, at, chain, True)
                             for var, at, chain, _crossed in fact)
        # A statement that loads the snapshot AND freshly re-reads its
        # chain (`if leader is self.leader:`) revalidates the snapshot.
        loads = {name.id for name in _name_loads(stmt)}
        if loads:
            fresh = _attr_chains_loaded(stmt)
            if fresh:
                fact = frozenset(f for f in fact
                                 if not (f[0] in loads and f[2] in fresh))
        assigned = _assigned_names(stmt)
        if assigned:
            fact = frozenset(f for f in fact if f[0] not in assigned)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            chain = dotted_name(stmt.value)
            if chain is not None and "." in chain:
                fact = fact | {(stmt.targets[0].id, node.index, chain,
                                False)}
        return fact


class StaleYieldReadRule(FlowRule):
    """CONC001: a local captured from shared state is used across a yield.

    Between a ``yield`` and the resumption, any other process may run —
    yields are the only preemption points in this kernel, so a local
    snapshot of a *mutable* attribute (one the module itself assigns
    somewhere) taken before the yield can be stale afterwards.  The rule
    flags a post-yield use of such a snapshot unless the same statement
    also re-reads the attribute chain (compare-against-fresh is exactly
    the re-validation idiom the rule wants to see).
    """

    code = "CONC001"

    @staticmethod
    def _mutated_attrs(tree: ast.Module) -> Set[str]:
        mutated: Set[str] = set()
        for node in ast.walk(tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    mutated.add(target.attr)
        return mutated

    def check(self, ctx) -> List:
        self._mutated = self._mutated_attrs(ctx.tree)
        return super().check(ctx)

    def check_function(self, ctx, func) -> List:
        cfg = build_cfg(func)
        if not cfg.yield_nodes():
            return []
        solution = solve_forward(cfg, _StaleReadAnalysis())
        findings = []
        seen: Set[Tuple[int, str]] = set()
        for node in cfg.stmt_nodes():
            fact_in, _out = solution[node.index]
            stale = {var: chain for var, _at, chain, crossed in fact_in
                     if crossed}
            if not stale:
                continue
            fresh = _attr_chains_loaded(node.stmt)
            for name in _name_loads(node.stmt):
                chain = stale.get(name.id)
                if chain is None or chain in fresh:
                    continue
                terminal = chain.rsplit(".", 1)[-1]
                if terminal not in self._mutated:
                    continue
                key = (node.line, name.id)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(self.finding(
                    ctx, node.stmt,
                    f"{name.id!r} holds a pre-yield snapshot of {chain}, "
                    f"which other processes may have changed by now; "
                    f"re-read {chain} after resuming (or compare against "
                    f"a fresh read in this statement)"))
        return findings


# -- RES001: resource not released on every path ---------------------------


def _var_release_and_escape(stmt: ast.AST, var: str) -> Tuple[bool, bool]:
    """(released, escaped) for ``var`` in this node's own expressions.

    A load of ``var`` as the receiver of a non-release method call
    (``var.get()``) is plain *use* — neither.  A release-method call on
    it releases.  Any other load (argument, alias, return/yield value,
    container element, attribute read such as ``var.id`` passed along)
    makes the resource escape the function's responsibility.
    """
    released = False
    receiver_uses: Set[int] = set()
    for node in walk_own(own_expr_roots(stmt)):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == var:
            if node.func.attr in RELEASE_METHODS:
                released = True
            receiver_uses.add(id(node.func.value))
    escaped = any(
        isinstance(node, ast.Name) and node.id == var
        and isinstance(node.ctx, ast.Load)
        and id(node) not in receiver_uses
        for node in walk_own(own_expr_roots(stmt)))
    return released, escaped


def _acquire_call(value: ast.AST) -> Optional[str]:
    """Dotted text of an acquire call, unwrapping ``yield <call>``."""
    if isinstance(value, (ast.Yield, ast.YieldFrom)):
        value = value.value
    if isinstance(value, ast.Call) and \
            isinstance(value.func, ast.Attribute) and \
            value.func.attr in ACQUIRE_METHODS:
        dotted = dotted_name(value.func)
        return dotted if dotted is not None else value.func.attr
    return None


class _ResourceAnalysis(ForwardAnalysis):
    """Facts: (var, def node index, acquire-call text) still held."""

    def transfer(self, node: CFGNode, fact):
        stmt = node.stmt
        live = set(fact)
        for entry in fact:
            var = entry[0]
            released, escaped = _var_release_and_escape(stmt, var)
            if released or escaped:
                live.discard(entry)
        assigned = _assigned_names(stmt)
        if assigned:
            live = {f for f in live if f[0] not in assigned}
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            acquired = _acquire_call(stmt.value)
            if acquired is not None:
                live.add((stmt.targets[0].id, node.index, acquired))
        return frozenset(live)


class ResourceLeakRule(FlowRule):
    """RES001: an acquired resource must be released on every exit path.

    Tracks locals bound from acquire-vocabulary calls (``watch``,
    ``watch_prefix``, ``grant_lease``, ``acquire``, ``claim``, ...).
    Passing the resource (or one of its attributes) to another call,
    storing it, returning or yielding it hands ownership elsewhere and
    ends tracking; a release-method call (``cancel``, ``revoke``,
    ``release``, ``close``, ...) discharges it.  If any path out of the
    function — including an early ``return`` or ``raise`` — still holds
    the resource untouched, the acquisition site is flagged.  The
    canonical fix is ``try/finally`` around the use.
    """

    code = "RES001"

    def check_function(self, ctx, func) -> List:
        cfg = build_cfg(func)
        has_acquire = any(
            _acquire_call(node.stmt.value) is not None
            for node in cfg.stmt_nodes()
            if isinstance(node.stmt, ast.Assign))
        if not has_acquire:
            return []
        solution = solve_forward(cfg, _ResourceAnalysis())
        leaked_at, _out = solution[cfg.exit]
        findings = []
        for var, def_index, call_text in sorted(
                leaked_at, key=lambda f: (cfg.node(f[1]).line, f[0])):
            findings.append(self.finding(
                ctx, cfg.node(def_index).stmt,
                f"{var!r} acquired via {call_text}() is not released on "
                f"every path out of this function; release it in a "
                f"try/finally (cancel/revoke/release/close)"))
        return findings


# -- SAF004: event constructed but never observable ------------------------


class LostWakeupRule(FlowRule):
    """SAF004: an Event/Timeout no one can ever see is a lost wakeup.

    ``env.event()`` whose result is dropped (a bare expression
    statement) or bound to a local that is never read again can never
    be yielded, stored, or triggered — the classic lost-wakeup bug
    where a waiter sleeps forever (or, for a Timeout, a delay fires
    into the void).  Loads inside nested functions count as uses:
    closures capturing the event are the normal wiring pattern.
    Statements under ``with pytest.raises(...)`` are exempt — there the
    constructor is invoked *for* its exception, not for the event.
    """

    code = "SAF004"

    @staticmethod
    def _raises_block_stmts(func: ast.AST) -> Set[int]:
        """ids of statements inside a ``with ...raises(...)`` body."""
        covered: Set[int] = set()
        for node in ast.walk(func):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    dotted = dotted_name(expr.func)
                    if dotted is not None and \
                            dotted.rsplit(".", 1)[-1] == "raises":
                        covered.update(
                            id(sub) for body_stmt in node.body
                            for sub in ast.walk(body_stmt))
                        break
        return covered

    def _is_event_ctor(self, ctx, node: ast.AST) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in EVENT_FACTORY_ATTRS:
            receiver = dotted_name(node.func.value)
            if receiver is not None and \
                    receiver.rsplit(".", 1)[-1] == "env":
                return f"env.{node.func.attr}()"
        dotted = dotted_name(node.func)
        if dotted is not None:
            canonical = canonicalize(dotted, ctx.imports)
            if canonical.rsplit(".", 1)[-1] in EVENT_CLASS_NAMES:
                return f"{dotted}()"
        return None

    @staticmethod
    def _loads_anywhere(func: ast.AST) -> Set[str]:
        """Every Name load in the function, nested functions included."""
        return {node.id for node in ast.walk(func)
                if isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)}

    def check_function(self, ctx, func) -> List:
        findings = []
        loads: Optional[Set[str]] = None
        in_raises = self._raises_block_stmts(func)
        for stmt in own_statements(func):
            if id(stmt) in in_raises:
                continue
            if isinstance(stmt, ast.Expr):
                ctor = self._is_event_ctor(ctx, stmt.value)
                if ctor is not None:
                    findings.append(self.finding(
                        ctx, stmt,
                        f"{ctor} is constructed and immediately "
                        f"dropped; nothing can ever wait on or observe "
                        f"it (lost wakeup)"))
            elif isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                ctor = self._is_event_ctor(ctx, stmt.value)
                if ctor is None:
                    continue
                if loads is None:
                    loads = self._loads_anywhere(func)
                if stmt.targets[0].id not in loads:
                    findings.append(self.finding(
                        ctx, stmt,
                        f"{ctor} is bound to "
                        f"{stmt.targets[0].id!r} but the name is never "
                        f"read; the event can never be yielded or "
                        f"triggered (lost wakeup)"))
        return findings


#: Flow-sensitive rules, in catalog order.
FLOW_RULES = (
    StaleYieldReadRule(),
    ResourceLeakRule(),
    LostWakeupRule(),
)
