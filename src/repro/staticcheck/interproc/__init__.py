"""Interprocedural analysis: call graph, effect summaries, rules.

Entry point is :func:`build_project`: hand it the parsed modules of an
analysis run and it returns a :class:`Project` with the call graph
indexed, per-function effect summaries propagated to a fixpoint, and
(optionally) a content-hash cache consulted so unchanged modules skip
extraction entirely.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional

from repro.staticcheck.interproc.cache import (
    CACHE_VERSION,
    CacheStats,
    SummaryCache,
)
from repro.staticcheck.interproc.callgraph import (
    ModuleInfo,
    ModuleRecord,
    Project,
    extract_module,
)
from repro.staticcheck.interproc.rules import INTERPROC_RULES
from repro.staticcheck.interproc.summaries import (
    Summary,
    compute_summaries,
)

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "INTERPROC_RULES",
    "ModuleInfo",
    "ModuleRecord",
    "Project",
    "Summary",
    "SummaryCache",
    "build_project",
    "compute_summaries",
    "extract_module",
]


def build_project(records: Iterable[ModuleRecord],
                  cache_path: Optional[Path] = None) -> Project:
    """Extract (or cache-load) every module, then propagate summaries.

    ``records`` whose ``tree`` is ``None`` must still parse — callers
    filter out syntactically broken files first.  When ``cache_path``
    is given, unchanged modules (by content hash) are rebuilt from the
    cache without touching their AST, and the refreshed cache is
    written back; ``project.cache_stats`` reports the split.
    """
    import ast

    cache = SummaryCache(cache_path)
    modules = {}
    for record in records:
        info = cache.lookup(record.display_path, record.source)
        if info is None:
            tree = record.tree if record.tree is not None \
                else ast.parse(record.source)
            info = extract_module(record.display_path, record.source,
                                  tree)
            cache.store(record.display_path, record.source, info)
        modules[record.display_path] = info
    cache.save()
    project = Project(modules)
    compute_summaries(project)
    project.cache_stats = cache.stats
    return project
