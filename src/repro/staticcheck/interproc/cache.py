"""Content-hash summary cache: re-extract only changed modules.

The cache stores, per display path, the SHA-256 of the module source
and the serialized :class:`~repro.staticcheck.interproc.callgraph.
ModuleInfo` (local effect summaries, call sites, class table, import
map).  On a warm run an unchanged module is rebuilt from JSON without
touching its AST — extraction, the expensive half of the
interprocedural pass, is skipped entirely; only the cross-module
propagation fixpoint (cheap: one graph walk over pre-digested facts)
runs every time, because a callee in *another* module may have changed.

Cache keying is therefore exactly per-module content: a byte-identical
rerun recomputes zero summaries (``CacheStats.recomputed == 0``), and
editing one module recomputes one.  The cache format is versioned;
a version bump (new effect facets) invalidates everything at once.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.staticcheck.interproc.callgraph import ModuleInfo

#: Bump when LocalFn/ModuleInfo serialization changes.
CACHE_VERSION = 1


@dataclass
class CacheStats:
    """How much extraction work the cache saved this run."""

    reused: int = 0
    recomputed: int = 0

    def render(self) -> str:
        return (f"summary cache: {self.reused} module(s) reused, "
                f"{self.recomputed} recomputed")


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SummaryCache:
    """JSON-on-disk map ``display path -> (hash, ModuleInfo)``."""

    def __init__(self, path: Optional[Path]):
        self.path = Path(path) if path is not None else None
        self.stats = CacheStats()
        self._old: Dict[str, dict] = {}
        self._new: Dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            try:
                data = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = {}
            if data.get("version") == CACHE_VERSION:
                self._old = data.get("modules", {})

    def lookup(self, display_path: str, source: str,
               ) -> Optional[ModuleInfo]:
        """The cached ModuleInfo when the content hash matches."""
        entry = self._old.get(display_path)
        if entry is None or entry.get("hash") != content_hash(source):
            return None
        try:
            info = ModuleInfo.from_dict(entry["data"])
        except (KeyError, TypeError):
            return None
        self.stats.reused += 1
        self._new[display_path] = entry
        return info

    def store(self, display_path: str, source: str,
              info: ModuleInfo) -> None:
        self.stats.recomputed += 1
        self._new[display_path] = {"hash": content_hash(source),
                                   "data": info.to_dict()}

    def save(self) -> None:
        """Persist entries for the modules seen this run."""
        if self.path is None:
            return
        payload = {"version": CACHE_VERSION, "modules": self._new}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8")
