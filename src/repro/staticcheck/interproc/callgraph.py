"""Project-wide call graph and per-function local effect extraction.

The graph covers module-level functions and depth-1 class methods of
every analyzed module.  Call sites are classified syntactically:

* ``name`` — a bare-name call (``helper(...)``), resolved against the
  module's own functions first, then through the import map;
* ``self`` — ``self.method(...)``, resolved through the enclosing class
  and its (import-resolved) base classes;
* ``dotted`` — ``mod.func(...)`` / ``Class.method(...)``, canonicalized
  through the import map and looked up project-wide (package
  ``__init__`` re-exports are followed to the defining module);
* ``unknown`` — everything else (a call on an arbitrary object, a call
  through a variable).  Unknown callees are counted but contribute no
  effects: the summaries deliberately under-approximate through them so
  interprocedural rules never report a finding they cannot witness with
  a concrete call chain.  The one place conservatism flips the other
  way is resource ownership (RES002), where passing a resource to an
  *unknown* callee is treated as an ownership transfer.

Everything extracted here is JSON-serializable (:class:`ModuleInfo`
round-trips through ``to_dict``/``from_dict``) so the summary cache can
skip re-extraction of unchanged modules entirely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.flowrules import (
    ACQUIRE_METHODS,
    RELEASE_METHODS,
)
from repro.staticcheck.rules import (
    GLOBAL_RANDOM_CALLS,
    LinearFanoutRule,
    UnboundedRetryRule,
    WALL_CLOCK_CALLS,
    build_import_map,
    canonicalize,
    dotted_name,
)
from repro.staticcheck.suppress import valid_suppression_lines

#: Call-site kinds.
NAME, SELF, DOTTED, UNKNOWN = "name", "self", "dotted", "unknown"


def module_name_of(display_path: str) -> str:
    """Dotted module name for a display path.

    ``src/repro/kube/api.py`` -> ``repro.kube.api``; paths without a
    ``src/`` component (fixtures, tmp files) use the file stem so that
    single-module analyses still get stable qualified names.
    """
    parts = display_path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<module>"


def iter_functions(tree: ast.Module,
                   ) -> Iterator[Tuple[Optional[str], ast.AST]]:
    """``(class name or None, function node)`` for every graphed
    function: module-level defs and depth-1 methods."""
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, stmt
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    yield stmt.name, sub


def own_scope(roots: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk nodes without descending into nested function/lambda
    bodies (their effects belong to their own graph nodes)."""
    stack: List[ast.AST] = list(roots)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def classify_ref(node: ast.AST) -> Tuple[str, str]:
    """``(kind, text)`` for a callable reference; see the docstring."""
    if isinstance(node, ast.Name):
        return NAME, node.id
    dotted = dotted_name(node)
    if dotted is None:
        return UNKNOWN, ""
    head, _, rest = dotted.partition(".")
    if head == "self" and rest and "." not in rest:
        return SELF, rest
    return DOTTED, dotted


def classify_call(call: ast.Call) -> Tuple[str, str]:
    """``(kind, text)`` for a call site; see the module docstring."""
    return classify_ref(call.func)


@dataclass
class ModuleRecord:
    """One module handed to ``build_project``: path, text, parsed AST."""

    display_path: str
    source: str
    tree: Optional[ast.Module] = None


@dataclass(frozen=True)
class CallSite:
    """One syntactic call site inside a function's own scope."""

    kind: str
    text: str
    line: int

    def to_list(self) -> list:
        return [self.kind, self.text, self.line]

    @staticmethod
    def from_list(data: list) -> "CallSite":
        return CallSite(data[0], data[1], data[2])


@dataclass
class LocalFn:
    """One function's local (pre-propagation) effect summary."""

    qname: str
    name: str
    cls: str               # "" for module-level functions
    line: int
    params: Tuple[str, ...] = ()
    yields_own: bool = False
    nondet_own: str = ""   # canonical nondet call, e.g. "time.time"
    retries_own: bool = False
    scan_own: str = ""     # scanned collection token, e.g. "_watchers"
    returns_acquire: str = ""    # acquire call text returned to caller
    returns_calls: Tuple[CallSite, ...] = ()
    param_release: Tuple[str, ...] = ()
    param_escape: Tuple[str, ...] = ()
    calls: Tuple[CallSite, ...] = ()
    unknown_calls: int = 0

    def to_dict(self) -> dict:
        return {
            "qname": self.qname, "name": self.name, "cls": self.cls,
            "line": self.line, "params": list(self.params),
            "yields_own": self.yields_own,
            "nondet_own": self.nondet_own,
            "retries_own": self.retries_own,
            "scan_own": self.scan_own,
            "returns_acquire": self.returns_acquire,
            "returns_calls": [c.to_list() for c in self.returns_calls],
            "param_release": list(self.param_release),
            "param_escape": list(self.param_escape),
            "calls": [c.to_list() for c in self.calls],
            "unknown_calls": self.unknown_calls,
        }

    @staticmethod
    def from_dict(data: dict) -> "LocalFn":
        return LocalFn(
            qname=data["qname"], name=data["name"], cls=data["cls"],
            line=data["line"], params=tuple(data["params"]),
            yields_own=data["yields_own"],
            nondet_own=data["nondet_own"],
            retries_own=data["retries_own"],
            scan_own=data["scan_own"],
            returns_acquire=data["returns_acquire"],
            returns_calls=tuple(CallSite.from_list(c)
                                for c in data["returns_calls"]),
            param_release=tuple(data["param_release"]),
            param_escape=tuple(data["param_escape"]),
            calls=tuple(CallSite.from_list(c) for c in data["calls"]),
            unknown_calls=data["unknown_calls"],
        )

    @property
    def short(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass
class ClassInfo:
    name: str
    bases: Tuple[str, ...] = ()          # dotted base names as written
    methods: Dict[str, str] = field(default_factory=dict)  # name->qname

    def to_dict(self) -> dict:
        return {"name": self.name, "bases": list(self.bases),
                "methods": dict(self.methods)}

    @staticmethod
    def from_dict(data: dict) -> "ClassInfo":
        return ClassInfo(data["name"], tuple(data["bases"]),
                         dict(data["methods"]))


@dataclass
class ModuleInfo:
    """Everything the interprocedural pass needs from one module."""

    display_path: str
    module: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)  # name->qname
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    local_fns: Dict[str, LocalFn] = field(default_factory=dict)
    mutated_attrs: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "display_path": self.display_path, "module": self.module,
            "imports": dict(self.imports),
            "functions": dict(self.functions),
            "classes": {name: c.to_dict()
                        for name, c in self.classes.items()},
            "local_fns": {q: f.to_dict()
                          for q, f in self.local_fns.items()},
            "mutated_attrs": list(self.mutated_attrs),
        }

    @staticmethod
    def from_dict(data: dict) -> "ModuleInfo":
        return ModuleInfo(
            display_path=data["display_path"], module=data["module"],
            imports=dict(data["imports"]),
            functions=dict(data["functions"]),
            classes={name: ClassInfo.from_dict(c)
                     for name, c in data["classes"].items()},
            local_fns={q: LocalFn.from_dict(f)
                       for q, f in data["local_fns"].items()},
            mutated_attrs=tuple(data["mutated_attrs"]),
        )


# -- local effect extraction ------------------------------------------------


def _match_nondet(canonical: str, args_empty: bool) -> str:
    """The canonical nondet source a call matches, or ``""``."""
    for known in WALL_CLOCK_CALLS:
        if canonical == known or canonical.endswith("." + known):
            return known
    if canonical == "random.Random" and args_empty:
        return "random.Random"
    head, _, tail = canonical.partition(".")
    if head == "random" and tail in GLOBAL_RANDOM_CALLS:
        return f"random.{tail}"
    return ""


def _acquire_text(value: ast.AST) -> str:
    """Dotted text of an acquire-vocabulary call, or ``""``."""
    if isinstance(value, (ast.Yield, ast.YieldFrom)):
        value = value.value
    if isinstance(value, ast.Call) and \
            isinstance(value.func, ast.Attribute) and \
            value.func.attr in ACQUIRE_METHODS:
        dotted = dotted_name(value.func)
        return dotted if dotted is not None else value.func.attr
    return ""


#: Parent node types under which a parameter load is plain *use* (the
#: callee reads it without taking ownership).  Anything else —
#: argument position, return/yield value, assignment value, container
#: element — transfers ownership out of the caller's view.
_USE_PARENTS = (ast.Attribute, ast.Compare, ast.BoolOp, ast.UnaryOp,
                ast.Subscript, ast.If, ast.While, ast.Assert)


def _param_effects(func: ast.AST, params: Tuple[str, ...],
                   ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """``(released, escaped)`` parameter names for this function.

    A parameter is *released* when any release-vocabulary method is
    called on it; *escaped* when it is stored, returned, yielded, or
    passed on to another call.  A parameter that is neither is use-only:
    the caller still owns the resource after the call returns.
    """
    released: Set[str] = set()
    escaped: Set[str] = set()
    tracked = set(params)
    if not tracked:
        return (), ()
    parents: Dict[int, ast.AST] = {}
    for node in own_scope(func.body):
        for child in ast.iter_child_nodes(node):
            parents.setdefault(id(child), node)
    for node in own_scope(func.body):
        if not (isinstance(node, ast.Name) and node.id in tracked
                and isinstance(node.ctx, ast.Load)):
            continue
        parent = parents.get(id(node))
        if isinstance(parent, ast.Attribute):
            grand = parents.get(id(parent))
            if isinstance(grand, ast.Call) and grand.func is parent \
                    and parent.attr in RELEASE_METHODS:
                released.add(node.id)
            continue
        if isinstance(parent, _USE_PARENTS):
            continue
        escaped.add(node.id)
    return tuple(sorted(released)), tuple(sorted(escaped))


def _extract_function(module: str, cls: Optional[str], func: ast.AST,
                      imports: Dict[str, str],
                      suppressed: Dict[int, Set[str]]) -> LocalFn:
    qname = f"{module}.{cls}.{func.name}" if cls \
        else f"{module}.{func.name}"
    params = tuple(arg.arg for arg in func.args.args)
    info = LocalFn(qname=qname, name=func.name, cls=cls or "",
                   line=func.lineno, params=params)

    calls: List[CallSite] = []
    unknown = 0
    nondet = ""
    yields = False
    scan = ""
    acquired_locals: Set[str] = set()
    returns_calls: List[CallSite] = []
    returns_acquire = ""
    returning_names: List[Tuple[ast.AST, str]] = []

    for node in own_scope(func.body):
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            yields = True
        elif isinstance(node, ast.Call):
            kind, text = classify_call(node)
            if kind == UNKNOWN:
                unknown += 1
            else:
                calls.append(CallSite(kind, text, node.lineno))
            dotted = dotted_name(node.func)
            if dotted is not None and not nondet:
                lines = suppressed.get(node.lineno, set())
                if not ({"DET001", "DET002"} & lines):
                    nondet = _match_nondet(
                        canonicalize(dotted, imports),
                        not node.args and not node.keywords)
        elif isinstance(node, (ast.While, ast.For)):
            if not info.retries_own and any(
                    isinstance(sub, ast.ExceptHandler)
                    and UnboundedRetryRule._handler_sleeps(sub)
                    for sub in own_scope(node.body)):
                info.retries_own = True
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            if _acquire_text(node.value):
                acquired_locals.add(node.targets[0].id)
        elif isinstance(node, ast.Return) and node.value is not None:
            value = node.value
            if not returns_acquire:
                returns_acquire = _acquire_text(value)
            if isinstance(value, ast.Call):
                kind, text = classify_call(value)
                if kind != UNKNOWN:
                    returns_calls.append(
                        CallSite(kind, text, node.lineno))
            elif isinstance(value, ast.Name):
                returning_names.append((node, value.id))

    # A `w = store.watch(...)` local returned later also transfers a
    # fresh resource to the caller.
    if not returns_acquire:
        for _node, name in returning_names:
            if name in acquired_locals:
                returns_acquire = f"<local {name}>"
                break

    # Linear fanout scans, on any function (PERF001 only looks at
    # hot-named ones); a PERF001 suppression on the loop line keeps the
    # scan out of the summary so PERF002 does not re-report it at every
    # transitive hot-path caller.
    iter_sites: List[ast.AST] = []
    for node in own_scope(func.body):
        if isinstance(node, ast.For):
            iter_sites.append((node.lineno, node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp,
                               ast.GeneratorExp, ast.DictComp)):
            iter_sites.extend((node.lineno, gen.iter)
                              for gen in node.generators)
    for lineno, site in sorted(iter_sites, key=lambda item: item[0]):
        if "PERF001" in suppressed.get(lineno, set()):
            continue
        token = LinearFanoutRule._collection_token(site)
        if token is not None:
            scan = token
            break

    info.yields_own = yields
    info.nondet_own = nondet
    info.scan_own = scan
    info.returns_acquire = returns_acquire
    info.returns_calls = tuple(returns_calls)
    info.calls = tuple(sorted(set(calls),
                              key=lambda c: (c.line, c.kind, c.text)))
    info.unknown_calls = unknown
    info.param_release, info.param_escape = _param_effects(func, params)
    return info


def _mutated_attrs(tree: ast.Module) -> Tuple[str, ...]:
    """Attribute names the module assigns anywhere (CONC001's notion of
    a *mutable* shared attribute, reused project-wide by CONC002)."""
    mutated: Set[str] = set()
    for node in ast.walk(tree):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute):
                mutated.add(target.attr)
    return tuple(sorted(mutated))


def extract_module(display_path: str, source: str,
                   tree: ast.Module) -> ModuleInfo:
    """Build one module's :class:`ModuleInfo` from its parsed AST."""
    module = module_name_of(display_path)
    imports = build_import_map(tree)
    suppressed = valid_suppression_lines(source)
    info = ModuleInfo(display_path=display_path, module=module,
                      imports=imports,
                      mutated_attrs=_mutated_attrs(tree))
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            bases = tuple(b for b in (dotted_name(base)
                                      for base in stmt.bases)
                          if b is not None)
            info.classes[stmt.name] = ClassInfo(stmt.name, bases)
    for cls, func in iter_functions(tree):
        local = _extract_function(module, cls, func, imports, suppressed)
        info.local_fns[local.qname] = local
        if cls is None:
            info.functions[func.name] = local.qname
        else:
            info.classes[cls].methods[func.name] = local.qname
    return info


# -- the project view -------------------------------------------------------


class Project:
    """All analyzed modules, indexed for cross-module call resolution."""

    def __init__(self, modules: Dict[str, ModuleInfo]):
        self.modules = modules
        #: canonical dotted name -> qname, including re-export aliases.
        self.by_canonical: Dict[str, str] = {}
        #: canonical dotted class name -> (module, ClassInfo).
        self.class_by_canonical: Dict[str, Tuple[ModuleInfo,
                                                 ClassInfo]] = {}
        self.locals: Dict[str, LocalFn] = {}
        mutated: Set[str] = set()
        for minfo in modules.values():
            mutated.update(minfo.mutated_attrs)
            self.locals.update(minfo.local_fns)
            for name, qname in minfo.functions.items():
                self.by_canonical[f"{minfo.module}.{name}"] = qname
            for cname, cinfo in minfo.classes.items():
                key = f"{minfo.module}.{cname}"
                self.class_by_canonical[key] = (minfo, cinfo)
                for mname, qname in cinfo.methods.items():
                    self.by_canonical[f"{key}.{mname}"] = qname
        self.mutated_attrs = frozenset(mutated)
        self._resolve_reexports()
        #: qname -> Summary; filled in by ``compute_summaries``.
        self.summaries: Dict[str, object] = {}
        self.cache_stats = None

    def _resolve_reexports(self) -> None:
        """Alias ``package.name`` -> defining qname for package
        ``__init__`` re-exports, chased to a fixpoint."""
        changed = True
        passes = 0
        while changed and passes < 10:
            changed = False
            passes += 1
            for minfo in self.modules.values():
                for local, canonical in minfo.imports.items():
                    alias = f"{minfo.module}.{local}"
                    target = self.by_canonical.get(canonical)
                    if target is not None and alias not in \
                            self.by_canonical:
                        self.by_canonical[alias] = target
                        changed = True
                    cls = self.class_by_canonical.get(canonical)
                    if cls is not None and alias not in \
                            self.class_by_canonical:
                        self.class_by_canonical[alias] = cls
                        changed = True

    # -- resolution ---------------------------------------------------------

    def resolve(self, minfo: ModuleInfo, cls: Optional[str],
                site: CallSite) -> Optional[str]:
        """The callee qname for a call site, or ``None`` (unknown)."""
        if site.kind == SELF:
            if not cls:
                return None
            return self._resolve_method(minfo, cls, site.text)
        if site.kind == NAME:
            qname = minfo.functions.get(site.text)
            if qname is not None:
                return qname
            canonical = minfo.imports.get(site.text)
            if canonical is not None:
                return self.by_canonical.get(canonical)
            return None
        if site.kind == DOTTED:
            canonical = canonicalize(site.text, minfo.imports)
            qname = self.by_canonical.get(canonical)
            if qname is not None:
                return qname
            # `LocalClass.method(...)` written without an import.
            return self.by_canonical.get(f"{minfo.module}.{canonical}")
        return None

    def _resolve_method(self, minfo: ModuleInfo, cls: str,
                        method: str,
                        seen: Optional[Set[str]] = None) -> Optional[str]:
        key = f"{minfo.module}.{cls}"
        seen = seen if seen is not None else set()
        if key in seen:
            return None
        seen.add(key)
        entry = self.class_by_canonical.get(key)
        if entry is None:
            return None
        owner, cinfo = entry
        qname = cinfo.methods.get(method)
        if qname is not None:
            return qname
        for base in cinfo.bases:
            canonical = canonicalize(base, owner.imports)
            base_entry = self.class_by_canonical.get(canonical) or \
                self.class_by_canonical.get(f"{owner.module}.{canonical}")
            if base_entry is None:
                continue
            base_owner, base_info = base_entry
            found = self._resolve_method(base_owner, base_info.name,
                                         method, seen)
            if found is not None:
                return found
        return None

    def resolve_ast_call(self, minfo: ModuleInfo, cls: Optional[str],
                         call: ast.Call) -> Optional[str]:
        """Resolve a live :class:`ast.Call` node (used by the rules)."""
        return self.resolve_ref(minfo, cls, call.func)

    def resolve_ref(self, minfo: ModuleInfo, cls: Optional[str],
                    node: ast.AST) -> Optional[str]:
        """Resolve a bare callable reference (``helper`` passed as an
        argument, ``self.op`` handed to a retry wrapper, ...)."""
        kind, text = classify_ref(node)
        if kind == UNKNOWN:
            return None
        return self.resolve(minfo, cls,
                            CallSite(kind, text,
                                     getattr(node, "lineno", 0)))

    def edges(self) -> Dict[str, Tuple[str, ...]]:
        """``{caller qname: sorted resolved callee qnames}``."""
        out: Dict[str, Tuple[str, ...]] = {}
        for minfo in self.modules.values():
            for qname, local in minfo.local_fns.items():
                callees: Set[str] = set()
                for site in local.calls:
                    target = self.resolve(minfo, local.cls or None, site)
                    if target is not None and target != qname:
                        callees.add(target)
                out[qname] = tuple(sorted(callees))
        return out
