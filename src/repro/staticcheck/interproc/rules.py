"""Cross-function rules built on the call graph + effect summaries.

Every rule here reports at a *call site* and prints the witness chain
from the summary table, so a finding is actionable without re-running
the analysis: the reader sees exactly which callee chain carries the
effect.  All five deliberately under-approximate through unknown
callees (no chain, no finding) — the conservative direction for a
linter that gates CI — except resource ownership, where an unknown
callee is assumed to *take* ownership (RES002 stays quiet rather than
guessing).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.staticcheck.cfg import build_cfg, own_expr_roots, walk_own
from repro.staticcheck.dataflow import ForwardAnalysis, solve_forward
from repro.staticcheck.flowrules import (
    RELEASE_METHODS,
    _ResourceAnalysis,
    _acquire_call,
    _assigned_names,
    _attr_chains_loaded,
    _name_loads,
)
from repro.staticcheck.interproc.callgraph import (
    ModuleInfo,
    Project,
    iter_functions,
    own_scope,
)
from repro.staticcheck.rules import LinearFanoutRule, Rule, dotted_name

#: Marker for a fact that crossed a *literal* yield (CONC001's domain).
_LITERAL = "<yield>"


def _project_of(ctx) -> Tuple[Optional[Project], Optional[ModuleInfo]]:
    project = getattr(ctx, "project", None)
    if project is None:
        return None, None
    return project, project.modules.get(ctx.display_path)


def _short(project: Project, qname: str) -> str:
    local = project.locals.get(qname)
    return local.short if local is not None else qname.rsplit(".", 1)[-1]


def _pretty_chain(project: Project, chain: Tuple[str, ...],
                  terminal: str = "") -> str:
    names = [_short(project, qname) + "()" for qname in chain]
    if terminal:
        names.append(terminal)
    return " -> ".join(names)


class InterprocRule(Rule):
    """A rule that inspects each graphed function with project context."""

    def check(self, ctx) -> List:
        project, minfo = _project_of(ctx)
        if project is None or minfo is None:
            return []
        findings = []
        for cls, func in iter_functions(ctx.tree):
            findings.extend(
                self.check_function(ctx, project, minfo, cls, func))
        return findings

    def check_function(self, ctx, project, minfo, cls,
                       func) -> List:  # pragma: no cover - abstract
        raise NotImplementedError

    @staticmethod
    def _qname_of(minfo: ModuleInfo, cls: Optional[str],
                  func: ast.AST) -> Optional[str]:
        if cls is None:
            return minfo.functions.get(func.name)
        cinfo = minfo.classes.get(cls)
        return cinfo.methods.get(func.name) if cinfo else None


# -- CONC002: stale read across a call that transitively yields -------------


class _CrossCallStaleAnalysis(ForwardAnalysis):
    """Facts: (var, def index, attr chain, crossed).

    ``crossed`` is ``""`` (nothing yet), the qname of the first
    transitively-yielding callee crossed, or ``_LITERAL`` once a real
    yield point is crossed — at which point the fact belongs to CONC001
    and this rule stays silent about it.
    """

    def __init__(self, yield_calls: Dict[int, str]):
        self.yield_calls = yield_calls

    def transfer(self, node, fact):
        stmt = node.stmt
        if node.has_yield:
            fact = frozenset((var, at, chain, _LITERAL)
                             for var, at, chain, _crossed in fact)
        elif node.index in self.yield_calls:
            callee = self.yield_calls[node.index]
            fact = frozenset(
                (var, at, chain, crossed if crossed else callee)
                for var, at, chain, crossed in fact)
        loads = {name.id for name in _name_loads(stmt)}
        if loads:
            fresh = _attr_chains_loaded(stmt)
            if fresh:
                fact = frozenset(f for f in fact
                                 if not (f[0] in loads and f[2] in fresh))
        assigned = _assigned_names(stmt)
        if assigned:
            fact = frozenset(f for f in fact if f[0] not in assigned)
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            chain = dotted_name(stmt.value)
            if chain is not None and "." in chain:
                fact = fact | {(stmt.targets[0].id, node.index, chain,
                                "")}
        return fact


class CrossCallStaleReadRule(InterprocRule):
    """CONC002: CONC001 extended through the call graph.

    A call whose callee *transitively reaches a yield point* can give
    up control before returning — other processes may run and mutate
    shared state while the callee blocks.  A local snapshot of a
    mutable shared attribute taken before such a call and trusted after
    it is exactly CONC001's stale read, one level of indirection up.
    Facts that cross a literal yield are CONC001's and are not
    re-reported here.
    """

    code = "CONC002"

    def check_function(self, ctx, project, minfo, cls, func) -> List:
        cfg = build_cfg(func)
        yield_calls: Dict[int, str] = {}
        for node in cfg.stmt_nodes():
            if node.has_yield:
                continue
            for sub in walk_own(own_expr_roots(node.stmt)):
                if not isinstance(sub, ast.Call):
                    continue
                qname = project.resolve_ast_call(minfo, cls, sub)
                if qname is None:
                    continue
                summary = project.summaries.get(qname)
                if summary is not None and summary.yields:
                    yield_calls[node.index] = qname
                    break
        if not yield_calls:
            return []
        solution = solve_forward(cfg, _CrossCallStaleAnalysis(yield_calls))
        findings = []
        seen: Set[Tuple[int, str]] = set()
        for node in cfg.stmt_nodes():
            fact_in, _out = solution[node.index]
            literal_vars = {var for var, _at, _chain, crossed in fact_in
                            if crossed == _LITERAL}
            stale = {var: (chain, crossed)
                     for var, _at, chain, crossed in fact_in
                     if crossed and crossed != _LITERAL
                     and var not in literal_vars}
            if not stale:
                continue
            fresh = _attr_chains_loaded(node.stmt)
            for name in _name_loads(node.stmt):
                entry = stale.get(name.id)
                if entry is None:
                    continue
                chain, callee = entry
                if chain in fresh:
                    continue
                if chain.rsplit(".", 1)[-1] not in project.mutated_attrs:
                    continue
                key = (node.line, name.id)
                if key in seen:
                    continue
                seen.add(key)
                summary = project.summaries[callee]
                witness = _pretty_chain(
                    project, (callee,) + summary.yields_chain)
                findings.append(self.finding(
                    ctx, node.stmt,
                    f"{name.id!r} holds a snapshot of {chain} taken "
                    f"before a call that can yield control "
                    f"({witness}); other processes may have changed "
                    f"{chain} while the callee blocked — re-read it "
                    f"after the call returns"))
        return findings


# -- DET004: nondeterminism taint at the sim-facing call site ---------------


class TransitiveNondetRule(InterprocRule):
    """DET004: DET001/DET002 lifted to call sites.

    The direct rules flag the wall-clock read or global-random draw
    where it happens; this rule flags where the nondeterminism *enters
    simulation-driven code* — a call, from a function that can yield to
    the kernel, whose callee transitively reaches such a source.  The
    message carries the full call chain down to the offending call.
    Sources whose direct finding was suppressed with a reason are
    considered replay-safe and do not taint (the summary extractor
    drops them), so one audited boundary does not cascade findings
    into every caller.
    """

    code = "DET004"

    def check_function(self, ctx, project, minfo, cls, func) -> List:
        qname = self._qname_of(minfo, cls, func)
        caller = project.summaries.get(qname) if qname else None
        if caller is None or not caller.yields:
            return []
        findings = []
        seen: Set[Tuple[int, str]] = set()
        for node in own_scope(func.body):
            if not isinstance(node, ast.Call):
                continue
            callee = project.resolve_ast_call(minfo, cls, node)
            if callee is None:
                continue
            summary = project.summaries.get(callee)
            if summary is None or not summary.nondet:
                continue
            key = (node.lineno, callee)
            if key in seen:
                continue
            seen.add(key)
            witness = _pretty_chain(
                project, (callee,) + summary.nondet_chain,
                terminal=f"{summary.nondet}()")
            findings.append(self.finding(
                ctx, node,
                f"this call reaches {summary.nondet}() "
                f"({witness}), injecting host nondeterminism into a "
                f"sim-facing function; plumb env.now / an RngRegistry "
                f"stream through {_short(project, callee)}() instead"))
        return findings


# -- RES002: interprocedural resource leak ----------------------------------


class _InterResourceAnalysis(ForwardAnalysis):
    """Facts: (var, def index, acquire text, via) still owned here.

    Differs from RES001's analysis in exactly two places: a call to a
    function that *returns* a fresh resource is an acquisition site,
    and passing the resource to a known callee transfers ownership only
    if that callee actually releases or keeps it — a use-only callee
    leaves ownership (and the leak) with the caller.
    """

    def __init__(self, project: Project, minfo: ModuleInfo,
                 cls: Optional[str]):
        self.project = project
        self.minfo = minfo
        self.cls = cls

    # -- acquisition --------------------------------------------------------

    def acquire_of(self, value: ast.AST) -> Tuple[str, str]:
        """``(text, via)`` when ``value`` yields a fresh resource."""
        direct = _acquire_call(value)
        if direct is not None:
            return direct, "direct"
        if isinstance(value, (ast.Yield, ast.YieldFrom)) and \
                value.value is not None:
            value = value.value
        if isinstance(value, ast.Call):
            qname = self.project.resolve_ast_call(
                self.minfo, self.cls, value)
            if qname is not None:
                summary = self.project.summaries.get(qname)
                if summary is not None and summary.returns_resource:
                    return f"{_short(self.project, qname)}", "wrapper"
        return "", ""

    # -- per-statement disposition ------------------------------------------

    def arg_disposition(self, call: ast.Call, name_node: ast.Name,
                        keyword: Optional[str]) -> str:
        """'released' | 'transferred' | 'use' for a resource argument."""
        qname = self.project.resolve_ast_call(self.minfo, self.cls, call)
        local = self.project.locals.get(qname) if qname else None
        if local is None:
            return "transferred"
        if any(isinstance(arg, ast.Starred) for arg in call.args):
            return "transferred"
        if keyword is None:
            try:
                position = next(
                    i for i, arg in enumerate(call.args)
                    if arg is name_node)
            except StopIteration:
                return "transferred"
            from repro.staticcheck.interproc.callgraph import (
                SELF,
                classify_call,
            )
            kind, _text = classify_call(call)
            offset = 1 if (kind == SELF and local.cls) else 0
            index = position + offset
            if index >= len(local.params):
                return "transferred"
            param = local.params[index]
        else:
            param = keyword
            if param not in local.params:
                return "transferred"
        if param in local.param_release:
            return "released"
        if param in local.param_escape:
            return "transferred"
        return "use"

    def var_status(self, stmt: ast.AST, var: str) -> Optional[str]:
        """'released' | 'transferred' | None (still held) for ``var``."""
        roots = own_expr_roots(stmt)
        parents: Dict[int, ast.AST] = {}
        for node in walk_own(roots):
            for child in ast.iter_child_nodes(node):
                parents.setdefault(id(child), node)
        verdicts: Set[str] = set()
        for node in walk_own(roots):
            if not (isinstance(node, ast.Name) and node.id == var
                    and isinstance(node.ctx, ast.Load)):
                continue
            parent = parents.get(id(node))
            if isinstance(parent, ast.Attribute):
                grand = parents.get(id(parent))
                if isinstance(grand, ast.Call):
                    if grand.func is parent:
                        if parent.attr in RELEASE_METHODS:
                            verdicts.add("released")
                        continue  # method receiver: use
                    # w.attr as a call argument: the field (an id, a
                    # handle) may be registered elsewhere — mirror
                    # RES001's escape conservatism.
                    verdicts.add("transferred")
                    continue
                if isinstance(grand, ast.keyword):
                    verdicts.add("transferred")
                    continue
                continue  # local attribute read: use
            if isinstance(parent, (ast.Subscript,)):
                continue  # indexing into the resource: use
            if isinstance(parent, ast.Call):
                verdicts.add(self.arg_disposition(parent, node, None))
                continue
            if isinstance(parent, ast.keyword):
                call = parents.get(id(parent))
                if isinstance(call, ast.Call):
                    verdicts.add(
                        self.arg_disposition(call, node, parent.arg))
                else:
                    verdicts.add("transferred")
                continue
            if isinstance(parent, (ast.Compare, ast.BoolOp,
                                   ast.UnaryOp)):
                continue  # truthiness / identity test: use
            verdicts.add("transferred")  # returned, yielded, stored, ...
        if "released" in verdicts:
            return "released"
        if "transferred" in verdicts:
            return "transferred"
        return None

    def transfer(self, node, fact):
        stmt = node.stmt
        live = set(fact)
        for entry in fact:
            if self.var_status(stmt, entry[0]) is not None:
                live.discard(entry)
        assigned = _assigned_names(stmt)
        if assigned:
            live = {f for f in live if f[0] not in assigned}
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            text, via = self.acquire_of(stmt.value)
            if text:
                live.add((stmt.targets[0].id, node.index, text, via))
        return frozenset(live)


class InterResourceLeakRule(InterprocRule):
    """RES002: RES001's ownership tracking, across function boundaries.

    Two interprocedural leak shapes RES001 structurally cannot see:

    * ``w = make_watch(...)`` — the acquire happens inside a wrapper
      whose summary says it returns a fresh resource; the caller now
      owns ``w`` and must release it.
    * ``w = store.watch(...); self._drain(w)`` — RES001 treats passing
      ``w`` to any call as an ownership transfer; with summaries we
      know ``_drain`` only *uses* its parameter (never releases or
      stores it), so ownership — and the leak — stays here.

    Passing a resource to an **unknown** callee still counts as a
    transfer: without a summary the analysis refuses to guess, which
    keeps the rule quiet rather than wrong.  Leaks RES001 already
    reports are not duplicated.
    """

    code = "RES002"

    def check_function(self, ctx, project, minfo, cls, func) -> List:
        analysis = _InterResourceAnalysis(project, minfo, cls)
        has_acquire = any(
            isinstance(stmt, ast.Assign)
            and analysis.acquire_of(stmt.value)[0]
            for stmt in ast.walk(func) if isinstance(stmt, ast.Assign))
        if not has_acquire:
            return []
        cfg = build_cfg(func)
        extended_leaks, _out = solve_forward(cfg, analysis)[cfg.exit]
        if not extended_leaks:
            return []
        baseline, _out = solve_forward(cfg, _ResourceAnalysis())[cfg.exit]
        already = {(var, at) for var, at, _text in baseline}
        findings = []
        for var, at, text, via in sorted(
                extended_leaks,
                key=lambda f: (cfg.node(f[1]).line, f[0])):
            if (var, at) in already:
                continue  # RES001 reports this one
            if via == "wrapper":
                message = (
                    f"{var!r} holds a fresh resource returned by "
                    f"{text}() and is not released on every path out "
                    f"of this function; the wrapper transferred "
                    f"ownership here — cancel/close it in a try/finally")
            else:
                users = self._use_only_callees(
                    project, minfo, cls, func, var, analysis)
                through = f" {users} only uses it without releasing " \
                    f"or keeping it, so" if users else ""
                message = (
                    f"{var!r} acquired via {text}() leaks through a "
                    f"callee:{through} ownership stays in this "
                    f"function and no path releases it; release it in "
                    f"a try/finally")
            findings.append(self.finding(ctx, cfg.node(at).stmt, message))
        return findings

    @staticmethod
    def _use_only_callees(project, minfo, cls, func, var,
                          analysis) -> str:
        names = []
        for node in own_scope(func.body):
            if not isinstance(node, ast.Call):
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == var and \
                        analysis.arg_disposition(node, arg, None) == \
                        "use":
                    qname = project.resolve_ast_call(minfo, cls, node)
                    if qname:
                        names.append(_short(project, qname) + "()")
        return " and ".join(sorted(set(names)))


# -- SAF005: nested retry policies across the call chain --------------------


class NestedRetryRule(InterprocRule):
    """SAF005: exactly one layer of the stack may retry.

    When a retry loop invokes an operation that itself retries
    (directly, or anywhere down its call chain), the attempt counts
    multiply — an outer 4x around an inner 4x is 16 attempts — and the
    exponential backoffs compound into multi-minute stalls that no
    single policy describes.  Flagged at the outer call site: either a
    call to a transitively-retrying function from inside a retry loop,
    or a retrying operation passed as an argument into a retrying
    wrapper (``retry_call(env, stream, op, ...)`` where ``op`` retries).
    """

    code = "SAF005"

    @staticmethod
    def _retry_loops(func: ast.AST) -> List[ast.AST]:
        from repro.staticcheck.rules import UnboundedRetryRule

        return [node for node in own_scope(func.body)
                if isinstance(node, (ast.While, ast.For))
                and any(isinstance(sub, ast.ExceptHandler)
                        and UnboundedRetryRule._handler_sleeps(sub)
                        for sub in own_scope(node.body))]

    def check_function(self, ctx, project, minfo, cls, func) -> List:
        findings = []
        seen: Set[Tuple[int, str]] = set()

        def report(node, callee, summary, how):
            key = (node.lineno, callee)
            if key in seen:
                return
            seen.add(key)
            witness = _pretty_chain(
                project, (callee,) + summary.retries_chain) \
                if summary.retries_chain else "its own retry loop"
            findings.append(self.finding(
                ctx, node,
                f"nested retry policies: {_short(project, callee)}() "
                f"{how} but already retries internally ({witness}), "
                f"so attempt counts multiply and backoff compounds — "
                f"retry at exactly one layer"))

        for loop in self._retry_loops(func):
            for node in own_scope(loop.body):
                if not isinstance(node, ast.Call):
                    continue
                callee = project.resolve_ast_call(minfo, cls, node)
                summary = project.summaries.get(callee) if callee \
                    else None
                if summary is not None and summary.retries:
                    report(node, callee, summary,
                           "is called from this retry loop")

        for node in own_scope(func.body):
            if not isinstance(node, ast.Call):
                continue
            wrapper = project.resolve_ast_call(minfo, cls, node)
            wrapper_summary = project.summaries.get(wrapper) if wrapper \
                else None
            if wrapper_summary is None or not wrapper_summary.retries:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                if not isinstance(arg, (ast.Name, ast.Attribute)):
                    continue
                ref = project.resolve_ref(minfo, cls, arg)
                ref_summary = project.summaries.get(ref) if ref else None
                if ref_summary is not None and ref_summary.retries:
                    report(node, ref, ref_summary,
                           f"is passed into retrying "
                           f"{_short(project, wrapper)}()")
        return findings


# -- PERF002: linear fanout scan reachable from a hot path ------------------


class TransitiveFanoutScanRule(InterprocRule):
    """PERF002: PERF001 lifted through the call graph.

    A notify/emit/publish hot path runs once per mutation; PERF001
    catches a linear subscriber scan written directly in it, but a
    helper that does the scanning on the hot path's behalf costs
    exactly the same per notification.  Flagged at the hot-path call
    site with the chain down to the scanning function.  A PERF001
    suppression on the scan itself (an exact-fanout collection)
    removes it from the summaries, so an audited scan does not
    re-surface at every transitive caller.
    """

    code = "PERF002"

    def check_function(self, ctx, project, minfo, cls, func) -> List:
        if not LinearFanoutRule._is_hot_path(func.name):
            return []
        findings = []
        seen: Set[Tuple[int, str]] = set()
        for node in own_scope(func.body):
            if not isinstance(node, ast.Call):
                continue
            callee = project.resolve_ast_call(minfo, cls, node)
            if callee is None:
                continue
            summary = project.summaries.get(callee)
            if summary is None or not summary.scan:
                continue
            key = (node.lineno, callee)
            if key in seen:
                continue
            seen.add(key)
            witness = _pretty_chain(project,
                                    (callee,) + summary.scan_chain)
            findings.append(self.finding(
                ctx, node,
                f"fanout hot path {func.name}() reaches a linear scan "
                f"over {summary.scan!r} through {witness}; every "
                f"notification pays O(all subscribers) there — index "
                f"subscribers by match key (or suppress at the scan "
                f"with a reason if the fanout is exact)"))
        return findings


#: Interprocedural rules, in catalog order.
INTERPROC_RULES = (
    CrossCallStaleReadRule(),
    TransitiveNondetRule(),
    InterResourceLeakRule(),
    NestedRetryRule(),
    TransitiveFanoutScanRule(),
)
