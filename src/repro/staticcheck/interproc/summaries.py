"""Bottom-up effect summaries over the project call graph.

Each function gets one :class:`Summary` with five effect facets:

* ``yields`` — the function can give up control to the kernel: it
  contains a yield point itself, or (transitively) calls a function
  that does.  This is the preemption notion CONC002 extends CONC001
  with.
* ``nondet`` — the function (transitively) reaches a wall-clock read or
  a global-``random`` draw *outside* ``RngRegistry``.  Sources whose
  DET001/DET002 finding carries a reasoned suppression are declared
  replay-safe at the source and do not taint callers.
* ``retries`` — the function participates in a retry loop: it contains
  a loop whose exception handler backs off (``yield env.timeout``), or
  calls a function that does (``retry_call`` and every wrapper above
  it).
* ``scan`` — the function (transitively) performs a linear scan over a
  watcher/listener/subscriber collection; PERF001-suppressed scans are
  excluded at the source.
* ``returns_resource`` — the function hands a freshly acquired
  watch/lease/claim to its caller (directly, or through a chain of
  ``return wrapper()`` calls), so its call sites are acquisition sites
  for RES002.

Summaries are computed bottom-up over the condensation of the call
graph: Tarjan's algorithm emits strongly connected components in
reverse topological order (callees before callers), single-node SCCs
get one monotone merge pass, and cyclic SCCs (recursion, mutual
recursion) iterate to a fixpoint — all facets are monotone booleans or
set-once strings, so the iteration terminates.  Every propagated facet
carries a witness *chain* of callee qnames ending at the function that
owns the effect, which the rules print so a finding at a call site is
explainable without re-running the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.staticcheck.interproc.callgraph import Project

#: Witness chains longer than this are truncated (recursion cycles).
MAX_CHAIN = 12


@dataclass
class Summary:
    """One function's propagated effect summary."""

    qname: str
    yields: bool = False
    yields_chain: Tuple[str, ...] = ()
    nondet: str = ""
    nondet_chain: Tuple[str, ...] = ()
    retries: bool = False
    retries_chain: Tuple[str, ...] = ()
    scan: str = ""
    scan_chain: Tuple[str, ...] = ()
    returns_resource: str = ""
    unknown_calls: int = 0
    callees: Tuple[str, ...] = field(default=())


def _tarjan_sccs(edges: Dict[str, Tuple[str, ...]]) -> List[List[str]]:
    """SCCs in reverse topological order (callees before callers),
    computed iteratively so deep call chains cannot hit the interpreter
    recursion limit."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in sorted(edges):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work.pop()
            if child_i == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            children = [c for c in edges.get(node, ()) if c in edges]
            advanced = False
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in index:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack.get(child):
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                scc: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def _merge(mine: Summary, callee: Summary) -> bool:
    """Fold ``callee``'s effects into ``mine``; True when changed."""
    changed = False
    if callee.yields and not mine.yields:
        mine.yields = True
        mine.yields_chain = ((callee.qname,)
                             + callee.yields_chain)[:MAX_CHAIN]
        changed = True
    if callee.nondet and not mine.nondet:
        mine.nondet = callee.nondet
        mine.nondet_chain = ((callee.qname,)
                             + callee.nondet_chain)[:MAX_CHAIN]
        changed = True
    if callee.retries and not mine.retries:
        mine.retries = True
        mine.retries_chain = ((callee.qname,)
                              + callee.retries_chain)[:MAX_CHAIN]
        changed = True
    if callee.scan and not mine.scan:
        mine.scan = callee.scan
        mine.scan_chain = ((callee.qname,)
                           + callee.scan_chain)[:MAX_CHAIN]
        changed = True
    return changed


def compute_summaries(project: Project) -> Dict[str, Summary]:
    """The propagated summary table for every graphed function."""
    edges = project.edges()

    # Unknown callees = syntactically opaque calls plus classified call
    # sites that resolve to nothing in the project.
    unresolved: Dict[str, int] = {}
    for minfo in project.modules.values():
        for qname, local in minfo.local_fns.items():
            misses = sum(
                1 for site in local.calls
                if project.resolve(minfo, local.cls or None, site)
                is None)
            unresolved[qname] = local.unknown_calls + misses

    summaries: Dict[str, Summary] = {}
    for qname, local in project.locals.items():
        summaries[qname] = Summary(
            qname=qname,
            yields=local.yields_own,
            nondet=local.nondet_own,
            retries=local.retries_own,
            scan=local.scan_own,
            returns_resource=local.returns_acquire,
            unknown_calls=unresolved.get(qname, local.unknown_calls),
            callees=edges.get(qname, ()),
        )

    # Map each function's returned-call descriptors to qnames once.
    returns_calls: Dict[str, Tuple[str, ...]] = {}
    for minfo in project.modules.values():
        for qname, local in minfo.local_fns.items():
            resolved = []
            for site in local.returns_calls:
                target = project.resolve(minfo, local.cls or None, site)
                if target is not None and target != qname:
                    resolved.append(target)
            if resolved:
                returns_calls[qname] = tuple(sorted(set(resolved)))

    for scc in _tarjan_sccs(edges):
        members = set(scc)
        changed = True
        while changed:
            changed = False
            for qname in scc:
                mine = summaries[qname]
                for callee in summaries[qname].callees:
                    if _merge(mine, summaries[callee]):
                        changed = True
                if not mine.returns_resource:
                    for callee in returns_calls.get(qname, ()):
                        via = summaries[callee].returns_resource
                        if via:
                            mine.returns_resource = via
                            changed = True
                            break
            # Acyclic (single, non-self-looping) SCCs need one pass.
            if len(members) == 1 and \
                    scc[0] not in edges.get(scc[0], ()):
                break
    project.summaries = summaries
    return summaries
