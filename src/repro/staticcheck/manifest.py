"""Static analysis of scenario manifests — the MAN rule family.

Python rules walk ASTs; these rules walk the positioned YAML tree of a
scenario manifest (:mod:`repro.manifest.yamlpos`) against the declared
schema (:mod:`repro.manifest.schema`) *before a single sim event runs*:

* **MAN001** — schema violations: unknown field, wrong type, missing
  required field, invalid ``kind``;
* **MAN002** — dangling cross-references: fault plans targeting
  nodes/cells the topology never declares, ``use:`` references to
  unknown scenarios, hypotheses naming unknown checks or counters;
* **MAN003** — static infeasibility: workload demand provably exceeding
  declared GPU/memory capacity (bin-packing lower bound), per-tenant
  quota sums exceeding the global quota;
* **MAN004** — determinism hazards: unseeded trace/fault sections,
  absolute wall-clock timestamps in a relative-time schedule;
* **MAN005** — dead or shadowed declarations: faults scheduled after
  the observation window, faults inside a whole-cell blackout (or
  node-crash) window of their own target, duplicate mapping keys,
  unreferenced topology blocks.

Every finding anchors at the YAML line *and column* of the offending
token, and flows through the ordinary findings/suppression machinery —
``# staticcheck: ignore[MAN003] reason`` works in YAML comments exactly
as it does in Python source.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.manifest.schema import (
    CHAOS_COUNTERS,
    CHAOS_STEP_FIELDS,
    CHAOS_TOPOLOGY_FIELDS,
    CHAOS_WORKLOAD_FIELDS,
    CELL_FIELDS,
    COUNTER_ASSERTION_FIELDS,
    CellBlock,
    CounterAssertion,
    FAULTS_SECTION_FIELDS,
    FEDERATION_CELL_COUNTER_SUFFIXES,
    FEDERATION_COUNTERS,
    FEDERATION_MAX_SHAPE,
    FEDERATION_STEP_FIELDS,
    FEDERATION_TOPOLOGY_FIELDS,
    FEDERATION_TRACE_GPU_TYPES,
    FEDERATION_WORKLOAD_FIELDS,
    Field,
    FaultEntry,
    HYPOTHESES_FIELDS,
    MANIFEST_KINDS,
    ManifestModel,
    NODE_GROUP_FIELDS,
    NodeGroup,
    ROOT_FIELDS,
    RUN_FIELDS,
    SEED_INHERIT,
    TENANT_FIELDS,
    USE_STEP_FIELDS,
    known_fault_kinds,
    known_hypotheses,
)
from repro.manifest.yamlpos import YamlNode, YamlPosError, \
    parse_manifest_source
from repro.staticcheck.findings import Finding, RULE_CATALOG
from repro.staticcheck.suppress import apply_suppressions

#: Default observation windows (mirror the scenario dataclass defaults).
_DEFAULT_WINDOW = {"chaos": (900.0, 240.0), "federation": (1500.0, 600.0)}

#: An absolute date(-time) literal — a wall-clock anchor in a schedule
#: that is otherwise entirely relative seconds.
_WALLCLOCK_RE = re.compile(
    r"^\d{4}-\d{2}-\d{2}([T ]\d{2}:\d{2}(:\d{2})?)?$")


def _typename(value: Any) -> str:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, dict):
        return "mapping"
    if isinstance(value, list):
        return "list"
    if value is None:
        return "null"
    return type(value).__name__


def _matches(value: Any, spec: Field) -> bool:
    if isinstance(value, bool):
        return bool in spec.types
    if isinstance(value, YamlNode):  # mappings/sequences arrive wrapped
        value = value.value
    for accepted in spec.types:
        if accepted is dict and isinstance(value, dict):
            return True
        if accepted is list and isinstance(value, list):
            return True
        if accepted in (int, float, str) and isinstance(value, accepted):
            return True
        if accepted is float and isinstance(value, int):
            return True
    return False


@dataclass
class _FaultStep:
    """One resolved fault entry plus its source anchor."""

    entry: FaultEntry
    line: int
    column: int
    spliced: bool = False  # came from a use: reference


class _Analysis:
    """Single walk over one manifest; collects findings for every MAN
    code and builds the best-effort typed model the compiler uses."""

    def __init__(self, root: Optional[YamlNode], path: str):
        self.root = root
        self.path = path
        self.findings: List[Finding] = []
        self.kind: Optional[str] = None
        self.model: Optional[ManifestModel] = None
        #: (typed block, its source node) — the node is the finding
        #: anchor for capacity/unreferenced diagnostics.
        self._node_groups: List[Tuple[NodeGroup, YamlNode]] = []
        self._cells: List[Tuple[CellBlock, YamlNode]] = []
        self._topology_node: Optional[YamlNode] = None
        self._workload_node: Optional[YamlNode] = None
        self._workload: Dict[str, Any] = {}
        self._steps: List[_FaultStep] = []
        self._checks: List[str] = []
        self._assertions: List[CounterAssertion] = []
        self._horizon: Optional[float] = None
        self._settle: Optional[float] = None
        self._seed_override: Optional[int] = None

    # -- helpers ------------------------------------------------------------

    def _emit(self, code: str, node_or_line, column: int = 0,
              message: str = "") -> None:
        if isinstance(node_or_line, YamlNode):
            line, column = node_or_line.line, node_or_line.column
        else:
            line = node_or_line
        self.findings.append(Finding(code, self.path, line, message,
                                     column=column))

    def _check_mapping(self, node: YamlNode, fields: Dict[str, Field],
                       section: str) -> None:
        """MAN001 over one mapping: unknown keys, types, required."""
        for key, child in node.items():
            spec = fields.get(key)
            line, column = node.key_mark(key)
            if spec is None:
                self._emit("MAN001", line, column,
                           f"unknown field {key!r} in {section}")
                continue
            if not _matches(child.value, spec):
                self._emit(
                    "MAN001", child.line, child.column,
                    f"field {key!r} in {section} expects "
                    f"{spec.describe()}, got {_typename(child.value)}")
        for key, spec in fields.items():
            if spec.required and node.get(key) is None:
                self._emit("MAN001", node.line, node.column,
                           f"missing required field {key!r} in {section}")

    def _typed(self, node: YamlNode, key: str, fields: Dict[str, Field],
               default: Any = None) -> Any:
        """The value for ``key`` when present *and* well-typed."""
        child = node.get(key)
        if child is None or not _matches(child.value, fields[key]):
            return default
        return child.value

    def _duplicates(self, node: YamlNode) -> None:
        """MAN005: a re-declared key silently shadows the earlier one."""
        if node.is_mapping:
            for key, line, column in node.duplicate_keys:
                self._emit(
                    "MAN005", line, column,
                    f"duplicate key {key!r} shadows the earlier "
                    f"declaration (the later value silently wins)")
            for _key, child in node.items():
                self._duplicates(child)
        elif node.is_sequence:
            for child in node:
                self._duplicates(child)

    # -- drive --------------------------------------------------------------

    def run(self) -> None:
        root = self.root
        if root is None:
            self._emit("MAN001", 1, 1, "manifest is empty")
            return
        if not root.is_mapping:
            self._emit("MAN001", root.line, root.column,
                       "manifest root must be a mapping")
            return
        self._duplicates(root)
        self._check_mapping(root, ROOT_FIELDS, "manifest root")

        kind = root.scalar("kind")
        if isinstance(kind, str) and kind not in MANIFEST_KINDS:
            node = root.get("kind")
            self._emit("MAN001", node, 0,
                       f"unknown manifest kind {kind!r}; known: "
                       f"{', '.join(MANIFEST_KINDS)}")
            kind = None
        if kind not in MANIFEST_KINDS:
            return  # kind-specific analysis needs a valid kind
        self.kind = kind

        self._walk_topology(root.get("topology"))
        self._walk_workload(root.get("workload"))
        self._walk_run(root.get("run"))
        self._walk_faults(root.get("faults"))
        self._walk_hypotheses(root.get("hypotheses"))

        self._check_infeasibility()
        self._check_dead_and_shadowed()
        self._build_model(root)

    # -- sections -----------------------------------------------------------

    def _walk_topology(self, node: Optional[YamlNode]) -> None:
        if node is None or not node.is_mapping:
            return
        self._topology_node = node
        if self.kind == "chaos":
            self._check_mapping(node, CHAOS_TOPOLOGY_FIELDS, "topology")
            groups = node.get("nodes")
            if groups is None or not groups.is_sequence:
                return
            for group in groups:
                if not group.is_mapping:
                    self._emit("MAN001", group, 0,
                               "topology.nodes entry must be a mapping")
                    continue
                self._check_mapping(group, NODE_GROUP_FIELDS,
                                    "topology.nodes entry")
                count = self._typed(group, "count", NODE_GROUP_FIELDS)
                gpus = self._typed(group, "gpus_per_node",
                                   NODE_GROUP_FIELDS)
                gpu_type = self._typed(group, "gpu_type",
                                       NODE_GROUP_FIELDS)
                if count is None or gpus is None or gpu_type is None:
                    continue
                if any(g.gpu_type == gpu_type
                       for g, _node in self._node_groups):
                    self._emit(
                        "MAN001", group, 0,
                        f"duplicate topology.nodes group for gpu_type "
                        f"{gpu_type!r}: node names are derived as "
                        f"node-{gpu_type}-<i> and would collide")
                    continue
                self._node_groups.append((NodeGroup(
                    count=count, gpus_per_node=gpus, gpu_type=gpu_type,
                    cpus=float(self._typed(group, "cpus",
                                           NODE_GROUP_FIELDS, 64.0)),
                    memory_gb=float(self._typed(
                        group, "memory_gb", NODE_GROUP_FIELDS, 512.0))),
                    group))
        else:
            self._check_mapping(node, FEDERATION_TOPOLOGY_FIELDS,
                                "topology")
            cells = node.get("cells")
            if cells is None or not cells.is_sequence:
                return
            for cell in cells:
                if not cell.is_mapping:
                    self._emit("MAN001", cell, 0,
                               "topology.cells entry must be a mapping")
                    continue
                self._check_mapping(cell, CELL_FIELDS,
                                    "topology.cells entry")
                name = self._typed(cell, "name", CELL_FIELDS)
                zone = self._typed(cell, "zone", CELL_FIELDS)
                nodes = self._typed(cell, "gpu_nodes", CELL_FIELDS)
                gpus = self._typed(cell, "gpus_per_node", CELL_FIELDS)
                gpu_type = self._typed(cell, "gpu_type", CELL_FIELDS)
                if None in (name, zone, nodes, gpus, gpu_type):
                    continue
                self._cells.append((CellBlock(
                    name=name, zone=zone, gpu_nodes=nodes,
                    gpus_per_node=gpus, gpu_type=gpu_type), cell))

    def _walk_workload(self, node: Optional[YamlNode]) -> None:
        if node is None or not node.is_mapping:
            return
        self._workload_node = node
        fields = CHAOS_WORKLOAD_FIELDS if self.kind == "chaos" \
            else FEDERATION_WORKLOAD_FIELDS
        self._check_mapping(node, fields, "workload")
        for key, child in node.items():
            if key in fields and _matches(child.value, fields[key]):
                self._workload[key] = child.value
        self._check_seed(node, "workload")
        self._check_wallclock(node, "workload")
        if self.kind == "federation":
            self._walk_tenants(node.get("tenants"))
            self._walk_gpu_types(node.get("gpu_types"))

    def _walk_tenants(self, node: Optional[YamlNode]) -> None:
        if node is None or not node.is_sequence:
            return
        tenants = []
        for tenant in node:
            if not tenant.is_mapping:
                self._emit("MAN001", tenant, 0,
                           "workload.tenants entry must be a mapping")
                continue
            self._check_mapping(tenant, TENANT_FIELDS,
                                "workload.tenants entry")
            name = self._typed(tenant, "name", TENANT_FIELDS)
            quota = self._typed(tenant, "quota_gpus", TENANT_FIELDS)
            if name is not None and quota is not None:
                tenants.append((name, quota, tenant))
        self._workload["_tenants"] = tenants

    def _walk_gpu_types(self, node: Optional[YamlNode]) -> None:
        if node is None or not node.is_sequence:
            return
        declared = []
        for item in node:
            if not item.is_scalar or not isinstance(item.value, str):
                self._emit("MAN001", item, 0,
                           "workload.gpu_types entries must be strings")
                continue
            if item.value not in FEDERATION_TRACE_GPU_TYPES:
                self._emit(
                    "MAN002", item, 0,
                    f"workload.gpu_types names {item.value!r}, which "
                    f"the trace generator has no production weights "
                    f"for; known: "
                    f"{', '.join(FEDERATION_TRACE_GPU_TYPES)}")
                continue
            declared.append(item.value)
        self._workload["_gpu_types"] = declared

    def _walk_run(self, node: Optional[YamlNode]) -> None:
        if node is None or not node.is_mapping:
            return
        self._check_mapping(node, RUN_FIELDS, "run")
        self._horizon = self._typed(node, "horizon_s", RUN_FIELDS)
        self._settle = self._typed(node, "settle_s", RUN_FIELDS)

    def _walk_faults(self, node: Optional[YamlNode]) -> None:
        if node is None:
            return
        steps: Optional[YamlNode]
        if node.is_mapping:
            self._check_mapping(node, FAULTS_SECTION_FIELDS, "faults")
            self._check_seed(node, "faults")
            self._check_wallclock(node, "faults")
            steps = node.get("steps")
            if steps is not None and not steps.is_sequence:
                steps = None
        elif node.is_sequence:
            self._check_wallclock(node, "faults")
            steps = node
        else:
            return  # MAN001 already reported by the root walk
        if steps is None:
            return
        for step in steps:
            if not step.is_mapping:
                self._emit("MAN001", step, 0,
                           "faults entry must be a mapping")
                continue
            if step.get("use") is not None:
                self._walk_use_step(step)
            else:
                self._walk_inline_step(step)

    def _walk_inline_step(self, step: YamlNode) -> None:
        fields = CHAOS_STEP_FIELDS if self.kind == "chaos" \
            else FEDERATION_STEP_FIELDS
        self._check_mapping(step, fields, "faults entry")
        at_s = self._typed(step, "at_s", fields)
        kind = self._typed(step, "kind", fields)
        if kind is not None and kind not in known_fault_kinds(self.kind):
            node = step.get("kind")
            self._emit(
                "MAN002", node, 0,
                f"fault kind {kind!r} is not a registered {self.kind} "
                f"fault kind; known: "
                f"{', '.join(known_fault_kinds(self.kind))}")
            kind = None
        target = self._typed(step, "target", CHAOS_STEP_FIELDS, "") \
            if self.kind == "chaos" else ""
        cell = self._typed(step, "cell", FEDERATION_STEP_FIELDS, "") \
            if self.kind == "federation" else ""
        if self.kind == "chaos" and kind == "node-crash" and not target:
            self._emit("MAN001", step, 0,
                       "missing required field 'target' for a "
                       "node-crash fault")
        if target:
            declared = {name for group, _node in self._node_groups
                        for name in group.node_names()}
            if declared and target not in declared:
                node = step.get("target")
                self._emit(
                    "MAN002", node, 0,
                    f"fault targets undeclared node {target!r}; the "
                    f"topology provisions: "
                    f"{', '.join(sorted(declared))}")
        if cell:
            declared_cells = {c.name for c, _node in self._cells}
            if declared_cells and cell not in declared_cells:
                node = step.get("cell")
                self._emit(
                    "MAN002", node, 0,
                    f"fault targets undeclared cell {cell!r}; "
                    f"declared: {', '.join(sorted(declared_cells))}")
        if at_s is None or kind is None:
            return
        self._steps.append(_FaultStep(
            FaultEntry(
                at_s=float(at_s), kind=kind, target=target or "",
                cell=cell or "",
                duration_s=float(self._typed(step, "duration_s",
                                             fields, 0.0)),
                param=float(self._typed(step, "param", fields, 0.0))),
            step.line, step.column))

    def _walk_use_step(self, step: YamlNode) -> None:
        self._check_mapping(step, USE_STEP_FIELDS, "faults entry")
        name = self._typed(step, "use", USE_STEP_FIELDS)
        shift = float(self._typed(step, "shift_s", USE_STEP_FIELDS, 0.0))
        if name is None:
            return
        resolved = _resolve_use(name, self.kind)
        if resolved is None:
            node = step.get("use")
            wrong_kind = _resolve_use(
                name, "federation" if self.kind == "chaos" else "chaos")
            if wrong_kind is not None:
                self._emit(
                    "MAN002", node, 0,
                    f"use: scenario {name!r} is a "
                    f"{'federation' if self.kind == 'chaos' else 'chaos'}"
                    f" scenario; this manifest is kind: {self.kind}")
            else:
                self._emit("MAN002", node, 0,
                           f"use: references unknown scenario {name!r}")
            return
        for entry in resolved:
            shifted = FaultEntry(
                at_s=entry.at_s + shift, kind=entry.kind,
                target=entry.target, cell=entry.cell,
                duration_s=entry.duration_s, param=entry.param)
            self._steps.append(_FaultStep(shifted, step.line,
                                          step.column, spliced=True))

    def _walk_hypotheses(self, node: Optional[YamlNode]) -> None:
        if node is None or not node.is_mapping:
            return
        self._check_mapping(node, HYPOTHESES_FIELDS, "hypotheses")
        checks = node.get("checks")
        if checks is not None and checks.is_sequence:
            for item in checks:
                if not item.is_scalar or not isinstance(item.value, str):
                    self._emit("MAN001", item, 0,
                               "hypotheses.checks entries must be "
                               "strings")
                    continue
                if item.value not in known_hypotheses(self.kind):
                    self._emit(
                        "MAN002", item, 0,
                        f"unknown hypothesis check {item.value!r} for "
                        f"kind {self.kind}; known: "
                        f"{', '.join(known_hypotheses(self.kind))}")
                else:
                    self._checks.append(item.value)
        counters = node.get("counters")
        if counters is not None and counters.is_sequence:
            for item in counters:
                self._walk_counter_assertion(item)

    def _known_counter(self, name: str) -> bool:
        if self.kind == "chaos":
            return name in CHAOS_COUNTERS
        if name in FEDERATION_COUNTERS:
            return True
        for suffix in FEDERATION_CELL_COUNTER_SUFFIXES:
            if name.endswith(suffix):
                cell = name[:-len(suffix)]
                return cell in {c.name for c, _node in self._cells}
        return False

    def _walk_counter_assertion(self, item: YamlNode) -> None:
        if not item.is_mapping:
            self._emit("MAN001", item, 0,
                       "hypotheses.counters entry must be a mapping")
            return
        self._check_mapping(item, COUNTER_ASSERTION_FIELDS,
                            "hypotheses.counters entry")
        name = self._typed(item, "name", COUNTER_ASSERTION_FIELDS)
        bounds = {key: self._typed(item, key, COUNTER_ASSERTION_FIELDS)
                  for key in ("max", "min", "equals")}
        if all(value is None for value in bounds.values()):
            self._emit("MAN001", item, 0,
                       "counter assertion needs at least one of "
                       "'max', 'min', 'equals'")
        if name is None:
            return
        if not self._known_counter(name):
            node = item.get("name")
            self._emit(
                "MAN002", node, 0,
                f"unknown counter {name!r} for kind {self.kind}; the "
                f"report will never carry it")
            return
        self._assertions.append(CounterAssertion(
            name=name, max=bounds["max"], min=bounds["min"],
            equals=bounds["equals"]))

    # -- MAN004 -------------------------------------------------------------

    def _check_seed(self, node: YamlNode, section: str) -> None:
        seed = node.get("seed")
        if seed is None:
            return
        value = seed.value
        if isinstance(value, bool) or \
                (not isinstance(value, int)
                 and value != SEED_INHERIT):
            self._emit(
                "MAN004", seed, 0,
                f"{section}.seed {value!r} is not deterministic; use "
                f"an integer or 'inherit' (derive from the run seed)")
        elif isinstance(value, int) and section == "workload":
            self._seed_override = value

    def _check_wallclock(self, node: YamlNode, section: str) -> None:
        """Absolute timestamps anywhere under a relative-time section."""
        if node.is_scalar:
            if isinstance(node.value, str) and \
                    _WALLCLOCK_RE.match(node.value.strip()):
                self._emit(
                    "MAN004", node, 0,
                    f"absolute wall-clock timestamp {node.value!r} in "
                    f"{section}; schedules are relative seconds "
                    f"(at_s) from t=0")
            return
        children = (child for _key, child in node.items()) \
            if node.is_mapping else iter(node)
        for child in children:
            self._check_wallclock(child, section)

    # -- MAN003 -------------------------------------------------------------

    def _check_infeasibility(self) -> None:
        if self.kind == "chaos":
            self._check_chaos_capacity()
        else:
            self._check_federation_capacity()
            self._check_quota_sums()

    def _anchor(self) -> YamlNode:
        """Workload section if declared, else topology, else root."""
        return self._workload_node or self._topology_node or self.root

    def _check_chaos_capacity(self) -> None:
        if not self._node_groups:
            return
        gpu_type = self._workload.get("gpu_type", "K80")
        learners = self._workload.get("learners", 1)
        per_learner = self._workload.get("gpus_per_learner", 1)
        memory = self._workload.get("memory_gb_per_learner")
        groups = [g for g, _node in self._node_groups
                  if g.gpu_type == gpu_type]
        if not groups:
            declared = sorted({g.gpu_type
                               for g, _node in self._node_groups})
            self._emit(
                "MAN003", self._anchor(), 0,
                f"workload demands gpu_type {gpu_type!r} but the "
                f"topology declares no {gpu_type} capacity "
                f"(declared: {', '.join(declared)})")
            return
        largest = max(g.gpus_per_node for g in groups)
        if per_learner > largest:
            self._emit(
                "MAN003", self._anchor(), 0,
                f"a learner needs {per_learner} {gpu_type} GPUs but "
                f"the largest declared node has {largest} (no bin fits "
                f"the item)")
            return
        placeable = sum(g.count * (g.gpus_per_node // per_learner)
                        for g in groups)
        if learners > placeable:
            self._emit(
                "MAN003", self._anchor(), 0,
                f"a {learners}-learner gang at {per_learner} GPUs each "
                f"can never place: the topology fits at most "
                f"{placeable} such learners simultaneously "
                f"(bin-packing lower bound)")
        if memory is not None:
            max_memory = max(g.memory_gb for g in groups)
            if memory > max_memory:
                self._emit(
                    "MAN003", self._anchor(), 0,
                    f"a learner needs {memory:g} GB but the largest "
                    f"declared node has {max_memory:g} GB")

    def _effective_gpu_types(self) -> List[str]:
        available = {c.gpu_type for c, _node in self._cells}
        declared = self._workload.get("_gpu_types")
        pool = declared if declared else FEDERATION_TRACE_GPU_TYPES
        return [t for t in pool if t in available]

    def _check_federation_capacity(self) -> None:
        if not self._cells:
            return
        effective = self._effective_gpu_types()
        if not effective:
            declared = sorted({c.gpu_type for c, _node in self._cells})
            self._emit(
                "MAN003", self._anchor(), 0,
                f"the trace has no production weights for any declared "
                f"cell GPU type (declared: {', '.join(declared)}; "
                f"trace knows: "
                f"{', '.join(FEDERATION_TRACE_GPU_TYPES)})")
            return
        for gpu_type in effective:
            learners, per_learner = FEDERATION_MAX_SHAPE[gpu_type]
            cells = [(c, node) for c, node in self._cells
                     if c.gpu_type == gpu_type]
            if any(self._cell_fits(c, learners, per_learner)
                   for c, _node in cells):
                continue
            self._emit(
                "MAN003", cells[0][1], 0,
                f"the largest trace job shape ({learners} learners x "
                f"{per_learner} {gpu_type} GPUs) cannot be placed in "
                f"any declared {gpu_type} cell (bin-packing lower "
                f"bound); it would queue forever")

    @staticmethod
    def _cell_fits(cell: CellBlock, learners: int,
                   per_learner: int) -> bool:
        if per_learner > cell.gpus_per_node:
            return False
        per_node = cell.gpus_per_node // per_learner
        return math.ceil(learners / per_node) <= cell.gpu_nodes

    def _check_quota_sums(self) -> None:
        tenants = self._workload.get("_tenants") or []
        global_quota = self._workload.get("global_quota_gpus")
        if not tenants or global_quota is None:
            return
        total = sum(quota for _name, quota, _node in tenants)
        if total > global_quota:
            first = tenants[0][2]
            self._emit(
                "MAN003", first, 0,
                f"per-tenant quotas sum to {total} GPUs, exceeding "
                f"the declared global quota of {global_quota}")

    # -- MAN005 -------------------------------------------------------------

    def _check_dead_and_shadowed(self) -> None:
        horizon, settle = _DEFAULT_WINDOW[self.kind]
        if self._horizon is not None:
            horizon = float(self._horizon)
        if self._settle is not None:
            settle = float(self._settle)
        end = horizon + settle
        inline = [s for s in self._steps if not s.spliced]
        for step in inline:
            if step.entry.at_s >= end:
                self._emit(
                    "MAN005", step.line, step.column,
                    f"dead fault: t={step.entry.at_s:g}s is past the "
                    f"end of the run (horizon+settle = {end:g}s); it "
                    f"never fires")
        # A fault inside an earlier whole-cell blackout (or node-crash)
        # window of its own target hits a component that is already
        # dark — it is shadowed, not composed.
        blackout_kind = "node-crash" if self.kind == "chaos" \
            else "cell-blackout"
        windows: List[Tuple[str, float, float]] = [
            (s.entry.target or s.entry.cell, s.entry.at_s,
             s.entry.at_s + s.entry.duration_s)
            for s in inline if s.entry.kind == blackout_kind
            and s.entry.duration_s > 0]
        for step in inline:
            target = step.entry.target or step.entry.cell
            if not target:
                continue
            for w_target, w_start, w_end in windows:
                if w_target == target and \
                        w_start < step.entry.at_s < w_end:
                    self._emit(
                        "MAN005", step.line, step.column,
                        f"fault at t={step.entry.at_s:g}s on "
                        f"{target!r} is shadowed by the "
                        f"{blackout_kind} window "
                        f"[{w_start:g}s, {w_end:g}s] on the same "
                        f"target (already dark)")
                    break
        self._check_unreferenced_topology()

    def _check_unreferenced_topology(self) -> None:
        targets = {s.entry.target for s in self._steps if s.entry.target}
        cells_hit = {s.entry.cell for s in self._steps if s.entry.cell}
        if self.kind == "chaos":
            demanded = {self._workload.get("gpu_type", "K80")}
            for group, node in self._node_groups:
                if group.gpu_type in demanded:
                    continue
                if targets & set(group.node_names()):
                    continue
                self._emit(
                    "MAN005", node, 0,
                    f"unreferenced topology block: {group.count} "
                    f"{group.gpu_type} node(s) serve no workload "
                    f"demand and no fault targets them")
        else:
            effective = set(self._effective_gpu_types())
            for cell, node in self._cells:
                if cell.gpu_type in effective:
                    continue
                if cell.name in cells_hit:
                    continue
                self._emit(
                    "MAN005", node, 0,
                    f"unreferenced topology block: cell "
                    f"{cell.name!r} ({cell.gpu_type}) serves no trace "
                    f"demand and no fault targets it")

    # -- model --------------------------------------------------------------

    def _build_model(self, root: YamlNode) -> None:
        self.model = ManifestModel(
            kind=self.kind,
            name=str(root.scalar("name", "")),
            description=str(root.scalar("description", "")),
            node_groups=tuple(g for g, _node in self._node_groups),
            cells=tuple(c for c, _node in self._cells),
            workload={k: v for k, v in self._workload.items()
                      if not k.startswith("_")},
            faults=tuple(sorted(
                (s.entry for s in self._steps),
                key=lambda e: (e.at_s, e.kind, e.target, e.cell))),
            horizon_s=self._horizon,
            settle_s=self._settle,
            checks=tuple(self._checks),
            counter_assertions=tuple(self._assertions),
            seed_override=self._seed_override,
        )


def _resolve_use(name: str, kind: str):
    """Steps of the named builtin scenario, as FaultEntry records."""
    if kind == "chaos":
        from repro.chaos.scenarios import SCENARIOS
        scenario = SCENARIOS.get(name)
        if scenario is None:
            return None
        return [FaultEntry(at_s=s.at_s, kind=s.kind, target=s.target,
                           duration_s=s.duration_s, param=s.param)
                for s in scenario.steps]
    from repro.chaos.federation import FEDERATION_SCENARIOS
    scenario = FEDERATION_SCENARIOS.get(name)
    if scenario is None:
        return None
    return [FaultEntry(at_s=s.at_s, kind=s.kind, cell=s.cell,
                       duration_s=s.duration_s, param=s.param)
            for s in scenario.steps]


def analyze_manifest(source: str, display_path: str = "<manifest>",
                     ) -> Tuple[List[Finding], List[Finding],
                                Optional[ManifestModel]]:
    """Run the MAN rules over one manifest's YAML source.

    Returns ``(findings, suppressed, model)``.  ``model`` is the typed
    view the compiler consumes; it is only trustworthy when no MAN001
    or SYNTAX finding was reported.
    """
    try:
        root = parse_manifest_source(source)
    except YamlPosError as err:
        return ([Finding("SYNTAX", display_path, err.line,
                         err.message, column=err.column)], [], None)
    analysis = _Analysis(root, display_path)
    analysis.run()
    findings, suppressed = apply_suppressions(
        analysis.findings, source, display_path)
    return findings, suppressed, analysis.model


def analyze_manifest_source(source: str,
                            display_path: str = "<manifest>",
                            ) -> Tuple[List[Finding], List[Finding]]:
    """Findings/suppressed for one manifest (mirrors
    :func:`repro.staticcheck.engine.analyze_source`)."""
    findings, suppressed, _model = analyze_manifest(source, display_path)
    return findings, suppressed


class _ManifestRule:
    """Catalog registration for one MAN code.

    The MAN family runs as a single walk over the YAML tree
    (:func:`analyze_manifest`), not as independent AST visitors, so
    these objects only carry the code/description contract the rule
    registry and ``--list-rules`` rely on; ``check`` is a no-op on
    Python modules.
    """

    def __init__(self, code: str):
        self.code = code
        self.description = RULE_CATALOG[code]

    def check(self, _ctx) -> List[Finding]:
        return []


MANIFEST_RULES = tuple(_ManifestRule(code) for code in (
    "MAN001", "MAN002", "MAN003", "MAN004", "MAN005"))
