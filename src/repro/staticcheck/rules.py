"""AST rules enforcing determinism and crash-injection safety.

Every rule walks one parsed module and emits :class:`Finding` records.
Rules resolve import aliases (``import time as t`` / ``from random import
choice``) through the per-module import map built by the engine, so the
checks are not fooled by renaming.  They are deliberately syntactic: no
type inference, which keeps them fast and predictable — anything a rule
cannot see (e.g. iteration over a *variable* holding a set) is covered by
the runtime kernel checks instead, and documented as such in DESIGN.md.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.staticcheck.findings import Finding, RULE_CATALOG

#: Canonical dotted names of wall-clock sources.  ``time.sleep`` is
#: included: blocking the host thread inside simulation code is always a
#: bug (simulated waiting is ``yield env.timeout(...)``).
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.localtime", "time.gmtime", "time.sleep",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "date.today",
})

#: Functions of the *global* random instance whose draws depend on hidden
#: shared state (import order, PYTHONHASHSEED, other callers).
GLOBAL_RANDOM_CALLS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "binomialvariate", "expovariate", "gammavariate",
    "gauss", "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "seed", "setstate",
})

#: Set-producing method names (syntactic: we cannot prove the receiver is
#: a set, but these names are set vocabulary across this codebase).
SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})

#: env.<method>() calls that mark a generator as a simulation process.
ENV_FACTORY_METHODS = frozenset({
    "timeout", "event", "process", "any_of", "all_of",
})

#: Underscore-separated name segments marking a function as a change
#: fanout hot path (called once per mutation).
HOT_FANOUT_SEGMENTS = frozenset({
    "notify", "emit", "publish", "broadcast", "dispatch", "fanout",
})

#: Identifier fragments naming subscriber collections.
FANOUT_COLLECTION_TOKENS = ("watcher", "listener", "subscriber",
                            "observer")

#: Underscore-separated name segments marking a function as a scoring /
#: priority hot path (called once per candidate per decision).
HOT_SCORING_SEGMENTS = frozenset({
    "score", "scoring", "priority", "prioritize", "rank",
})

#: Identifier fragments naming object stores (scanned wholesale by
#: ``.values()`` / ``.items()``).
STORE_COLLECTION_TOKENS = ("store", "stores")


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def build_import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted names for every import."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else local
                imports[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def canonicalize(dotted: str, imports: Dict[str, str]) -> str:
    """Rewrite the head of a dotted path through the import map."""
    head, _, rest = dotted.partition(".")
    resolved = imports.get(head)
    if resolved is None:
        return dotted
    return f"{resolved}.{rest}" if rest else resolved


class Rule:
    """Base class: one code, one ``check`` pass over a module."""

    code: str = ""

    @property
    def description(self) -> str:
        return RULE_CATALOG[self.code]

    def check(self, ctx) -> List[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError

    def finding(self, ctx, node: ast.AST, message: str) -> Finding:
        return Finding(self.code, ctx.display_path,
                       getattr(node, "lineno", 0), message)


class WallClockRule(Rule):
    """DET001: no wall-clock reads — simulated time comes from env.now."""

    code = "DET001"

    def check(self, ctx) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            canonical = canonicalize(dotted, ctx.imports)
            match = next((known for known in WALL_CLOCK_CALLS
                          if canonical == known
                          or canonical.endswith("." + known)), None)
            if match is not None:
                findings.append(self.finding(
                    ctx, node,
                    f"wall-clock call {match}() breaks replay "
                    f"determinism; use Environment.now"))
        return findings


class GlobalRandomRule(Rule):
    """DET002: draws must come from named RngRegistry streams."""

    code = "DET002"

    def check(self, ctx) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            canonical = canonicalize(dotted, ctx.imports)
            if canonical == "random.Random" and not node.args \
                    and not node.keywords:
                findings.append(self.finding(
                    ctx, node,
                    "unseeded random.Random() is non-reproducible; "
                    "seed it or use RngRegistry.stream()"))
                continue
            head, _, tail = canonical.partition(".")
            if head == "random" and tail in GLOBAL_RANDOM_CALLS:
                findings.append(self.finding(
                    ctx, node,
                    f"global random.{tail}() shares hidden state across "
                    f"components; draw from an RngRegistry stream"))
        return findings


class UnorderedIterationRule(Rule):
    """DET003: never iterate a set expression directly.

    Set iteration order depends on element hashes; for strings those are
    salted per interpreter run (PYTHONHASHSEED), so any set-driven loop
    whose effects reach the event queue destroys replayability.  Wrapping
    the expression in ``sorted(...)`` fixes both the finding and the bug.
    """

    code = "DET003"

    def _is_set_expression(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted in ("set", "frozenset"):
                return f"{dotted}(...)"
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in SET_METHODS:
                return f".{node.func.attr}(...)"
        return None

    def check(self, ctx) -> List[Finding]:
        findings = []
        iter_sites = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                iter_sites.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                iter_sites.extend(gen.iter for gen in node.generators)
        for site in iter_sites:
            what = self._is_set_expression(site)
            if what is not None:
                findings.append(self.finding(
                    ctx, site,
                    f"iterating {what} yields a hash-dependent order; "
                    f"wrap it in sorted(...)"))
        return findings


class InterruptSwallowRule(Rule):
    """SAF001: crash injection must never be silently absorbed.

    A handler is *broad* if it is bare or catches Exception/BaseException.
    A broad handler is safe only when an earlier clause in the same
    ``try`` catches Interrupt and re-raises, or when the broad handler's
    own body re-raises.  An explicit Interrupt handler that does not
    re-raise is flagged too: it converts an injected crash into normal
    control flow.

    Re-raising is judged *path-sensitively* over the handler body's CFG:
    a handler whose ``raise`` sits behind a condition, or that can bail
    out through an early ``return``, swallows the Interrupt on the paths
    that miss the ``raise`` and is flagged with a dedicated message.
    """

    code = "SAF001"

    @staticmethod
    def _caught_names(handler: ast.ExceptHandler,
                      imports: Dict[str, str]) -> List[str]:
        if handler.type is None:
            return ["<bare>"]
        types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
            else [handler.type]
        names = []
        for node in types:
            dotted = dotted_name(node)
            if dotted is not None:
                names.append(canonicalize(dotted, imports))
        return names

    @staticmethod
    def _body_reraises(handler: ast.ExceptHandler) -> bool:
        """Any raise at all, anywhere in the handler (syntactic)."""
        return any(isinstance(node, ast.Raise)
                   for node in ast.walk(handler))

    @staticmethod
    def _reraises_on_all_paths(handler: ast.ExceptHandler) -> bool:
        """No path through the handler body completes without a raise.

        An early ``return`` counts as completing (it swallows the
        exception just as surely as falling off the end does).
        """
        from repro.staticcheck.cfg import build_block_cfg

        cfg = build_block_cfg(handler.body)
        raise_nodes = {n.index for n in cfg.nodes
                       if isinstance(n.stmt, ast.Raise)}
        return not cfg.path_exists(cfg.entry, cfg.exit,
                                   blocked=raise_nodes)

    def _swallow_finding(self, ctx, handler: ast.ExceptHandler,
                         base_message: str) -> Optional[Finding]:
        if self._reraises_on_all_paths(handler):
            return None
        if self._body_reraises(handler):
            return self.finding(
                ctx, handler,
                "handler re-raises Interrupt on only some paths; the "
                "non-raising path turns an injected crash into normal "
                "control flow")
        return self.finding(ctx, handler, base_message)

    def check(self, ctx) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            interrupt_intercepted = False
            for handler in node.handlers:
                names = self._caught_names(handler, ctx.imports)
                catches_interrupt = any(
                    name.rsplit(".", 1)[-1] == "Interrupt"
                    for name in names)
                broad = any(
                    name in ("<bare>", "Exception", "BaseException")
                    or name.endswith((".Exception", ".BaseException"))
                    for name in names)
                if catches_interrupt:
                    finding = self._swallow_finding(
                        ctx, handler,
                        "handler catches Interrupt but never re-raises; "
                        "injected crashes disappear here")
                    if finding is not None:
                        findings.append(finding)
                    interrupt_intercepted = True
                    continue
                if broad and not interrupt_intercepted:
                    caught = ", ".join(names)
                    finding = self._swallow_finding(
                        ctx, handler,
                        f"broad handler ({caught}) can swallow "
                        f"sim.core.Interrupt; add 'except Interrupt: "
                        f"raise' above it")
                    if finding is not None:
                        findings.append(finding)
        return findings


class NonEventYieldRule(Rule):
    """SAF002: process generators may only yield Event subclasses.

    A generator counts as a simulation process if it yields at least one
    ``env.timeout/event/process/any_of/all_of(...)`` call (receiver whose
    dotted path ends in ``env``).  Within such a generator, yielding a
    bare ``yield`` or a literal would crash the kernel at runtime with a
    non-deterministic stack; this rule moves the failure to lint time.
    """

    code = "SAF002"

    _LITERALS = (ast.Constant, ast.List, ast.Tuple, ast.Dict, ast.Set,
                 ast.JoinedStr)

    @staticmethod
    def _own_yields(func: ast.AST) -> List[ast.Yield]:
        """Yield nodes of ``func`` itself, excluding nested functions."""
        yields: List[ast.Yield] = []
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Yield):
                yields.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return yields

    @classmethod
    def _is_env_factory_call(cls, node: Optional[ast.AST]) -> bool:
        if not isinstance(node, ast.Call) \
                or not isinstance(node.func, ast.Attribute):
            return False
        if node.func.attr not in ENV_FACTORY_METHODS:
            return False
        receiver = dotted_name(node.func.value)
        return receiver is not None and \
            receiver.rsplit(".", 1)[-1] == "env"

    def check(self, ctx) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            yields = self._own_yields(node)
            if not any(self._is_env_factory_call(y.value) for y in yields):
                continue
            for y in yields:
                if y.value is None:
                    findings.append(self.finding(
                        ctx, y,
                        "bare yield in a simulation process yields None, "
                        "not an Event; the kernel will reject it"))
                elif isinstance(y.value, self._LITERALS):
                    findings.append(self.finding(
                        ctx, y,
                        "process yields a literal, not an Event; yield "
                        "env.timeout(...) or another Event subclass"))
        return findings


class UnboundedRetryRule(Rule):
    """SAF003: retry loops must be bounded.

    The shape this hunts is ``while True:`` wrapped around a
    try/except whose handler sleeps (``yield env.timeout(...)``) and
    loops again — a retry loop with no attempt cap, which under a
    permanent outage spins forever and hides the failure instead of
    surfacing it.  The loop is considered bounded when anything in it
    references an attempt counter or deadline (a name containing
    ``attempt``/``deadline``/``retries``/``remaining``/``expired``);
    the canonical compliant shape is
    ``for attempt in range(policy.max_attempts)`` (see
    :func:`repro.resilience.retry_call`).  Pure waiter loops (drain
    loops, samplers) are not flagged: only a *handler* that sleeps
    marks the loop as a retry loop.
    """

    code = "SAF003"

    _BOUND_TOKENS = ("attempt", "deadline", "retries", "remaining",
                     "expired")

    @staticmethod
    def _walk_in_scope(roots):
        """Walk nodes without descending into nested function bodies."""
        stack = list(roots)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _handler_sleeps(cls, handler: ast.ExceptHandler) -> bool:
        for node in cls._walk_in_scope(handler.body):
            if isinstance(node, ast.Yield) \
                    and isinstance(node.value, ast.Call) \
                    and isinstance(node.value.func, ast.Attribute) \
                    and node.value.func.attr == "timeout":
                receiver = dotted_name(node.value.func.value)
                if receiver is not None and \
                        receiver.rsplit(".", 1)[-1] == "env":
                    return True
        return False

    @classmethod
    def _has_bound_signal(cls, loop: ast.While) -> bool:
        for node in cls._walk_in_scope([loop]):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name is not None and any(token in name.lower()
                                        for token in cls._BOUND_TOKENS):
                return True
        return False

    def check(self, ctx) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            if not (isinstance(node.test, ast.Constant)
                    and node.test.value is True):
                continue
            sleeping_handlers = [
                sub for sub in self._walk_in_scope(node.body)
                if isinstance(sub, ast.ExceptHandler)
                and self._handler_sleeps(sub)]
            if not sleeping_handlers:
                continue
            if self._has_bound_signal(node):
                continue
            findings.append(self.finding(
                ctx, node,
                "'while True' retry loop backs off in its except handler "
                "but has no attempt cap or deadline; use 'for attempt in "
                "range(policy.max_attempts)' (repro.resilience.retry_call)"
            ))
        return findings


class LinearFanoutRule(Rule):
    """PERF001: no linear subscriber scans in notify/emit hot paths.

    A function whose name marks it as a change fanout path (``_notify``,
    ``emit``, ``publish``, ...) runs once per mutation; a ``for`` loop
    there over a watcher/listener/subscriber collection makes every
    write cost O(all subscribers) even when only a few match.  Index
    the collection by what subscribers match on (exact-key dict, prefix
    trie, per-topic lists) so fanout touches only the matching subset.
    Where the scanned collection *is* already exact — every element
    must receive every notification — suppress with that reason.
    """

    code = "PERF001"

    @staticmethod
    def _is_hot_path(name: str) -> bool:
        return any(segment in HOT_FANOUT_SEGMENTS
                   for segment in name.lower().split("_"))

    @staticmethod
    def _collection_token(node: ast.AST) -> Optional[str]:
        """The subscriber-collection identifier referenced by an
        iteration expression, if any."""
        for sub in ast.walk(node):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None and any(
                    token in name.lower()
                    for token in FANOUT_COLLECTION_TOKENS):
                return name
        return None

    def check(self, ctx) -> List[Finding]:
        findings = []
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if not self._is_hot_path(func.name):
                continue
            iter_sites = []
            for node in UnboundedRetryRule._walk_in_scope(
                    ast.iter_child_nodes(func)):
                if isinstance(node, ast.For):
                    iter_sites.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp, ast.DictComp)):
                    iter_sites.extend(gen.iter for gen in node.generators)
            for site in iter_sites:
                name = self._collection_token(site)
                if name is not None:
                    findings.append(self.finding(
                        ctx, site,
                        f"linear scan over {name!r} in fanout hot path "
                        f"{func.name}(); index subscribers by match key "
                        f"so each notification touches only the matching "
                        f"subset"))
        return findings


class ScoringScanRule(Rule):
    """PERF003: no full-store scans in scoring/priority hot paths.

    A function whose name marks it as scoring or ranking (``_score``,
    ``priority``, ``rank_nodes``, ...) runs once per *candidate* per
    scheduling decision; a ``list_*`` store call or a ``.values()`` /
    ``.items()`` scan of a store there makes every decision cost
    O(candidates x store size).  Maintain the needed aggregate as an
    incremental index updated from watch events and read it in O(1).
    A reference path that deliberately recomputes from the store (e.g.
    under a perf-disable flag) gets a reasoned suppression.
    """

    code = "PERF003"

    @staticmethod
    def _is_scoring_path(name: str) -> bool:
        return any(segment in HOT_SCORING_SEGMENTS
                   for segment in name.lower().split("_"))

    @staticmethod
    def _scan_call(node: ast.Call) -> Optional[str]:
        """A human-readable label when ``node`` is a store scan."""
        callee = node.func
        if isinstance(callee, ast.Attribute):
            method = callee.attr
        elif isinstance(callee, ast.Name):
            method = callee.id
        else:
            return None
        if method.startswith("list_") or method == "list":
            return f"{method}()"
        if method in ("values", "items") and \
                isinstance(callee, ast.Attribute):
            for sub in ast.walk(callee.value):
                name = None
                if isinstance(sub, ast.Name):
                    name = sub.id
                elif isinstance(sub, ast.Attribute):
                    name = sub.attr
                if name is not None and any(
                        token in name.lower()
                        for token in STORE_COLLECTION_TOKENS):
                    return f"{name}.{method}()"
        return None

    def check(self, ctx) -> List[Finding]:
        findings = []
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if not self._is_scoring_path(func.name):
                continue
            for node in UnboundedRetryRule._walk_in_scope(
                    ast.iter_child_nodes(func)):
                if not isinstance(node, ast.Call):
                    continue
                label = self._scan_call(node)
                if label is not None:
                    findings.append(self.finding(
                        ctx, node,
                        f"full-store scan {label} in scoring hot path "
                        f"{func.name}(); runs once per candidate — "
                        f"maintain an incremental index updated from "
                        f"watch events and read it in O(1)"))
        return findings


#: The purely syntactic rules, in catalog order.  The flow-sensitive
#: rules live in :mod:`repro.staticcheck.flowrules`; the combined
#: ``ALL_RULES`` tuple is assembled by the engine.
SYNTACTIC_RULES = (
    WallClockRule(),
    GlobalRandomRule(),
    UnorderedIterationRule(),
    InterruptSwallowRule(),
    NonEventYieldRule(),
    UnboundedRetryRule(),
    LinearFanoutRule(),
    ScoringScanRule(),
)
