"""Runtime invariant checkers for live simulations.

Static rules cannot prove protocol-level properties, so two monitors
watch running substrates:

* :class:`RaftInvariantChecker` — attaches to a
  :class:`repro.raft.cluster.RaftCluster` via the node tracer hooks and
  asserts the Raft paper's safety properties: **Election Safety** (at
  most one leader per term), **Log Matching** (logs agreeing on the term
  at an index agree on every prior entry), **Leader Completeness** (a
  newly elected leader holds every entry known committed), and **State
  Machine Safety** (no node applies a different command at an index).
* :class:`KubeStateMachineChecker` — subscribes to the pod watch stream
  of a :class:`repro.kube.api.KubeAPI` and validates the pod phase state
  machine: Pending → Running → Succeeded/Failed, with no transition out
  of a terminal phase and no resurrection of a deleted uid.

Both collect violations in ``.violations`` and, in the default strict
mode, raise :class:`repro.errors.InvariantViolation` at the faulty event
so the failing trace points at the exact simulated moment.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import InvariantViolation

#: Legal pod phase transitions (self-loops are status refreshes).
_POD_PHASES = ("Pending", "Running", "Succeeded", "Failed")
_ALLOWED_TRANSITIONS = {
    "Pending": {"Pending", "Running", "Succeeded", "Failed"},
    "Running": {"Running", "Succeeded", "Failed"},
    "Succeeded": {"Succeeded"},
    "Failed": {"Failed"},
}


class _CheckerBase:
    def __init__(self, strict: bool = True):
        self.strict = strict
        self.violations: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.violations

    def _violation(self, invariant: str, message: str) -> None:
        record = f"{invariant}: {message}"
        self.violations.append(record)
        if self.strict:
            raise InvariantViolation(record)


class RaftInvariantChecker(_CheckerBase):
    """Observes a Raft group and asserts the paper's safety properties."""

    def __init__(self, strict: bool = True):
        super().__init__(strict)
        #: term -> node_id of the unique leader elected for that term.
        self.leaders_by_term: Dict[int, str] = {}
        #: raft index -> (term, command) once known committed anywhere.
        self.committed: Dict[int, Tuple[int, Any]] = {}
        self.elections_observed = 0
        self.applies_observed = 0

    def attach(self, cluster) -> "RaftInvariantChecker":
        """Install this checker as the tracer of every node."""
        for node in cluster.nodes.values():
            node.tracer = self
        return self

    # -- tracer interface (called by RaftNode) ---------------------------

    def on_leader_elected(self, node) -> None:
        self.elections_observed += 1
        term = node.current_term
        previous = self.leaders_by_term.get(term)
        if previous is not None and previous != node.node_id:
            self._violation(
                "ElectionSafety",
                f"term {term} has two leaders: {previous} and "
                f"{node.node_id}")
        self.leaders_by_term[term] = node.node_id
        for index in sorted(self.committed):
            committed_term, _command = self.committed[index]
            if index > len(node.log):
                self._violation(
                    "LeaderCompleteness",
                    f"leader {node.node_id} (term {term}) is missing "
                    f"committed index {index}")
            elif node.log[index - 1].term != committed_term:
                self._violation(
                    "LeaderCompleteness",
                    f"leader {node.node_id} (term {term}) holds term "
                    f"{node.log[index - 1].term} at committed index "
                    f"{index}, expected {committed_term}")

    def on_apply(self, node, index: int, entry) -> None:
        self.applies_observed += 1
        known = self.committed.get(index)
        if known is None:
            self.committed[index] = (entry.term, entry.command)
            return
        if known != (entry.term, entry.command):
            self._violation(
                "StateMachineSafety",
                f"node {node.node_id} applied {entry.command!r} (term "
                f"{entry.term}) at index {index}; previously applied "
                f"{known[1]!r} (term {known[0]})")

    # -- whole-cluster scans ---------------------------------------------

    def check_log_matching(self, nodes: Iterable) -> None:
        """Pairwise Log Matching over current node logs."""
        nodes = list(nodes)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                self._check_pair(a, b)

    def _check_pair(self, a, b) -> None:
        common = min(len(a.log), len(b.log))
        agree_at = 0
        for index in range(common, 0, -1):
            if a.log[index - 1].term == b.log[index - 1].term:
                agree_at = index
                break
        for index in range(1, agree_at + 1):
            ea, eb = a.log[index - 1], b.log[index - 1]
            if (ea.term, ea.command) != (eb.term, eb.command):
                self._violation(
                    "LogMatching",
                    f"{a.node_id} and {b.node_id} agree on the term at "
                    f"index {agree_at} but diverge at index {index}: "
                    f"{(ea.term, ea.command)!r} vs "
                    f"{(eb.term, eb.command)!r}")

    def check(self, cluster) -> None:
        """Full sweep: log matching now, plus accumulated violations."""
        self.check_log_matching(cluster.nodes.values())


class KubeStateMachineChecker(_CheckerBase):
    """Validates pod phase transitions on a live API server."""

    def __init__(self, api=None, strict: bool = True):
        super().__init__(strict)
        #: pod uid -> last observed phase.
        self._phase: Dict[str, str] = {}
        #: uids that have been DELETED and must never reappear.
        self._gone: Dict[str, str] = {}
        self.transitions_observed = 0
        if api is not None:
            self.attach(api)

    def attach(self, api) -> "KubeStateMachineChecker":
        api.subscribe("pods", self._on_pod_change)
        return self

    def phase_of(self, uid: str) -> Optional[str]:
        return self._phase.get(uid)

    def _on_pod_change(self, verb: str, pod) -> None:
        uid = pod.meta.uid
        phase = pod.phase
        self.transitions_observed += 1
        if uid in self._gone:
            self._violation(
                "NoResurrection",
                f"pod {pod.name} (uid {uid}) observed via {verb} after "
                f"deletion in phase {self._gone[uid]}")
            return
        if verb == "DELETED":
            self._gone[uid] = phase
            self._phase.pop(uid, None)
            return
        if phase not in _POD_PHASES:
            self._violation(
                "KnownPhase",
                f"pod {pod.name} reports unknown phase {phase!r}")
            return
        previous = self._phase.get(uid)
        if verb == "ADDED":
            if previous is not None:
                self._violation(
                    "UniqueUid",
                    f"pod {pod.name} (uid {uid}) ADDED twice")
            elif phase != "Pending":
                self._violation(
                    "StartsPending",
                    f"pod {pod.name} created in phase {phase}, "
                    f"expected Pending")
            self._phase[uid] = phase
            return
        # MODIFIED: first sight (late subscription) just records.
        if previous is not None and \
                phase not in _ALLOWED_TRANSITIONS[previous]:
            self._violation(
                "PhaseTransition",
                f"pod {pod.name} moved {previous} -> {phase}")
        self._phase[uid] = phase
