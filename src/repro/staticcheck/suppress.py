"""Per-line suppression comments, shared by the engine and interproc.

Syntax (one per line, reason mandatory)::

    risky()  # staticcheck: ignore[DET001] replay-safe because ...
    bad()    # staticcheck: ignore[DET001,SAF001] shared fixture shim

A suppression with no reason is inert *and* reported as ``SUP001`` — an
unexplained suppression is exactly the kind of silent drift this tool
exists to prevent.  The interprocedural summary extractor also consults
valid suppressions: a wall-clock call whose DET001 finding carries a
reasoned suppression is declared replay-safe and must not taint its
callers (see :mod:`repro.staticcheck.interproc.summaries`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Set

_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(.*)$")


@dataclass
class Suppression:
    line: int
    codes: Set[str]
    reason: str


def parse_suppressions(source: str) -> List[Suppression]:
    suppressions = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {code.strip().upper()
                 for code in match.group(1).split(",") if code.strip()}
        suppressions.append(
            Suppression(lineno, codes, match.group(2).strip()))
    return suppressions


def valid_suppression_lines(source: str) -> Dict[int, Set[str]]:
    """``{line: codes}`` for suppressions that carry a reason."""
    return {s.line: s.codes for s in parse_suppressions(source)
            if s.reason}
