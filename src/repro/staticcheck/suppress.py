"""Per-line suppression comments, shared by the engine and interproc.

Syntax (one per line, reason mandatory)::

    risky()  # staticcheck: ignore[DET001] replay-safe because ...
    bad()    # staticcheck: ignore[DET001,SAF001] shared fixture shim

A suppression with no reason is inert *and* reported as ``SUP001`` — an
unexplained suppression is exactly the kind of silent drift this tool
exists to prevent.  The interprocedural summary extractor also consults
valid suppressions: a wall-clock call whose DET001 finding carries a
reasoned suppression is declared replay-safe and must not taint its
callers (see :mod:`repro.staticcheck.interproc.summaries`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.staticcheck.findings import Finding, RULE_CATALOG

_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(.*)$")


@dataclass
class Suppression:
    line: int
    codes: Set[str]
    reason: str


def parse_suppressions(source: str) -> List[Suppression]:
    suppressions = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {code.strip().upper()
                 for code in match.group(1).split(",") if code.strip()}
        suppressions.append(
            Suppression(lineno, codes, match.group(2).strip()))
    return suppressions


def valid_suppression_lines(source: str) -> Dict[int, Set[str]]:
    """``{line: codes}`` for suppressions that carry a reason."""
    return {s.line: s.codes for s in parse_suppressions(source)
            if s.reason}


def apply_suppressions(raw: List[Finding], source: str,
                       display_path: str,
                       ) -> Tuple[List[Finding], List[Finding]]:
    """Split raw findings by the source's suppression comments.

    Returns ``(findings, suppressed)``, both sorted.  Reasonless
    suppressions stay inert and add a ``SUP001`` finding.  The comment
    syntax is line-based, so this works identically for Python modules
    and YAML manifests.
    """
    suppressions = parse_suppressions(source)
    by_line: Dict[int, Suppression] = {s.line: s for s in suppressions}
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        suppression = by_line.get(finding.line)
        if suppression is not None and finding.code in suppression.codes \
                and suppression.reason:
            suppressed.append(finding)
        else:
            findings.append(finding)
    for suppression in suppressions:
        if not suppression.reason:
            findings.append(Finding(
                "SUP001", display_path, suppression.line,
                RULE_CATALOG["SUP001"]))
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return findings, suppressed
