"""Workload generators: production trace, gang bursts, scale test, churn."""

from repro.workloads.failures import (
    FailureStudyConfig,
    FailureStudyResult,
    run_failure_study,
)
from repro.workloads.scaletest import (
    BATCHES,
    BatchResult,
    BatchSpec,
    ScaleTestConfig,
    ScaleTestResult,
    build_platform,
    degradation_percent,
    run_scale_test,
)
from repro.workloads.synthetic import (
    CLUSTER_MACHINES,
    GANG_WORKLOADS,
    GPUS_PER_MACHINE,
    GangRunResult,
    JOBS_PER_WORKLOAD,
    run_gang_experiment,
)
from repro.workloads.federation_trace import (
    FederationTrace,
    FederationTraceConfig,
    FederationTraceJob,
    demand_gpus,
)
from repro.workloads.trace import (
    ProductionTrace,
    SECONDS_PER_DAY,
    TraceConfig,
    TraceJob,
    arrivals_by_day,
)

__all__ = [
    "BATCHES",
    "BatchResult",
    "BatchSpec",
    "CLUSTER_MACHINES",
    "FailureStudyConfig",
    "FailureStudyResult",
    "FederationTrace",
    "FederationTraceConfig",
    "FederationTraceJob",
    "GANG_WORKLOADS",
    "GPUS_PER_MACHINE",
    "GangRunResult",
    "JOBS_PER_WORKLOAD",
    "ProductionTrace",
    "SECONDS_PER_DAY",
    "ScaleTestConfig",
    "ScaleTestResult",
    "TraceConfig",
    "TraceJob",
    "arrivals_by_day",
    "build_platform",
    "degradation_percent",
    "demand_gpus",
    "run_failure_study",
    "run_gang_experiment",
]
