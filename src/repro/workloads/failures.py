"""Long-horizon failure study (Figures 6, 7, 8 and Table 8).

Runs the full FfDL platform for days-to-months of simulated time under a
steady job churn with injected node failures and user cancellations, then
classifies the resulting Kubernetes scheduler events exactly the way the
paper's Section 5.6 analysis does:

* Figure 6 — distribution of FailedScheduling over pod types (unique pod
  names, as in the paper).
* Table 8 — distribution over failure reasons/log messages.
* Figure 7 — per-day percentage of pod deletions caused by node failures.
* Figure 8 — per-month percentage of learner pods deleted due to node
  failures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core import FfDLPlatform, JobManifest, PlatformConfig
from repro.core import statuses as st
from repro.kube.events import FAILED_SCHEDULING
from repro.kube.resources import NodeCapacity
from repro.sim.core import Environment
from repro.sim.failure import FaultEvent, FaultInjector, FaultSpec
from repro.sim.rng import RngRegistry
from repro.workloads.trace import SECONDS_PER_DAY


@dataclass
class FailureStudyConfig:
    days: int = 10
    #: Arrival rate sized for ~80-90% average GPU load on the default
    #: cluster — the regime in which the production scheduler actually
    #: emitted its FailedScheduling mix (Table 8).
    jobs_per_day: float = 550.0
    #: Cluster: deliberately CPU-tight nodes so helper pods also contend.
    gpu_nodes: int = 20
    gpus_per_node: int = 4
    #: Deliberately CPU-tight: four 4-CPU learners leave ~3.4 CPUs for
    #: helper/guardian pods, so lhelper pods also contend (Figure 6's
    #: ~15% lhelper share).
    node_cpus: float = 19.4
    node_memory_gb: float = 256.0
    #: Per-node crash MTBF (days) and mean outage duration (seconds).
    node_crash_mtbf_days: float = 45.0
    node_outage_mean_s: float = 900.0
    #: Probability a submitted job is cancelled while queued/deploying.
    cancellation_probability: float = 0.12
    cancellation_delay_s: float = 120.0
    #: Rare scheduler races (Table 8's Timeout / Assume rows).
    timeout_race_probability: float = 0.002
    assume_race_probability: float = 0.002
    #: Job shape.
    mean_iterations: int = 6500
    seed: int = 0


@dataclass
class FailureStudyResult:
    config: FailureStudyConfig
    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_cancelled: int = 0
    node_crashes: int = 0
    #: FailedScheduling events: (time, pod_name, pod_type, reason).
    failed_scheduling: List[Tuple[float, str, str, str]] = \
        field(default_factory=list)
    #: Pod deletions: (time, pod_name, pod_type, cause).
    deletions: List[Tuple[float, str, str, str]] = field(
        default_factory=list)
    learner_pods_created: int = 0
    #: The injector's audit log of every node crash (time, target, outage).
    fault_events: List[FaultEvent] = field(default_factory=list)

    # -- Figure 6 ----------------------------------------------------------

    def failed_pods_by_type(self) -> Dict[str, int]:
        """Unique failed-scheduling pod names, grouped by pod type."""
        seen: Set[str] = set()
        by_type: Dict[str, int] = defaultdict(int)
        for _t, pod_name, pod_type, _reason in self.failed_scheduling:
            if pod_name in seen:
                continue
            seen.add(pod_name)
            by_type[pod_type or "other"] += 1
        return dict(by_type)

    def failed_type_fractions(self) -> Dict[str, float]:
        counts = self.failed_pods_by_type()
        total = sum(counts.values()) or 1
        return {k: v / total for k, v in counts.items()}

    # -- Table 8 ------------------------------------------------------------

    def failed_pods_by_reason(self) -> Dict[str, int]:
        """Unique (pod, reason) pairs grouped by reason."""
        seen: Set[Tuple[str, str]] = set()
        by_reason: Dict[str, int] = defaultdict(int)
        for _t, pod_name, _type, reason in self.failed_scheduling:
            key = (pod_name, reason)
            if key in seen:
                continue
            seen.add(key)
            by_reason[reason] += 1
        return dict(by_reason)

    def reason_fractions(self) -> Dict[str, float]:
        counts = self.failed_pods_by_reason()
        total = sum(counts.values()) or 1
        return {k: v / total for k, v in counts.items()}

    # -- Figures 7 and 8 -------------------------------------------------------

    def deletion_percent_by_day(self) -> Dict[int, float]:
        total: Dict[int, int] = defaultdict(int)
        node_failure: Dict[int, int] = defaultdict(int)
        for time, _name, _type, cause in self.deletions:
            day = int(time // SECONDS_PER_DAY)
            total[day] += 1
            if cause == "node-failure":
                node_failure[day] += 1
        return {day: 100.0 * node_failure.get(day, 0) / total[day]
                for day in range(self.config.days) if total.get(day)}

    def learner_deletion_percent_by_month(
            self, days_per_month: int) -> Dict[int, float]:
        learner_total: Dict[int, int] = defaultdict(int)
        learner_node_failure: Dict[int, int] = defaultdict(int)
        for time, _name, pod_type, cause in self.deletions:
            if pod_type != "learner":
                continue
            month = int(time // (days_per_month * SECONDS_PER_DAY))
            learner_total[month] += 1
            if cause == "node-failure":
                learner_node_failure[month] += 1
        months = self.config.days // days_per_month
        return {m: (100.0 * learner_node_failure.get(m, 0) /
                    learner_total[m]) if learner_total.get(m) else 0.0
                for m in range(months)}


def run_failure_study(config: FailureStudyConfig) -> FailureStudyResult:
    """Run the study; see module docstring."""
    env = Environment()
    rng = RngRegistry(config.seed)
    platform_config = PlatformConfig(
        gang_scheduling=True,
        node_detection_latency_s=40.0,
        pod_eviction_timeout_s=60.0)
    platform = FfDLPlatform(env, rng, platform_config)
    # Production-like deletion/observation timing: Kubernetes' 30s
    # termination grace and a scheduler informer that lags seconds under
    # load — the regime in which Table 8's deletion-race mix arises.
    platform.cluster.deletion_grace_s = 30.0
    platform.cluster.scheduler.config.informer_staleness_s = 3.0
    platform.cluster.scheduler.config.timeout_race_probability = \
        config.timeout_race_probability
    platform.cluster.scheduler.config.assume_race_probability = \
        config.assume_race_probability
    platform.cluster.add_nodes(
        config.gpu_nodes,
        NodeCapacity(cpus=config.node_cpus,
                     memory_gb=config.node_memory_gb,
                     gpus=config.gpus_per_node, gpu_type="K80"))
    platform.admission.register("study", gpu_quota=10**6)
    result = FailureStudyResult(config=config)
    stream = rng.stream("failure-study")

    # -- node fault injection --------------------------------------------------
    # Crashes run through the shared FaultInjector so every occurrence
    # lands in its audit log (and each node draws from its own stream,
    # decoupling the crash schedule from the job-churn draws below).
    injector = FaultInjector(env, rng)
    crash_spec = FaultSpec(
        kind="node-crash",
        mtbf_s=config.node_crash_mtbf_days * SECONDS_PER_DAY,
        duration_s=config.node_outage_mean_s,
        # A crashed node stays down at least as long as detection+eviction.
        min_duration_s=120.0)

    def fail_node(event: FaultEvent) -> None:
        result.node_crashes += 1
        platform.cluster.fail_node(event.target)

    def recover_node(event: FaultEvent) -> None:
        platform.cluster.recover_node(event.target)

    for node_name in list(platform.cluster.kubelets):
        injector.inject_recurring(crash_spec, node_name,
                                  on_fault=fail_node,
                                  on_recover=recover_node)

    # -- job churn ------------------------------------------------------------------
    size_mix = [((1, 1), 0.62), ((1, 2), 0.18), ((2, 1), 0.12),
                ((2, 2), 0.08)]

    def pick_size():
        roll = stream.random()
        acc = 0.0
        for value, p in size_mix:
            acc += p
            if roll <= acc:
                return value
        return (1, 1)

    def submit_and_maybe_cancel(index: int):
        learners, gpus = pick_size()
        iterations = max(100, int(stream.expovariate(
            1.0 / config.mean_iterations)))
        manifest = JobManifest(
            name=f"churn-{index}", user="study",
            framework="tensorflow", model="resnet50",
            data_bucket="churn-data", result_bucket="churn-results",
            learners=learners, gpus_per_learner=gpus, gpu_type="K80",
            iterations=iterations, dataset_objects=4,
            dataset_object_bytes=32e6)
        job_id = yield platform.submit_job(manifest)
        result.jobs_submitted += 1
        if stream.random() < config.cancellation_probability:
            yield env.timeout(stream.random() *
                              config.cancellation_delay_s)
            job = platform.job(job_id)
            if not job.status.is_terminal:
                platform.preempt_job(job_id, reason="user cancelled")
                result.jobs_cancelled += 1

    def arrivals():
        index = 0
        horizon = config.days * SECONDS_PER_DAY
        rate = config.jobs_per_day / SECONDS_PER_DAY
        while env.now < horizon:
            yield env.timeout(stream.expovariate(rate))
            if env.now >= horizon:
                break
            index += 1
            env.process(submit_and_maybe_cancel(index),
                        name=f"submit:churn-{index}")

    env.process(arrivals(), name="arrivals")
    env.run(until=config.days * SECONDS_PER_DAY + 4 * 3600.0)

    # -- harvest ---------------------------------------------------------------------
    for event in platform.cluster.api.event_log.of_kind(FAILED_SCHEDULING):
        result.failed_scheduling.append(
            (event.time, event.object_name, event.pod_type or "other",
             event.reason))
    result.deletions = list(platform.cluster.deletion_log)
    result.learner_pods_created = sum(
        1 for e in platform.cluster.api.event_log.events
        if e.kind == "Started" and e.pod_type == "learner")
    result.jobs_completed = sum(
        1 for job in platform.jobs.values()
        if job.status.current == st.COMPLETED)
    result.fault_events = injector.events_of_kind("node-crash")
    return result
