"""Paper-shaped arrival trace scaled for the multi-cell federation.

The production trace (:mod:`repro.workloads.trace`) models 60 days of
arrivals against one 400-GPU cluster.  Federation scenarios need the
same *shape* — weekday rhythm, heavy-tailed size mix, K80/V100 split —
compressed into a simulated hour and scaled up to thousands of GPUs
across cells, with per-job tenants and zone affinities so quota
accounting and locality-aware selection have something to bite on.

Compression maps the seven weekday intensity factors onto seven equal
slices of the arrival window (a week becomes an hour), and job length
becomes an iteration count instead of a wall-clock duration: the
simulated performance model turns iterations into time per GPU type,
which preserves the paper's K80-vs-V100 throughput gap instead of
fixing runtimes by fiat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.manifest import JobManifest
from repro.sim.rng import RngRegistry

#: Weekday intensity, Monday-first — same shape as TraceConfig.
_WEEKDAY_FACTORS = (1.15, 1.2, 1.25, 1.2, 1.1, 0.55, 0.45)


@dataclass(frozen=True)
class FederationTraceJob:
    """One arrival in the federated trace."""

    trace_id: str
    arrival_s: float
    user: str
    preferred_zone: str
    model: str
    framework: str
    learners: int
    gpus_per_learner: int
    gpu_type: str
    iterations: int

    @property
    def total_gpus(self) -> int:
        return self.learners * self.gpus_per_learner

    def to_manifest(self) -> JobManifest:
        return JobManifest(
            name=self.trace_id, user=self.user, framework=self.framework,
            model=self.model, data_bucket=f"data-{self.user}",
            result_bucket=f"results-{self.user}",
            learners=self.learners,
            gpus_per_learner=self.gpus_per_learner,
            gpu_type=self.gpu_type, iterations=self.iterations,
            dataset_objects=2, dataset_object_bytes=32e6)


@dataclass
class FederationTraceConfig:
    """Knobs of the compressed federated trace."""

    jobs: int = 48
    #: Arrivals land inside [0, arrival_window_s).
    arrival_window_s: float = 420.0
    #: (user, preferred_zone, weight) — tenants with a home zone.
    tenants: Tuple[Tuple[str, str, float], ...] = (
        ("vision-team", "zone-a", 0.35),
        ("speech-team", "zone-b", 0.30),
        ("ai-research", "zone-a", 0.25),
        ("hackday", "zone-b", 0.10),
    )
    #: (learners, gpus_per_learner) -> probability; the production mix.
    size_mix: Tuple[Tuple[Tuple[int, int], float], ...] = (
        ((1, 1), 0.48),
        ((1, 2), 0.17),
        ((1, 4), 0.12),
        ((2, 1), 0.08),
        ((2, 2), 0.06),
        ((2, 4), 0.04),
        ((4, 1), 0.03),
        ((4, 2), 0.02),
    )
    #: K80/V100 split of the production cluster.  4-GPU learners only
    #: have a K80 t-shirt size (Table 5), enforced in generate().
    gpu_type_mix: Tuple[Tuple[str, float], ...] = (
        ("K80", 0.45), ("V100", 0.55))
    model_mix: Tuple[Tuple[Tuple[str, str], float], ...] = (
        (("resnet50", "tensorflow"), 0.5),
        (("vgg16", "tensorflow"), 0.3),
        (("inceptionv3", "tensorflow"), 0.2),
    )
    #: Uniform iteration range (length stands in for duration).
    min_iterations: int = 80
    max_iterations: int = 240


class FederationTrace:
    """Seeded generator; one named stream, schedule-independent."""

    def __init__(self, rng: RngRegistry,
                 config: FederationTraceConfig | None = None):
        self.config = config or FederationTraceConfig()
        self._rng = rng.stream("federation-trace")

    def _arrival(self, rng) -> float:
        """Inverse-CDF sample of the compressed weekday intensity."""
        cfg = self.config
        total = sum(_WEEKDAY_FACTORS)
        roll = rng.random() * total
        slice_s = cfg.arrival_window_s / len(_WEEKDAY_FACTORS)
        for index, factor in enumerate(_WEEKDAY_FACTORS):
            if roll < factor:
                return (index + roll / factor) * slice_s
            roll -= factor
        return cfg.arrival_window_s - 1e-6

    @staticmethod
    def _pick(rng, mix):
        roll = rng.random()
        acc = 0.0
        for value, probability in mix:
            acc += probability
            if roll <= acc:
                return value
        return mix[-1][0]

    def generate(self) -> List[FederationTraceJob]:
        cfg = self.config
        rng = self._rng
        jobs: List[FederationTraceJob] = []
        for index in range(1, cfg.jobs + 1):
            user, zone = self._pick(
                rng, tuple(((u, z), w) for u, z, w in cfg.tenants))
            learners, gpus = self._pick(rng, cfg.size_mix)
            gpu_type = self._pick(rng, cfg.gpu_type_mix)
            if gpus > 2 and gpu_type == "V100":
                gpu_type = "K80"  # no 4xV100 t-shirt size (Table 5)
            model, framework = self._pick(rng, cfg.model_mix)
            iterations = rng.randint(cfg.min_iterations,
                                     cfg.max_iterations)
            jobs.append(FederationTraceJob(
                trace_id=f"fedtrace-{index:05d}",
                arrival_s=self._arrival(rng),
                user=user, preferred_zone=zone,
                model=model, framework=framework,
                learners=learners, gpus_per_learner=gpus,
                gpu_type=gpu_type, iterations=iterations))
        jobs.sort(key=lambda job: (job.arrival_s, job.trace_id))
        return jobs


def demand_gpus(jobs: List[FederationTraceJob]) -> int:
    return sum(job.total_gpus for job in jobs)
