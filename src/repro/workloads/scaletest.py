"""The pre-production scale test (Table 7 and Figure 5).

Section 5.5: a 680-GPU cluster, light load (70 concurrent jobs) vs heavy
load (700 concurrent jobs), staggered starts in four batches (K80 twice in
the first 15 minutes, P100 after 30, V100 after 32), every job a
ResNet-50/TensorFlow ImageNet training run streaming its dataset from
object storage through an s3fs mount.

The heavy-load degradation by GPU type (K80 6-8%, P100 ~24%, V100 ~51%)
emerges from shared object-storage bandwidth: faster GPUs demand more
bytes per second, so when the link saturates they lose the most.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core import FfDLPlatform, JobManifest, PlatformConfig
from repro.core import statuses as st
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry


@dataclass
class BatchSpec:
    """One staggered batch of identical jobs (Table 7 rows)."""

    name: str
    gpu_type: str
    jobs_light: int
    jobs_heavy: int
    start_s: float


#: Table 7, verbatim.
BATCHES = (
    BatchSpec("K80-batch1", "K80", 30, 300, 30.0),
    BatchSpec("K80-batch2", "K80", 24, 240, 15 * 60.0),
    BatchSpec("P100-batch3", "P100", 11, 110, 30 * 60.0),
    BatchSpec("V100-batch4", "V100", 5, 50, 32 * 60.0),
)


@dataclass
class ScaleTestConfig:
    """Cluster and workload shape, with a linear scale knob.

    ``scale=1.0`` is the paper's full 680-GPU test; smaller scales shrink
    the cluster and the job counts together, preserving the
    contention ratios (used for fast benchmark runs).
    """

    scale: float = 1.0
    k80_nodes: int = 130   # x4 GPUs = 520
    p100_nodes: int = 55   # x2 GPUs = 110
    v100_nodes: int = 25   # x2 GPUs = 50
    iterations: int = 5150
    batch_size: int = 64
    dataset_objects: int = 30
    dataset_object_bytes: float = 352e6
    checkpoint_interval: int = 0
    #: Aggregate OSS bandwidth; scales with the cluster.  Calibrated so the
    #: heavy-load degradation lands near the paper's Figure 5 (K80 ~8%,
    #: P100 ~26%, V100 ~35-50%).
    oss_bandwidth_bps: float = 6.5e9

    def scaled(self, value: float) -> int:
        return max(1, int(round(value * self.scale)))


@dataclass
class BatchResult:
    name: str
    gpu_type: str
    jobs: int
    completed: int
    mean_runtime_s: float
    runtimes: List[float] = field(default_factory=list)


@dataclass
class ScaleTestResult:
    load: str  # "light" | "heavy"
    batches: Dict[str, BatchResult]
    total_jobs: int
    failed_jobs: int
    makespan_s: float
    aggregate_images_per_s: float
    aggregate_iterations_per_s: float


def build_platform(env: Environment, rng: RngRegistry,
                   config: ScaleTestConfig) -> FfDLPlatform:
    platform_config = PlatformConfig(
        gang_scheduling=True,
        oss_bandwidth_bps=config.oss_bandwidth_bps * config.scale,
        # ImageNet-scale datasets with shuffled reads defeat the mount
        # cache (the paper's own storage lesson): jobs stream every pass.
        mount_cache_bytes=0,
    )
    platform = FfDLPlatform(env, rng, platform_config)
    platform.add_gpu_nodes(config.scaled(config.k80_nodes),
                           gpus_per_node=4, gpu_type="K80")
    platform.add_gpu_nodes(config.scaled(config.p100_nodes),
                           gpus_per_node=2, gpu_type="P100")
    platform.add_gpu_nodes(config.scaled(config.v100_nodes),
                           gpus_per_node=2, gpu_type="V100")
    platform.admission.register("scale-test", gpu_quota=10**6)
    return platform


def job_manifest(config: ScaleTestConfig, batch: BatchSpec,
                 index: int) -> JobManifest:
    return JobManifest(
        name=f"{batch.name}-{index}",
        user="scale-test",
        framework="tensorflow", model="resnet50",
        data_bucket="imagenet", result_bucket="scale-results",
        learners=1, gpus_per_learner=1, gpu_type=batch.gpu_type,
        iterations=config.iterations, batch_size=config.batch_size,
        dataset_objects=config.dataset_objects,
        dataset_object_bytes=config.dataset_object_bytes,
        checkpoint_interval_iterations=config.checkpoint_interval)


def run_scale_test(load: str, config: ScaleTestConfig,
                   seed: int = 0) -> ScaleTestResult:
    """Run one load scenario end to end; returns per-batch results."""
    if load not in ("light", "heavy"):
        raise ValueError("load must be 'light' or 'heavy'")
    env = Environment()
    platform = build_platform(env, RngRegistry(seed), config)
    job_ids_by_batch: Dict[str, List[str]] = {b.name: [] for b in BATCHES}

    def submit_batch(batch: BatchSpec, count: int):
        yield env.timeout(max(0.0, batch.start_s - env.now))
        for index in range(count):
            manifest = job_manifest(config, batch, index)
            job_id = yield platform.submit_job(manifest)
            job_ids_by_batch[batch.name].append(job_id)

    submitters = []
    for batch in BATCHES:
        count = config.scaled(batch.jobs_light if load == "light"
                              else batch.jobs_heavy)
        submitters.append(env.process(submit_batch(batch, count),
                                      name=f"submit:{batch.name}"))
    # Run until submission finished and every job reached a terminal state.
    horizon = 10 * 86400.0
    env.run_until_complete(env.all_of(submitters), limit=horizon)
    env.run_until_complete(
        env.process(_drain(env, platform, job_ids_by_batch)),
        limit=horizon)

    batches: Dict[str, BatchResult] = {}
    total_images = 0.0
    failed = 0
    makespan = 0.0
    total_jobs = 0
    for batch in BATCHES:
        runtimes = []
        completed = 0
        for job_id in job_ids_by_batch[batch.name]:
            total_jobs += 1
            job = platform.job(job_id)
            if job.status.current == st.COMPLETED:
                completed += 1
                # DOWNLOADING can be coalesced away by the controller's
                # batching under heavy load; fall back along the pipeline.
                start = (job.status.time_of(st.DOWNLOADING) or
                         job.status.time_of(st.PROCESSING) or
                         job.status.time_of(st.DEPLOYING))
                runtimes.append(job.finished_at - start)
                makespan = max(makespan, job.finished_at)
                total_images += (job.manifest.iterations *
                                 (job.manifest.batch_size or 64))
            else:
                failed += 1
        batches[batch.name] = BatchResult(
            name=batch.name, gpu_type=batch.gpu_type,
            jobs=len(job_ids_by_batch[batch.name]), completed=completed,
            mean_runtime_s=(sum(runtimes) / len(runtimes)
                            if runtimes else float("nan")),
            runtimes=runtimes)
    elapsed = makespan or env.now
    return ScaleTestResult(
        load=load, batches=batches, total_jobs=total_jobs,
        failed_jobs=failed, makespan_s=elapsed,
        aggregate_images_per_s=total_images / elapsed if elapsed else 0.0,
        aggregate_iterations_per_s=(total_images / 64) / elapsed
        if elapsed else 0.0)


def _drain(env: Environment, platform: FfDLPlatform,
           job_ids_by_batch: Dict[str, List[str]]):
    """Wait until every submitted job is terminal (submission is staggered,
    so poll the growing id set at a coarse interval)."""
    while True:
        yield env.timeout(60.0)
        ids = [job_id for ids in job_ids_by_batch.values()
               for job_id in ids]
        if not ids:
            continue
        jobs = [platform.job(job_id) for job_id in ids]
        if all(j.status.is_terminal for j in jobs) and \
                env.now > 40 * 60.0:
            return


def degradation_percent(light: ScaleTestResult,
                        heavy: ScaleTestResult) -> Dict[str, float]:
    """Per-batch heavy-vs-light mean-runtime degradation (Figure 5)."""
    out = {}
    for name, light_batch in light.batches.items():
        heavy_batch = heavy.batches[name]
        out[name] = 100.0 * (heavy_batch.mean_runtime_s /
                             light_batch.mean_runtime_s - 1.0)
    return out
