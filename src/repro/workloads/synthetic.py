"""Synthetic gang workloads for the Figure 4 experiments.

Section 5.3: "a synthetic workload with a cluster of 15 machines, with 4
K80 GPUs each ... three workloads, of 50 synchronous DL training jobs
each: (i) jobs with 2 learners, 1 GPU/learner, (ii) jobs with 2 learners,
2 GPUs/learner and (iii) jobs with 4 learners, 1 GPU/learner.  These jobs
are submitted concurrently."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.kube.cluster import Cluster
from repro.kube.objects import (
    ContainerSpec,
    ObjectMeta,
    Pod,
    PodSpec,
)
from repro.kube.resources import NodeCapacity, ResourceRequest
from repro.kube.scheduling.framework import SchedulerConfig
from repro.sim.core import Environment
from repro.sim.rng import RngRegistry

#: Figure 4's three workloads: (learners, gpus_per_learner).
GANG_WORKLOADS: Tuple[Tuple[int, int], ...] = ((2, 1), (2, 2), (4, 1))
JOBS_PER_WORKLOAD = 50
CLUSTER_MACHINES = 15
GPUS_PER_MACHINE = 4


@dataclass
class GangRunResult:
    """Outcome of one synthetic run."""

    deadlocked_learners: int
    idle_gpus: int
    idle_gpu_percent: float
    fully_scheduled_jobs: int
    fully_queued_jobs: int


def build_cluster(env: Environment, rng: RngRegistry, gang: bool,
                  machines: int = CLUSTER_MACHINES,
                  gpus_per_machine: int = GPUS_PER_MACHINE) -> Cluster:
    config = SchedulerConfig(policy="pack", gang=gang)
    cluster = Cluster(env, rng, config)
    from repro.docker import Image
    cluster.push_image(Image("learner", size_bytes=1e6))
    cluster.add_nodes(machines, NodeCapacity(
        cpus=64, memory_gb=512, gpus=gpus_per_machine, gpu_type="K80"))
    return cluster


def submit_gang_jobs(env: Environment, cluster: Cluster, learners: int,
                     gpus_per_learner: int,
                     jobs: int = JOBS_PER_WORKLOAD,
                     duration_s: float = 100_000.0) -> Dict[str, List[Pod]]:
    """Submit ``jobs`` synchronous DL jobs concurrently; returns the pods
    grouped by job."""

    def sleeper(container):
        yield env.timeout(duration_s)
        return 0

    by_job: Dict[str, List[Pod]] = {}
    for j in range(jobs):
        gang_name = f"syn-{learners}x{gpus_per_learner}-{j}"
        pods = []
        for i in range(learners):
            pod = Pod(
                meta=ObjectMeta(name=f"{gang_name}-{i}",
                                labels={"type": "learner",
                                        "job": gang_name}),
                spec=PodSpec(
                    containers=[ContainerSpec("learner", "learner:latest",
                                              sleeper)],
                    resources=ResourceRequest(
                        cpus=4.0 * gpus_per_learner, memory_gb=24,
                        gpus=gpus_per_learner, gpu_type="K80"),
                    gang_name=gang_name, gang_size=learners))
            pods.append(pod)
            cluster.api.create_pod(pod)
        by_job[gang_name] = pods
    return by_job


def measure_run(cluster: Cluster,
                by_job: Dict[str, List[Pod]]) -> GangRunResult:
    """Count temporarily deadlocked learners and idle (hoarded) GPUs.

    A learner is *temporarily deadlocked* when it is Running (holding its
    GPUs) while at least one sibling of its synchronous job is still
    Pending — it cannot make progress until the whole gang runs.
    """
    deadlocked = 0
    idle_gpus = 0
    fully_scheduled = 0
    fully_queued = 0
    for _name, pods in by_job.items():
        running = [p for p in pods if p.phase == "Running"]
        pending = [p for p in pods if p.phase == "Pending"]
        if running and pending:
            deadlocked += len(running)
            idle_gpus += sum(p.spec.resources.gpus for p in running)
        elif running and not pending:
            fully_scheduled += 1
        elif pending and not running:
            fully_queued += 1
    total_gpus = cluster.total_gpus()
    return GangRunResult(
        deadlocked_learners=deadlocked,
        idle_gpus=idle_gpus,
        idle_gpu_percent=100.0 * idle_gpus / total_gpus,
        fully_scheduled_jobs=fully_scheduled,
        fully_queued_jobs=fully_queued)


def run_gang_experiment(learners: int, gpus_per_learner: int, gang: bool,
                        seed: int,
                        settle_s: float = 120.0) -> GangRunResult:
    """One run of the Figure 4 experiment."""
    env = Environment()
    cluster = build_cluster(env, RngRegistry(seed), gang=gang)
    by_job = submit_gang_jobs(env, cluster, learners, gpus_per_learner)
    env.run(until=settle_s)
    return measure_run(cluster, by_job)
