"""Synthetic production job-arrival trace (Figure 3a).

The paper collected "job arrival traces on a production cluster with 400
GPUs (180 K80s and 220 V100s) over a 60 day period", with 200-1400
arrivals per day and a visible weekly rhythm.  The traces were announced
for release but are not available, so this generator reproduces the
published arrival-by-day shape from a seeded stochastic model; every
parameter is explicit below.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.sim.rng import RngRegistry

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class TraceJob:
    """One job in the trace."""

    job_id: str
    arrival_s: float
    duration_s: float
    learners: int
    gpus_per_learner: int
    gpu_type: str

    @property
    def total_gpus(self) -> int:
        return self.learners * self.gpus_per_learner

    @property
    def arrival_day(self) -> int:
        return int(self.arrival_s // SECONDS_PER_DAY)


@dataclass
class TraceConfig:
    """Knobs of the synthetic production trace."""

    days: int = 60
    #: Mean arrivals per day mid-trace; modulated by trend and weekday.
    base_jobs_per_day: float = 650.0
    #: Linear growth of demand over the trace (the service was ramping).
    trend_per_day: float = 4.0
    #: Weekday multipliers, Monday-first (weekends are quiet).
    weekday_factors: tuple = (1.15, 1.2, 1.25, 1.2, 1.1, 0.55, 0.45)
    #: Job-size mix: (learners, gpus_per_learner) -> probability.
    size_mix: tuple = (
        ((1, 1), 0.48),
        ((1, 2), 0.17),
        ((1, 4), 0.12),
        ((2, 1), 0.08),
        ((2, 2), 0.06),
        ((2, 4), 0.04),
        ((4, 1), 0.03),
        ((4, 2), 0.02),
    )
    #: GPU-type mix on the production cluster (180 K80 / 220 V100).
    gpu_type_mix: tuple = (("K80", 0.45), ("V100", 0.55))
    #: Lognormal job duration parameters (median ~3h, heavy tail), sized so
    #: the 400-GPU cluster runs at ~80% average offered load with weekday
    #: peaks near saturation — the regime in which the paper's Figure 3b
    #: queueing percentages (2-20% of jobs delayed >15 min) arise.
    duration_mu: float = math.log(7_800.0)
    duration_sigma: float = 1.15
    max_duration_s: float = 2 * SECONDS_PER_DAY


class ProductionTrace:
    """Seeded generator for the 60-day arrival trace."""

    def __init__(self, rng: RngRegistry,
                 config: TraceConfig | None = None):
        self.config = config or TraceConfig()
        self._rng = rng.stream("production-trace")

    def expected_arrivals(self, day: int) -> float:
        cfg = self.config
        weekday = cfg.weekday_factors[day % 7]
        trend = cfg.base_jobs_per_day + cfg.trend_per_day * (
            day - cfg.days / 2)
        return max(50.0, trend * weekday)

    def generate(self) -> List[TraceJob]:
        cfg = self.config
        rng = self._rng
        jobs: List[TraceJob] = []
        counter = 0
        for day in range(cfg.days):
            count = max(0, int(rng.gauss(self.expected_arrivals(day),
                                         self.expected_arrivals(day)
                                         * 0.08)))
            for _ in range(count):
                counter += 1
                arrival = day * SECONDS_PER_DAY + \
                    rng.random() * SECONDS_PER_DAY
                duration = min(cfg.max_duration_s,
                               rng.lognormvariate(cfg.duration_mu,
                                                  cfg.duration_sigma))
                size = self._pick(rng, cfg.size_mix)
                gpu_type = self._pick(rng, cfg.gpu_type_mix)
                jobs.append(TraceJob(
                    job_id=f"trace-{counter:06d}",
                    arrival_s=arrival, duration_s=duration,
                    learners=size[0], gpus_per_learner=size[1],
                    gpu_type=gpu_type))
        jobs.sort(key=lambda j: j.arrival_s)
        return jobs

    @staticmethod
    def _pick(rng, mix):
        roll = rng.random()
        acc = 0.0
        for value, probability in mix:
            acc += probability
            if roll <= acc:
                return value
        return mix[-1][0]


def arrivals_by_day(jobs: List[TraceJob], days: int) -> Dict[int, int]:
    counts = {day: 0 for day in range(days)}
    for job in jobs:
        if job.arrival_day < days:
            counts[job.arrival_day] += 1
    return counts
