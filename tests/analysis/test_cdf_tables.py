"""Tests for CDF helpers and table formatting."""

import pytest

from hypothesis import given, strategies as st

from repro.analysis import (
    cdf_at,
    empirical_cdf,
    format_table,
    probability_of_zero,
    quantile,
)


def test_empirical_cdf_simple():
    cdf = empirical_cdf([1, 2, 2, 4])
    assert cdf == [(1, 0.25), (2, 0.75), (4, 1.0)]


def test_empirical_cdf_empty():
    assert empirical_cdf([]) == []


def test_cdf_at_interpolates_stepwise():
    cdf = empirical_cdf([1, 2, 2, 4])
    assert cdf_at(cdf, 0) == 0.0
    assert cdf_at(cdf, 1) == 0.25
    assert cdf_at(cdf, 3) == 0.75
    assert cdf_at(cdf, 10) == 1.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
def test_cdf_monotone_and_ends_at_one(samples):
    cdf = empirical_cdf(samples)
    probs = [p for _v, p in cdf]
    assert probs == sorted(probs)
    assert probs[-1] == pytest.approx(1.0)


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1),
       st.floats(min_value=0, max_value=1))
def test_quantile_within_range(samples, q):
    value = quantile(samples, q)
    assert min(samples) <= value <= max(samples)


def test_quantile_validation():
    with pytest.raises(ValueError):
        quantile([], 0.5)
    with pytest.raises(ValueError):
        quantile([1], 1.5)


def test_probability_of_zero():
    assert probability_of_zero([0, 0, 1, 2]) == 0.5
    assert probability_of_zero([]) == 0.0


def test_format_table_aligns_columns():
    text = format_table(["name", "value"],
                        [["a", 1.5], ["longer-name", 22]],
                        title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    # All data lines aligned to the same width.
    assert len(lines[3]) == len(lines[4])
