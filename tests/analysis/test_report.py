"""Tests for the programmatic report builder."""

from repro.analysis.report import (
    build_report,
    fig3_section,
    fig4_section,
    quick_report,
    staticcheck_section,
    table2_section,
    table4_section,
    table5_section,
    table6_section,
)


def test_each_section_well_formed():
    for section in (table2_section, table4_section, table5_section,
                    table6_section):
        title, headers, rows = section()
        assert title
        assert rows
        assert all(len(row) == len(headers) for row in rows)


def test_fig4_section_small():
    title, headers, rows = fig4_section(repeats=3)
    assert len(rows) == 6  # 3 workloads x 2 schedulers
    gang_rows = [r for r in rows if r[1] == "gang"]
    assert all(r[2] == "0-0" for r in gang_rows)


def test_fig3_section_small():
    title, headers, rows = fig3_section(days=3)
    by_policy = {row[0]: row[1] for row in rows}
    assert set(by_policy) == {"spread", "pack"}
    assert by_policy["pack"] <= by_policy["spread"]


def test_quick_report_renders_markdown():
    report = quick_report()
    assert report.startswith("# FfDL reproduction report")
    assert "## Table 5" in report
    assert "## Figure 4" in report


def test_staticcheck_section_reports_clean_tree():
    title, headers, rows = staticcheck_section()
    assert "Static analysis" in title
    assert len(rows) == 1
    assert "clean" in rows[0][2]


def test_build_report_custom_subset():
    report = build_report([table5_section])
    assert "Table 5" in report
    assert "Figure 4" not in report
