"""Tests for the deterministic chaos engine and its scenarios."""

import pytest

from repro.chaos import (
    ChaosEngine,
    InjectionStep,
    SCENARIOS,
    Scenario,
    get_scenario,
)
from repro.chaos.cli import main
from repro.chaos.engine import FAULT_KINDS
from repro.errors import SimulationError

#: A fast scenario for unit tests: two jobs, one Mongo failover and one
#: etcd leader kill inside a short horizon.
TINY = Scenario(
    name="tiny",
    description="unit-test scenario",
    steps=(
        InjectionStep(at_s=30.0, kind="mongo-primary-kill",
                      duration_s=20.0),
        InjectionStep(at_s=60.0, kind="etcd-leader-kill",
                      duration_s=15.0),
    ),
    horizon_s=240.0,
    settle_s=120.0,
    jobs=2,
    job_interarrival_s=10.0,
    job_iterations=20,
)


def run_tiny(seed=0):
    return ChaosEngine(TINY, seed=seed).run()


# -- scenario data ---------------------------------------------------------


def test_injection_step_rejects_unknown_kind():
    with pytest.raises(ValueError):
        InjectionStep(at_s=1.0, kind="meteor-strike")


def test_injection_step_rejects_negative_times():
    with pytest.raises(ValueError):
        InjectionStep(at_s=-1.0, kind="oss-outage")
    with pytest.raises(ValueError):
        InjectionStep(at_s=1.0, kind="oss-outage", duration_s=-1.0)


def test_get_scenario_resolves_and_rejects():
    assert get_scenario("everything-at-once").name == "everything-at-once"
    with pytest.raises(KeyError):
        get_scenario("no-such-scenario")


def test_named_scenarios_are_consistent():
    expected = {"etcd-leader-kill", "mongo-failover-under-churn",
                "objectstore-brownout", "rolling-node-crashes",
                "everything-at-once"}
    assert set(SCENARIOS) == expected
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.steps
    # The combined scenario exercises every fault kind.
    combined = {step.kind for step in
                SCENARIOS["everything-at-once"].steps}
    assert combined == set(FAULT_KINDS)


# -- engine runs -----------------------------------------------------------


def test_tiny_scenario_passes_all_hypotheses():
    report = run_tiny()
    assert report.passed
    phases = {h.phase for h in report.hypotheses}
    assert phases == {"steady-state:before", "steady-state:after"}
    assert report.counters["jobs-submitted"] == 2
    assert report.counters["writes-flushed"] == \
        report.counters["writes-enqueued"]
    assert report.counters["write-errors"] == 0
    assert report.counters["faults-injected"] == 2


def test_tiny_scenario_records_recoveries():
    report = run_tiny()
    kinds = [rec.kind for rec in report.recoveries]
    assert sorted(kinds) == ["etcd-leader-kill", "mongo-primary-kill"]
    assert all(not rec.timed_out for rec in report.recoveries)
    assert all(rec.duration_s > 0 for rec in report.recoveries)


def test_audit_log_merges_injector_and_engine_events():
    report = run_tiny()
    assert any("fault mongo-primary-kill" in line
               for line in report.audit_lines)
    assert any("inject etcd-leader-kill" in line
               for line in report.audit_lines)
    assert any("hypothesis" in line for line in report.audit_lines)
    assert any("submitted job-" in line for line in report.audit_lines)
    times = [float(line.split("=", 1)[1].split()[0])
             for line in report.audit_lines]
    assert times == sorted(times)


def test_same_seed_is_deterministic_different_seed_diverges():
    first = run_tiny(seed=3)
    second = run_tiny(seed=3)
    assert first.audit_lines == second.audit_lines
    other = run_tiny(seed=4)
    assert first.audit_lines != other.audit_lines


def test_engine_is_single_use():
    engine = ChaosEngine(TINY, seed=0)
    engine.run()
    with pytest.raises(SimulationError):
        engine.run()


def test_report_renders_text_and_markdown():
    report = run_tiny()
    text = report.render("text")
    assert "hypotheses:" in text and "recovery times:" in text
    markdown = report.render("md", audit=False)
    assert markdown.startswith("## Chaos scenario")
    assert "audit log" not in markdown


# -- CLI -------------------------------------------------------------------


def test_cli_list_prints_scenarios(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out


def test_cli_rejects_unknown_scenario(capsys):
    assert main(["--scenario", "no-such"]) == 2
    assert "unknown scenario" in capsys.readouterr().out


def test_cli_runs_scenario_with_determinism_check(monkeypatch, capsys):
    monkeypatch.setitem(SCENARIOS, "tiny", TINY)
    code = main(["--scenario", "tiny", "--seed", "0", "--no-audit",
                 "--check-determinism"])
    out = capsys.readouterr().out
    assert code == 0
    assert "determinism check passed" in out
    assert "chaos scenario 'tiny' seed=0 tiebreak=0: PASS" in out
