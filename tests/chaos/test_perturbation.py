"""Schedule-independence property tests.

Every named chaos scenario must produce a bit-identical audit log and
end state under permuted heap tie-breaking (``tiebreak_seed``), and the
runtime race detector must report zero schedule-sensitive conflicts
throughout.  A divergence here means some component depends on the
order the kernel happens to pick between same-``(time, priority)``
events — a modelling bug, not chaos.
"""

import pytest

from repro.chaos import SCENARIOS, get_scenario
from repro.chaos.cli import main
from repro.chaos.engine import ChaosEngine

#: Tie-break permutations checked against the FIFO baseline (seed 0).
PERTURBED_SEEDS = (1, 2, 3)

#: Baseline reports, computed once per scenario for the whole module.
_BASELINES = {}


def baseline(name):
    if name not in _BASELINES:
        _BASELINES[name] = ChaosEngine(
            get_scenario(name), seed=0, tiebreak_seed=0,
            detect_races=True).run()
    return _BASELINES[name]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_baseline_run_is_race_free_and_passes(name):
    report = baseline(name)
    assert report.passed, report.render()
    assert report.race_lines == []
    assert report.counters["schedule-conflicts"] == 0


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("tiebreak_seed", PERTURBED_SEEDS)
def test_perturbed_schedule_reproduces_run(name, tiebreak_seed):
    base = baseline(name)
    perturbed = ChaosEngine(get_scenario(name), seed=0,
                            tiebreak_seed=tiebreak_seed,
                            detect_races=True).run()
    assert perturbed.race_lines == []
    assert perturbed.audit_lines == base.audit_lines
    assert perturbed.end_state() == base.end_state()


def test_cli_perturb_flag(monkeypatch, capsys):
    from tests.chaos.test_engine import TINY

    monkeypatch.setitem(SCENARIOS, "tiny", TINY)
    code = main(["--scenario", "tiny", "--no-audit", "--detect-races",
                 "--perturb", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "perturbation check passed: 2 permuted schedules" in out


def test_cli_perturb_detects_divergence(monkeypatch, capsys):
    from tests.chaos.test_engine import TINY

    monkeypatch.setitem(SCENARIOS, "tiny", TINY)
    # Sabotage the witness: make audit logs depend on the tie-break
    # seed so the perturbation check must fail.
    real_audit = ChaosEngine.audit_lines

    def salted_audit(self):
        return real_audit(self) + [f"tiebreak={self.tiebreak_seed}"]

    monkeypatch.setattr(ChaosEngine, "audit_lines", salted_audit)
    code = main(["--scenario", "tiny", "--no-audit", "--perturb", "1"])
    out = capsys.readouterr().out
    assert code == 2
    assert "perturbation check FAILED" in out
