"""Shared fixtures for FfDL core tests."""


from repro.core import FfDLPlatform, JobManifest
from repro.sim import Environment, RngRegistry


def make_platform(seed=0, nodes=4, gpus_per_node=4, gpu_type="K80",
                  config=None, quota=64):
    env = Environment()
    platform = FfDLPlatform(env, RngRegistry(seed), config)
    platform.add_gpu_nodes(nodes, gpus_per_node=gpus_per_node,
                           gpu_type=gpu_type)
    platform.admission.register("alice", gpu_quota=quota)
    platform.admission.register("bob", gpu_quota=quota)
    return env, platform


def make_manifest(name="job", user="alice", learners=1, gpus=1,
                  gpu_type="K80", iterations=200, ckpt=0, **kwargs):
    # A dataset large enough that the DOWNLOADING phase outlasts the
    # helper controller's poll interval (so the status is observable),
    # in a per-job bucket so the shared mount cache of another job does
    # not make the download instant.
    kwargs.setdefault("dataset_object_bytes", 256e6)
    kwargs.setdefault("data_bucket", f"data-{name}")
    return JobManifest(
        name=name, user=user, framework="tensorflow", model="resnet50",
        learners=learners, gpus_per_learner=gpus, gpu_type=gpu_type,
        iterations=iterations, checkpoint_interval_iterations=ckpt,
        **kwargs)


def submit(env, platform, manifest):
    return env.run_until_complete(platform.submit_job(manifest),
                                  limit=env.now + 1e5)


def run_to_terminal(env, platform, job_id, limit=1e7):
    status = env.run_until_complete(platform.wait_for_terminal(job_id),
                                    limit=limit)
    env.run(until=env.now + 10)  # let persistence/GC settle
    return status
