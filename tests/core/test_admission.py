"""Tests for admission control and preemption policy (Section 3.6)."""

import pytest

from repro.core import AdmissionController, FREE_TIER, statuses as st
from repro.core.job import TrainingJob
from repro.errors import QuotaExceededError

from tests.core.conftest import (
    make_manifest,
    make_platform,
    run_to_terminal,
    submit,
)


def make_job(name="j1", user="alice", learners=1, gpus=2):
    manifest = make_manifest(name=name, user=user, learners=learners,
                             gpus=gpus)
    return TrainingJob(f"id-{name}", manifest, 0.0)


def test_within_quota_admitted():
    ac = AdmissionController()
    ac.register("alice", gpu_quota=8)
    decision = ac.admit(make_job(gpus=4))
    assert decision.admitted and not decision.over_quota


def test_over_quota_opportunistic_flagged():
    ac = AdmissionController()
    ac.register("alice", gpu_quota=2)
    decision = ac.admit(make_job(gpus=4))
    assert decision.admitted and decision.over_quota


def test_over_quota_rejected_when_strict():
    ac = AdmissionController(allow_opportunistic=False)
    ac.register("alice", gpu_quota=2)
    decision = ac.admit(make_job(gpus=4))
    assert not decision.admitted
    assert ac.rejections == 1


def test_usage_accumulates_and_releases():
    ac = AdmissionController()
    ac.register("alice", gpu_quota=8)
    job = make_job(gpus=4)
    ac.admit(job)
    assert ac.usage("alice") == 4
    ac.release(job.job_id)
    assert ac.usage("alice") == 0


def test_unknown_tenant_rejected():
    ac = AdmissionController()
    with pytest.raises(QuotaExceededError):
        ac.admit(make_job(user="ghost"))


def test_quota_preemption_victims_are_over_quota_jobs():
    ac = AdmissionController()
    ac.register("alice", gpu_quota=2)
    ac.register("bob", gpu_quota=8)
    over = make_job(name="over", user="alice", gpus=4)  # over quota
    within = make_job(name="ok", user="alice", gpus=0)
    within.manifest.gpus_per_learner = 0
    ac.admit(over)
    victims = ac.preemption_victims_for_quota("bob", gpus_needed=4)
    assert victims == [over.job_id]


def test_quota_preemption_insufficient_returns_empty():
    ac = AdmissionController()
    ac.register("alice", gpu_quota=100)
    ac.register("bob", gpu_quota=8)
    ac.admit(make_job(user="alice", gpus=4))  # within quota: not a victim
    assert ac.preemption_victims_for_quota("bob", gpus_needed=4) == []


def test_load_preemption_targets_free_tier():
    ac = AdmissionController()
    ac.register("free-rider", gpu_quota=8, tier=FREE_TIER)
    ac.register("payer", gpu_quota=8)
    free_job = make_job(name="f", user="free-rider", gpus=2)
    paid_job = make_job(name="p", user="payer", gpus=2)
    ac.admit(free_job)
    ac.admit(paid_job)
    assert ac.preemption_victims_for_load() == [free_job.job_id]


def test_platform_rejects_job_when_strict_and_over_quota():
    env, platform = make_platform()
    platform.admission.allow_opportunistic = False
    platform.admission.register("smalluser", gpu_quota=1)
    manifest = make_manifest(user="smalluser", learners=2, gpus=2)
    with pytest.raises(QuotaExceededError):
        submit(env, platform, manifest)


def test_platform_end_to_end_quota_preemption():
    """User B reclaims their quota: A's over-quota job is preempted."""
    env, platform = make_platform(nodes=1, gpus_per_node=4)
    platform.admission.register("a", gpu_quota=0)  # any job is over quota
    platform.admission.register("b", gpu_quota=4)
    a_job = submit(env, platform,
                   make_manifest(name="a1", user="a", learners=1, gpus=4,
                                 iterations=50_000, ckpt=1000))
    env.run(until=env.now + 120)
    victims = platform.admission.preemption_victims_for_quota(
        "b", gpus_needed=4)
    assert victims == [a_job]
    for victim in victims:
        platform.preempt_job(victim, reason="quota reclaim by b")
    env.run(until=env.now + 30)
    assert platform.cluster.allocated_gpus() == 0
    b_job = submit(env, platform,
                   make_manifest(name="b1", user="b", learners=1, gpus=4,
                                 iterations=200))
    assert run_to_terminal(env, platform, b_job, limit=1e6) == st.COMPLETED
